#!/usr/bin/env python
"""Quickstart: the paper's microburst.p4 on a SUME Event Switch.

Builds a single switch, loads the event-driven microburst detector
(§2's worked example), pushes a mix of background traffic and one
bursty culprit flow through it, and prints what the detector saw.

Run:  python examples/quickstart.py
"""

from repro.apps.microburst import MicroburstDetector
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_dumbbell
from repro.packet.hashing import ip_pair_hash
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.bursts import OnOffBurst
from repro.workloads.cbr import ConstantBitRate

RX_IP = 0x0A00_0000 + 101  # the dumbbell receiver rx0


def main() -> None:
    # --- Topology: 4 senders -> s0 -> s1 -> 1 receiver ---------------
    network = build_dumbbell(
        make_sume_switch(queue_capacity_bytes=128 * 1024), senders=4, receivers=1
    )

    # --- The program: microburst.p4, almost line for line ------------
    detector = MicroburstDetector(num_regs=1024, flow_thresh_bytes=8_000)
    detector.install_route(RX_IP, 0)  # everything exits toward s1
    network.switches["s0"].load_program(detector)

    passthrough = MicroburstDetector(num_regs=16, flow_thresh_bytes=1 << 30)
    passthrough.install_route(RX_IP, 1)
    network.switches["s1"].load_program(passthrough)

    # --- Workload: 3 polite flows + 1 bursty culprit ------------------
    for i in range(3):
        tx = network.hosts[f"tx{i}"]
        ConstantBitRate(
            network.sim,
            tx.send,
            FlowSpec(tx.ip, RX_IP, sport=7_000 + i, dport=9_000),
            rate_gbps=1.0,
            payload_len=1400,
            name=f"background{i}",
        ).start(at_ps=10 * MICROSECONDS)

    culprit_host = network.hosts["tx3"]
    culprit_flow = FlowSpec(culprit_host.ip, RX_IP, sport=7_999, dport=9_000)
    culprit = OnOffBurst(
        network.sim,
        culprit_host.send,
        culprit_flow,
        burst_packets=48,
        intra_gap_ps=1_200_000,
        mean_off_ps=int(1.5 * MILLISECONDS),
        payload_len=1400,
        seed=11,
        name="culprit",
    )
    culprit.start(at_ps=100 * MICROSECONDS)

    # --- Run 20 simulated milliseconds --------------------------------
    network.run(until_ps=20 * MILLISECONDS)

    # --- Report --------------------------------------------------------
    culprit_fid = ip_pair_hash(culprit_flow.src_ip, culprit_flow.dst_ip, 1024)
    switch = network.switches["s0"]
    print("SUME Event Switch ran the event-driven microburst detector.")
    print(f"  packets seen at ingress : {detector.packets_seen}")
    print(f"  enqueue events handled  : {switch.events_handled_of('buffer_enqueue')}")
    print(f"  dequeue events handled  : {switch.events_handled_of('buffer_dequeue')}")
    print(f"  detections              : {len(detector.detections)}")
    print(f"  culprit flow id         : {culprit_fid}")
    print(f"  flows flagged           : {detector.detected_flows()}")
    first = detector.first_detection_ps(culprit_fid)
    if first is not None and culprit.burst_start_times:
        starts = [t for t in culprit.burst_start_times if t <= first]
        if starts:
            print(f"  detection latency       : {(first - starts[-1]) / 1e6:.1f} us "
                  f"after burst start")
    print(f"  stateful footprint      : {detector.state_bits()} bits "
          f"(one shared_register)")


if __name__ == "__main__":
    main()
