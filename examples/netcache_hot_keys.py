#!/usr/bin/env python
"""NetCache-style in-network caching with timer-driven maintenance.

Zipf-skewed GETs flow through a switch cache to a key-value server.
Halfway through, the hot set shifts.  With timer events the switch
decays hit counters (approximate LRU) and clears miss statistics each
window, re-learning the new hot keys quickly; without timers the stale
statistics pin the old keys.

Run:  python examples/netcache_hot_keys.py
"""

from repro.experiments.netcache_exp import run_netcache


def main() -> None:
    print("512-key Zipf GET workload; hot set shifts at t=20 ms...\n")
    with_timer = run_netcache(True)
    without = run_netcache(False)

    print("maintenance     overall hit   post-shift hit   server load")
    for label, result in (("timer LRU", with_timer), ("none", without)):
        print(
            f"{label:<15} {100 * result.hit_ratio:>9.1f}%   "
            f"{100 * result.post_shift_hit_ratio:>12.1f}%   "
            f"{result.server_requests:>9}"
        )
    print(
        f"\nTimer-driven decay performed {with_timer.evictions} evictions and kept "
        f"the cache hot\nthrough the workload change "
        f"({100 * with_timer.post_shift_hit_ratio:.0f}% vs "
        f"{100 * without.post_shift_hit_ratio:.0f}% hit ratio after the shift)."
    )


if __name__ == "__main__":
    main()
