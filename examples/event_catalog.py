#!/usr/bin/env python
"""Fire every Table 1 data-plane event on the full event switch.

A catalog program registers a handler for all thirteen event kinds;
the script provokes each one — packet arrivals, queue build-up and
drain, an overflow, a recirculation, a generated packet, timers, a
control-plane trigger, a link flap, and a user event — and prints the
counts, plus the per-architecture support matrix.

Run:  python examples/event_catalog.py
"""

from repro.arch.events import EventType
from repro.experiments.events_exp import run_catalog_demo, support_matrix


def main() -> None:
    print("Support matrix (from the architecture description files):\n")
    rows = support_matrix()
    names = [row["architecture"] for row in rows]
    print(f"{'event':<26}" + "".join(f"{name:>22}" for name in names))
    for kind in EventType:
        cells = "".join(f"{row[kind.value]:>22}" for row in rows)
        print(f"{kind.value:<26}{cells}")

    print("\nLive demonstration on the full event switch:\n")
    result = run_catalog_demo()
    for line in result.summary_rows():
        print(f"  {line}")
    print(f"\nall Table 1 events fired: {result.all_fired()}")


if __name__ == "__main__":
    main()
