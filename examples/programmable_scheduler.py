#!/usr/bin/env python
"""A complete programmable packet scheduler: PIFO + dequeue events.

Weighted fair queueing (start-time fair queueing) where the virtual
clock advances from DEQUEUE events — the state update a baseline PISA
architecture cannot express.  Two flows with weights 3:1 contend for a
2 Gb/s bottleneck.

Run:  python examples/programmable_scheduler.py
"""

from repro.experiments.scheduling_exp import run_scheduling


def main() -> None:
    print("Two flows, WFQ weights 3:1, contending for a 2 Gb/s port...\n")
    fifo = run_scheduling("fifo")
    wfq = run_scheduling("wfq")

    print("scheduler   heavy pkts   light pkts   service ratio")
    for result in (fifo, wfq):
        print(
            f"{result.scheme:<11} {result.heavy_packets:>8}   "
            f"{result.light_packets:>10}   {result.measured_ratio:>10.2f}"
        )
    print(
        "\nThe WFQ program stamps each packet's PIFO rank at ingress and\n"
        "advances its virtual clock from dequeue events; the measured\n"
        f"service ratio ({wfq.measured_ratio:.2f}) matches the configured "
        f"weights ({wfq.configured_ratio:.1f})."
    )


if __name__ == "__main__":
    main()
