#!/usr/bin/env python
"""Checkpoint a run mid-flight, restore it, and finish both copies.

The §2 microburst experiment runs to its halfway point, a checkpoint
captures the whole simulator — scheduler queue, clock, every extern's
StateStore cells, the workload generators' RNG state — and then the
original and the restored copy both run to completion.  They produce
the same detections, the same extern contents, and the same event
counts, demonstrating that a checkpoint is a faithful fork of the
simulation.

This example restores in-process for brevity; the CLI does the same
across processes (and even across scheduler backends)::

    python -m repro.cli checkpoint --ckpt mb.ckpt --at-ps 10000000000
    python -m repro.cli resume --ckpt mb.ckpt --scheduler wheel

Run:  python examples/checkpoint_resume.py
"""

import os
import tempfile

from repro.experiments.microburst_exp import (
    finish_event_driven,
    prepare_event_driven,
)
from repro.sim.checkpoint import inspect_checkpoint, load_checkpoint
from repro.sim.units import MILLISECONDS


def main() -> None:
    duration = 6 * MILLISECONDS
    halfway = duration // 2

    # --- Build the experiment and run the first half ------------------
    setup = prepare_event_driven(duration_ps=duration)
    setup.network.run(until_ps=halfway)
    sim = setup.network.sim
    print(f"paused at {sim.now_ps}ps after {sim.events_executed} events")

    # --- Checkpoint: one file holds the simulator and the experiment --
    path = os.path.join(tempfile.mkdtemp(), "microburst.ckpt")
    sim.checkpoint(path, state=setup, label="halfway")
    header = inspect_checkpoint(path)  # header-only read: no unpickling
    print(
        f"checkpoint: {os.path.getsize(path)} bytes, "
        f"{len(header['stores'])} state stores, "
        f"{header['pending_events']} pending events"
    )

    # --- Finish the original... ---------------------------------------
    original = finish_event_driven(setup)

    # --- ...and the restored copy (fresh object graph) ----------------
    restored_sim, restored_setup, _header = load_checkpoint(path)
    restored = finish_event_driven(restored_setup)

    print("\noriginal :", original.summary_row())
    print("restored :", restored.summary_row())
    assert restored.detections_total == original.detections_total
    assert restored.culprit_detected == original.culprit_detected
    assert restored.detection_latency_ps == original.detection_latency_ps
    assert restored_sim.now_ps == setup.network.sim.now_ps
    assert restored_sim.events_executed == setup.network.sim.events_executed
    assert (
        restored_setup.detector.flow_buf_size.snapshot()
        == setup.detector.flow_buf_size.snapshot()
    )
    print("\nrestored run matches the uninterrupted one exactly")
    os.remove(path)


if __name__ == "__main__":
    main()
