#!/usr/bin/env python
"""The paper's microburst.p4, written as source text.

"We propose a common, general way to express event processing using
the P4 language" — this example compiles an event-driven program from
source (per-event blocks + a shared_register extern, the paper's §2
syntax) and runs it on the SUME Event Switch.

Run:  python examples/microburst_from_source.py
"""

from repro.experiments.factories import make_sume_switch
from repro.lang import compile_program
from repro.net.topology import build_dumbbell
from repro.packet.hashing import ip_pair_hash
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.bursts import OnOffBurst
from repro.workloads.cbr import ConstantBitRate

RX_IP = 0x0A00_0000 + 101

MICROBURST_P4 = """
program microburst;

shared_register<32>(1024) bufSize_reg;
const FLOW_THRESH = 8000;

on ingress_packet {
    // compute flowID = hash(hdr.ip.src ++ hdr.ip.dst)
    var flowID = hash(ip.src, ip.dst, 1024);
    // initialize enq & deq metadata for this pkt
    set_enq_meta("flowID", flowID);
    set_enq_meta("pkt_len", pkt.len);
    set_deq_meta("flowID", flowID);
    set_deq_meta("pkt_len", pkt.len);
    // read buffer occupancy of this flow
    var bufSize = bufSize_reg.read(flowID);
    // detect microburst
    if (bufSize > FLOW_THRESH) {
        mark(flowID);       /* microburst culprit! */
    }
    forward_by_ip();
}

on buffer_enqueue {
    bufSize_reg.add(event.flowID, event.pkt_len);
}

on buffer_dequeue {
    bufSize_reg.sub(event.flowID, event.pkt_len);
}
"""


def main() -> None:
    program = compile_program(MICROBURST_P4)
    print(f"compiled {program!r}\n")

    network = build_dumbbell(
        make_sume_switch(queue_capacity_bytes=128 * 1024), senders=4, receivers=1
    )
    program.install_route(RX_IP, 0)
    network.switches["s0"].load_program(program)

    passthrough = compile_program(
        'program passthrough;\non ingress_packet { forward_by_ip(); }\n'
    )
    passthrough.install_route(RX_IP, 1)
    network.switches["s1"].load_program(passthrough)

    for i in range(3):
        tx = network.hosts[f"tx{i}"]
        ConstantBitRate(
            network.sim, tx.send,
            FlowSpec(tx.ip, RX_IP, sport=7_000 + i, dport=9_000),
            rate_gbps=1.0, payload_len=1400, name=f"bg{i}",
        ).start(at_ps=10 * MICROSECONDS)
    culprit_host = network.hosts["tx3"]
    culprit = OnOffBurst(
        network.sim, culprit_host.send,
        FlowSpec(culprit_host.ip, RX_IP, sport=7_999, dport=9_000),
        burst_packets=48, intra_gap_ps=1_200_000,
        mean_off_ps=int(1.5 * MILLISECONDS), payload_len=1400,
        seed=11, name="culprit",
    )
    culprit.start(at_ps=100 * MICROSECONDS)

    network.run(until_ps=20 * MILLISECONDS)

    culprit_fid = ip_pair_hash(culprit_host.ip, RX_IP, 1024)
    flagged = sorted(set(program.marked_values()))
    print(f"flows flagged by the source-level program : {flagged}")
    print(f"the actual culprit's flow id              : {culprit_fid}")
    print(f"detections                                : {len(program.marks)}")
    print(f"state bits (one shared_register)          : {program.state_bits()}")


if __name__ == "__main__":
    main()
