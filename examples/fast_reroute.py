#!/usr/bin/env python
"""Fast re-route on link-status events vs. control-plane re-route.

A diamond topology loses its primary link halfway through a flow.  The
event-driven program flips to the backup path the instant the
LINK_STATUS event fires; the baseline waits for the control plane.

Run:  python examples/fast_reroute.py
"""

from repro.experiments.frr_exp import run_failover
from repro.sim.units import MICROSECONDS


def main() -> None:
    print("Failing the primary link at t=50 ms during a 1 Gb/s flow...\n")
    frr = run_failover("frr")
    control = run_failover("control-plane")

    print("scheme          packets lost   forwarding outage")
    for result in (frr, control):
        print(
            f"{result.scheme:<15} {result.packets_lost:>8}       "
            f"{result.outage_ps / MICROSECONDS:>12.1f} us"
        )
    ratio = control.outage_ps / max(1, frr.outage_ps)
    print(
        f"\nLINK_STATUS events recover {ratio:,.0f}x faster than the "
        f"control plane,\nlosing {frr.packets_lost} packet(s) instead of "
        f"{control.packets_lost}."
    )


if __name__ == "__main__":
    main()
