#!/usr/bin/env python
"""NetChain-style coordination surviving a link failure.

A three-switch replication chain serves sequential writes; the
head→mid link dies mid-run.  The event-driven chain splices itself over
a pre-provisioned bypass within one write period; the control-plane
baseline blackholes writes for ~110 ms.

Run:  python examples/netchain_coordination.py
"""

from repro.experiments.netchain_exp import run_netchain
from repro.sim.units import MICROSECONDS


def main() -> None:
    print("Sequential writes through a 3-switch chain; mid-chain link "
          "fails at t=50 ms...\n")
    event_driven = run_netchain("event-driven")
    control = run_netchain("control-plane")

    print("repair scheme    writes   lost    ack outage     consistent read")
    for result in (event_driven, control):
        print(
            f"{result.scheme:<16} {result.writes_sent:>6} "
            f"{result.writes_lost:>6}  "
            f"{result.outage_ps / MICROSECONDS:>10.1f} us   "
            f"{result.read_matches_last_ack}"
        )
    print(
        "\nThe LINK_STATUS handler re-splices the chain in the data plane;\n"
        "chain consistency (read ≥ last acknowledged write) holds in both\n"
        "runs — the event-driven one just stops losing writes ~2000x sooner."
    )


if __name__ == "__main__":
    main()
