#!/usr/bin/env python
"""Event-driven AQM: FRED-like flow fairness from enqueue/dequeue events.

A 9 Gb/s blaster shares a 10 Gb/s bottleneck with three polite 2.5 Gb/s
senders.  Drop-tail lets the blaster monopolize the buffer; the FRED
program — whose per-active-flow occupancy and active-flow count are
maintained by enqueue/dequeue events — drops the blaster back to its
fair share, in the ingress pipeline, before the buffer.

Run:  python examples/aqm_fairness.py
"""

from repro.experiments.aqm_exp import run_aqm


def main() -> None:
    print("An unresponsive 9 Gb/s blaster vs three polite senders...\n")
    print("scheme      per-flow goodput (pkts)     Jain fairness   blaster share")
    for scheme in ("drop-tail", "red", "fred"):
        result = run_aqm(scheme)
        flows = "/".join(f"{p}" for p in result.per_flow_packets)
        print(
            f"{result.scheme:<11} {flows:<27} {result.fairness:>8.3f}      "
            f"{100 * result.blaster_share:>6.1f}%"
        )
    print(
        "\nFRED's congestion signals (total occupancy, per-flow occupancy,\n"
        "active flow count) come entirely from enqueue and dequeue events."
    )


if __name__ == "__main__":
    main()
