#!/usr/bin/env python
"""Shard a k=4 fat tree across simulators and match the serial run.

A 20-switch, 16-host fat tree carries an inter-pod incast: every pod's
hosts flood the next pod's receiver, so all traffic crosses the
aggregation/core boundary.  The fabric is partitioned per pod, run as
four conservatively synchronized shard simulators, and compared against
the single-process reference — the per-host behavior fingerprints
(arrival time/length multisets) must be byte-identical.

Shards run inline here so the example is fast and deterministic on any
host; ``mode="process"`` (or the CLI below) puts each shard in its own
worker process for real parallelism on multi-core machines::

    python -m repro.cli shard --topology fattree --k 4 --shards 4 \\
        --mode process --compare-serial

Run:  python examples/fattree_incast.py
"""

from repro.experiments.shard_exp import (
    ShardScenario,
    expected_packets,
    run_serial,
    run_sharded,
    scenario_partition,
)


def main() -> None:
    scenario = ShardScenario(
        topology="fattree", k=4, waves=2, packets_per_sender=3
    )
    shards = 4

    partition = scenario_partition(scenario, shards)
    print(f"fabric: {partition.spec}")
    for row in partition.summary_rows():
        print(f"  {row}")

    # --- The single-process reference ---------------------------------
    serial = run_serial(scenario)
    print(
        f"\nserial : {serial.total_received()}/{expected_packets(scenario)} "
        f"packets, {serial.events} events, {serial.wall_s * 1e3:.1f} ms"
    )

    # --- The same fabric across four shard simulators ------------------
    sharded = run_sharded(scenario, shards=shards, mode="inline")
    stats = sharded.stats
    print(
        f"sharded: {sharded.total_received()} packets across "
        f"{shards} shards, {stats.windows} sync windows, "
        f"{stats.total('boundary_tx')} boundary packets, "
        f"{sharded.wall_s * 1e3:.1f} ms"
    )

    assert sharded.fingerprint == serial.fingerprint, (
        "sharded fingerprint diverged from serial"
    )
    assert sharded.total_received() == expected_packets(scenario)
    print(
        f"\nbehavior fingerprints identical ({sharded.digest[:16]}…): "
        "the sharded run is indistinguishable from the serial one"
    )


if __name__ == "__main__":
    main()
