"""Hash functions used by the data plane.

PISA targets expose hardware CRC units for flow hashing; the paper's
microburst example computes ``hash(hdr.ip.src ++ hdr.ip.dst)`` to index
its ``shared_register``.  We implement CRC-16/CCITT and CRC-32 (the
polynomials common in switch hash units) plus a fold helper that maps a
hash into a register index range.
"""

from __future__ import annotations

from typing import List, Optional

from repro.packet.packet import FiveTuple, Packet

_CRC32_POLY = 0xEDB88320  # reflected IEEE 802.3
_CRC16_POLY = 0x8408  # reflected CCITT


def _make_table(poly: int, width: int) -> List[int]:
    mask = (1 << width) - 1
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc & mask)
    return table


_CRC32_TABLE = _make_table(_CRC32_POLY, 32)
_CRC16_TABLE = _make_table(_CRC16_POLY, 16)


def crc32(data: bytes, seed: int = 0xFFFFFFFF) -> int:
    """CRC-32 (IEEE 802.3) of ``data``."""
    crc = seed
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc16(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT of ``data``."""
    crc = seed
    for byte in data:
        crc = (crc >> 8) ^ _CRC16_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFF


def fold_hash(value: int, buckets: int) -> int:
    """Map a hash value into [0, buckets) by modulo.

    Raises ValueError for non-positive bucket counts so misconfigured
    register sizes fail loudly.
    """
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    return value % buckets


def flow_hash(pkt: Packet, buckets: int, salt: int = 0) -> Optional[int]:
    """Hash a packet's five-tuple into a register index.

    Returns None for packets without an IPv4 header (they carry no flow
    identity).  ``salt`` selects independent hash functions, as used by
    the count-min sketch rows.
    """
    ftuple = pkt.five_tuple()
    if ftuple is None:
        return None
    return tuple_hash(ftuple, buckets, salt)


def tuple_hash(ftuple: FiveTuple, buckets: int, salt: int = 0) -> int:
    """Hash a :class:`FiveTuple` into [0, buckets) with a salted CRC-32."""
    seed = (0xFFFFFFFF ^ (salt * 0x9E3779B9)) & 0xFFFFFFFF
    return fold_hash(crc32(ftuple.as_bytes(), seed=seed), buckets)


def ip_pair_hash(src_ip: int, dst_ip: int, buckets: int, salt: int = 0) -> int:
    """The paper's microburst flow id: hash of source ++ destination IP."""
    data = src_ip.to_bytes(4, "big") + dst_ip.to_bytes(4, "big")
    seed = (0xFFFFFFFF ^ (salt * 0x9E3779B9)) & 0xFFFFFFFF
    return fold_hash(crc32(data, seed=seed), buckets)
