"""Packet trace capture and replay.

The paper's evaluation environments replay real traffic; we have none,
so besides synthetic generators the reproduction supports a simple
binary trace format — capture any experiment's packets, then replay
them byte-exactly with original timing into another experiment.

Format: an 8-byte magic header, then per record an 8-byte big-endian
timestamp (picoseconds), a 4-byte length, and the packet bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator, List, Optional

from repro.packet.packet import Packet
from repro.packet.parser import Deparser, Parser, standard_parser
from repro.sim.kernel import Simulator

MAGIC = b"EVPPTRC1"


@dataclass(frozen=True)
class TraceRecord:
    """One captured packet: arrival time and wire bytes."""

    ts_ps: int
    data: bytes


class TraceWriter:
    """Writes trace records to a binary stream or file."""

    def __init__(self, target) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self._stream.write(MAGIC)
        self.records_written = 0
        self._deparser = Deparser()
        self._last_ts = -1

    def write(self, ts_ps: int, data: bytes) -> None:
        """Append one raw record; timestamps must be non-decreasing."""
        if ts_ps < 0:
            raise ValueError(f"timestamp must be non-negative, got {ts_ps}")
        if ts_ps < self._last_ts:
            raise ValueError(
                f"timestamps must be non-decreasing ({ts_ps} < {self._last_ts})"
            )
        self._last_ts = ts_ps
        self._stream.write(ts_ps.to_bytes(8, "big"))
        self._stream.write(len(data).to_bytes(4, "big"))
        self._stream.write(data)
        self.records_written += 1

    def write_packet(self, ts_ps: int, pkt: Packet) -> None:
        """Deparse and append one packet."""
        self.write(ts_ps, self._deparser.deparse(pkt))

    def sink(self, sim: Simulator) -> Callable[[Packet], None]:
        """A host/switch sink that captures packets at current sim time."""

        def capture(pkt: Packet) -> None:
            self.write_packet(sim.now_ps, pkt)

        return capture

    def close(self) -> None:
        """Flush and close (closes the file only if we opened it)."""
        self._stream.flush()
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Reads trace records from a binary stream or file."""

    def __init__(self, source) -> None:
        if isinstance(source, (str, os.PathLike)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns = True
        else:
            self._stream = source
            self._owns = False
        magic = self._stream.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"not a trace file (bad magic {magic!r})")

    def __iter__(self) -> Iterator[TraceRecord]:
        while True:
            header = self._stream.read(12)
            if not header:
                return
            if len(header) < 12:
                raise ValueError("truncated trace record header")
            ts_ps = int.from_bytes(header[:8], "big")
            length = int.from_bytes(header[8:12], "big")
            data = self._stream.read(length)
            if len(data) < length:
                raise ValueError("truncated trace record body")
            yield TraceRecord(ts_ps=ts_ps, data=data)

    def read_all(self) -> List[TraceRecord]:
        """Materialize every record."""
        return list(self)

    def close(self) -> None:
        """Close (the file only if we opened it)."""
        if self._owns:
            self._stream.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReplayer:
    """Replays a trace into a send function with original timing."""

    def __init__(
        self,
        sim: Simulator,
        records: List[TraceRecord],
        send: Callable[[Packet], object],
        parser: Optional[Parser] = None,
        offset_ps: int = 0,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time scale must be positive, got {time_scale}")
        self.sim = sim
        self.records = list(records)
        self.send = send
        self.parser = parser or standard_parser()
        self.offset_ps = offset_ps
        self.time_scale = time_scale
        self.packets_replayed = 0

    def schedule(self) -> int:
        """Schedule every record; returns the number scheduled.

        Record timestamps are normalized so the first packet fires at
        ``offset_ps``; ``time_scale`` stretches (>1) or compresses (<1)
        the inter-arrival gaps.
        """
        if not self.records:
            return 0
        base = self.records[0].ts_ps
        for record in self.records:
            when = self.offset_ps + int((record.ts_ps - base) * self.time_scale)
            self.sim.call_at(max(when, self.sim.now_ps), self._fire, record)
        return len(self.records)

    def _fire(self, record: TraceRecord) -> None:
        pkt = self.parser.parse(record.data, ts_ps=self.sim.now_ps)
        pkt.ts_created_ps = self.sim.now_ps
        self.packets_replayed += 1
        self.send(pkt)
