"""The simulated packet.

A :class:`Packet` is an ordered stack of parsed headers plus an opaque
payload length, along with the mutable per-packet metadata that flows
through the PISA pipelines (ingress port, egress spec, queue id, drop
flag, and the user-defined enqueue/dequeue metadata of the paper's
programming model).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.packet.headers import Ethernet, Header, Ipv4, Tcp, Udp

_packet_ids = itertools.count()


@dataclass(frozen=True)
class FiveTuple:
    """The classic flow five-tuple used for flow hashing."""

    src_ip: int
    dst_ip: int
    proto: int
    sport: int
    dport: int

    def as_bytes(self) -> bytes:
        """Canonical byte encoding for hashing."""
        return (
            self.src_ip.to_bytes(4, "big")
            + self.dst_ip.to_bytes(4, "big")
            + self.proto.to_bytes(1, "big")
            + self.sport.to_bytes(2, "big")
            + self.dport.to_bytes(2, "big")
        )


class Packet:
    """A packet moving through the simulated network.

    ``headers`` is ordered outermost-first.  ``payload_len`` counts bytes
    beyond the declared headers; :attr:`total_len` is what the wire and
    the buffer accounting see.  ``meta`` is a free-form dict for
    program-defined metadata (mirroring P4 user metadata).
    """

    __slots__ = (
        "pkt_id",
        "headers",
        "_hdr_len",
        "_hdr_count",
        "payload_len",
        "meta",
        "ingress_port",
        "egress_port",
        "queue_id",
        "priority",
        "ts_created_ps",
        "ts_enqueued_ps",
        "ts_dequeued_ps",
        "recirculated",
        "generated",
        "trace",
    )

    def __init__(
        self,
        headers: Optional[List[Header]] = None,
        payload_len: int = 0,
        ingress_port: int = 0,
        ts_created_ps: int = 0,
    ) -> None:
        if payload_len < 0:
            raise ValueError(f"payload length must be non-negative, got {payload_len}")
        self.pkt_id: int = next(_packet_ids)
        self.headers: List[Header] = list(headers or [])
        self._hdr_len: int = -1
        self._hdr_count: int = -1
        self.payload_len = payload_len
        self.meta: Dict[str, int] = {}
        self.ingress_port = ingress_port
        self.egress_port: Optional[int] = None
        self.queue_id: int = 0
        self.priority: int = 0
        self.ts_created_ps = ts_created_ps
        self.ts_enqueued_ps: Optional[int] = None
        self.ts_dequeued_ps: Optional[int] = None
        self.recirculated: bool = False
        self.generated: bool = False
        self.trace: List[str] = []

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def header_len(self) -> int:
        """Total bytes of declared headers.

        Cached per packet; the cache keys on the header-stack length, so
        any length-changing mutation (push/pop, direct list edits)
        invalidates it.  Replacing a header in place with one of a
        *different type* must go through :meth:`pop`/:meth:`push`.
        """
        headers = self.headers
        if len(headers) != self._hdr_count:
            self._hdr_len = sum(h.width_bytes() for h in headers)
            self._hdr_count = len(headers)
        return self._hdr_len

    @property
    def total_len(self) -> int:
        """Total packet length in bytes (headers + payload)."""
        # header_len's cache check is inlined: total_len is the hottest
        # accessor on the packet (queue accounting, serialization, TM
        # events all read it) and the nested property call showed up.
        headers = self.headers
        if len(headers) != self._hdr_count:
            self._hdr_len = sum(h.width_bytes() for h in headers)
            self._hdr_count = len(headers)
        return self._hdr_len + self.payload_len

    @property
    def wire_len(self) -> int:
        """Bytes occupied on the wire, including preamble + IFG (20B)."""
        return self.total_len + 20

    # ------------------------------------------------------------------
    # Header access
    # ------------------------------------------------------------------
    def get(self, header_type: Type[Header]) -> Optional[Header]:
        """The first header of ``header_type``, or None."""
        for header in self.headers:
            if type(header) is header_type:
                return header
        return None

    def require(self, header_type: Type[Header]) -> Header:
        """The first header of ``header_type``; raises KeyError if absent."""
        header = self.get(header_type)
        if header is None:
            raise KeyError(f"packet {self.pkt_id} has no {header_type.__name__}")
        return header

    def has(self, header_type: Type[Header]) -> bool:
        """True if a header of ``header_type`` is present."""
        return self.get(header_type) is not None

    def push(self, header: Header) -> None:
        """Prepend a header (outermost position)."""
        self._hdr_count = -1
        self.headers.insert(0, header)

    def pop(self, header_type: Type[Header]) -> Header:
        """Remove and return the first header of ``header_type``."""
        for i, header in enumerate(self.headers):
            if type(header) is header_type:
                self._hdr_count = -1
                return self.headers.pop(i)
        raise KeyError(f"packet {self.pkt_id} has no {header_type.__name__}")

    # ------------------------------------------------------------------
    # Flow identity
    # ------------------------------------------------------------------
    def five_tuple(self) -> Optional[FiveTuple]:
        """This packet's flow five-tuple, or None for non-IP packets."""
        ip = self.get(Ipv4)
        if ip is None:
            return None
        sport = dport = 0
        l4 = self.get(Tcp) or self.get(Udp)
        if l4 is not None:
            sport = l4.sport
            dport = l4.dport
        return FiveTuple(ip.src, ip.dst, ip.protocol, sport, dport)

    def clone(self) -> "Packet":
        """Deep copy with a fresh packet id (for multicast/recirculation)."""
        dup = Packet(
            headers=[h.copy() for h in self.headers],
            payload_len=self.payload_len,
            ingress_port=self.ingress_port,
            ts_created_ps=self.ts_created_ps,
        )
        dup.meta = dict(self.meta)
        dup.egress_port = self.egress_port
        dup.queue_id = self.queue_id
        dup.priority = self.priority
        dup.recirculated = self.recirculated
        dup.generated = self.generated
        return dup

    # ------------------------------------------------------------------
    # Pickling (explicit: slotted instances have no __dict__, and the
    # checkpoint/shard-pipe payloads should not depend on slot order)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name in self.__slots__:
            setattr(self, name, state[name])

    def note(self, message: str) -> None:
        """Append a trace note (used by tests and debugging)."""
        self.trace.append(message)

    def __repr__(self) -> str:
        names = "/".join(type(h).__name__ for h in self.headers) or "raw"
        return (
            f"Packet(#{self.pkt_id}, {names}, len={self.total_len}B, "
            f"in={self.ingress_port}, out={self.egress_port})"
        )


def ethernet_of(pkt: Packet) -> Ethernet:
    """Convenience accessor for the Ethernet header."""
    return pkt.require(Ethernet)  # type: ignore[return-value]
