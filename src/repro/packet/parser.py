"""Programmable parser and deparser.

A PISA parser is a finite state machine: each state extracts one header
and selects the next state from one of the extracted fields.  We model
exactly that: a :class:`Parser` is a set of named :class:`ParserState`
nodes; each state names the header type it extracts, the field it
selects on, and a transition map.  The default parsers for the standard
Ethernet/IPv4/TCP-UDP stack (plus the reproduction's probe headers) are
built by :func:`standard_parser`.

The :class:`Deparser` re-serializes a packet's header stack to bytes in
order, so round-tripping bytes → packet → bytes is exact — tests rely
on this property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.packet.headers import (
    Ethernet,
    EtherType,
    Header,
    HulaProbe,
    IntReport,
    IpProto,
    Ipv4,
    KeyValue,
    LivenessEcho,
    Tcp,
    Udp,
)
from repro.packet.packet import Packet


class ParseError(ValueError):
    """Raised when input bytes cannot be parsed by the parse graph."""


class DeparseError(ValueError):
    """Raised when a header stack cannot be serialized."""


#: Transition key meaning "any value not otherwise matched".
DEFAULT = "default"
#: Next-state name meaning "stop parsing; remaining bytes are payload".
ACCEPT = "accept"
#: Next-state name meaning "reject the packet".
REJECT = "reject"


@dataclass
class ParserState:
    """One state of the parse graph.

    ``extracts`` is the header type pulled off the wire on entry.
    ``select_field`` names the field of the just-extracted header used
    to pick the next state via ``transitions``; if None, the transition
    map must contain only a DEFAULT entry.
    """

    name: str
    extracts: Type[Header]
    select_field: Optional[str] = None
    transitions: Dict[object, str] = field(default_factory=dict)

    def next_state(self, header: Header) -> str:
        """Resolve the next state name after extracting ``header``."""
        if self.select_field is None:
            return self.transitions.get(DEFAULT, ACCEPT)
        value = getattr(header, self.select_field)
        if value in self.transitions:
            return self.transitions[value]
        return self.transitions.get(DEFAULT, REJECT)


class Parser:
    """A programmable parser: a named parse graph.

    The parser consumes bytes and produces a :class:`Packet` whose
    header stack mirrors the traversed states.  States, like P4 parser
    states, are applied in graph order starting from ``start``.
    """

    #: Maximum number of distinct byte strings memoized per parser.
    MEMO_LIMIT = 1024

    def __init__(self, states: List[ParserState], start: str = "start") -> None:
        self.states: Dict[str, ParserState] = {}
        for state in states:
            if state.name in self.states:
                raise ValueError(f"duplicate parser state {state.name!r}")
            self.states[state.name] = state
        if start not in self.states:
            raise ValueError(f"start state {start!r} not defined")
        self.start = start
        # bytes → (((header_class, field_values), ...), header_bytes)
        # parse() replays a hit without re-walking the parse graph.
        self._memo: Dict[bytes, Tuple[Tuple[Tuple[Type[Header], Tuple[int, ...]], ...], int]] = {}
        self._validate()

    def _validate(self) -> None:
        for state in self.states.values():
            for target in state.transitions.values():
                if target not in (ACCEPT, REJECT) and target not in self.states:
                    raise ValueError(
                        f"state {state.name!r} transitions to unknown "
                        f"state {target!r}"
                    )

    def parse(self, data: bytes, ingress_port: int = 0, ts_ps: int = 0) -> Packet:
        """Parse ``data`` into a packet; leftover bytes become payload.

        Parse results are memoized per byte string: re-parsing bytes seen
        before replays the recorded (header class, field values) sequence
        instead of walking the parse graph, while still yielding fresh,
        independently mutable header objects.
        """
        memo = self._memo.get(data)
        if memo is not None:
            specs, offset = memo
            return Packet(
                headers=[cls._from_values(values) for cls, values in specs],
                payload_len=len(data) - offset,
                ingress_port=ingress_port,
                ts_created_ps=ts_ps,
            )
        headers: List[Header] = []
        offset = 0
        state_name = self.start
        visited = 0
        while state_name not in (ACCEPT, REJECT):
            visited += 1
            if visited > len(self.states) + 1:
                raise ParseError("parse graph cycle detected")
            state = self.states[state_name]
            width = state.extracts.width_bytes()
            if offset + width > len(data):
                raise ParseError(
                    f"state {state.name!r} needs {width} bytes at offset "
                    f"{offset}, packet is {len(data)} bytes"
                )
            header = state.extracts.unpack(data[offset:])
            offset += width
            headers.append(header)
            state_name = state.next_state(header)
        if state_name == REJECT:
            raise ParseError(f"packet rejected by parse graph after {headers}")
        if len(self._memo) < self.MEMO_LIMIT:
            self._memo[bytes(data)] = (
                tuple(
                    (type(h), tuple(getattr(h, f.name) for f in h.FIELDS))
                    for h in headers
                ),
                offset,
            )
        pkt = Packet(
            headers=headers,
            payload_len=len(data) - offset,
            ingress_port=ingress_port,
            ts_created_ps=ts_ps,
        )
        return pkt

    def parse_packet(self, pkt: Packet) -> Packet:
        """Re-parse an in-memory packet (identity for already-parsed ones).

        Architectures call this at pipeline entry so programs written
        against parsed headers also work for byte-level ingress.
        """
        return pkt

    @property
    def state_count(self) -> int:
        """Number of parse states (used by the resource model)."""
        return len(self.states)


class Deparser:
    """Serializes a packet's header stack back to wire bytes.

    The payload is emitted as zero bytes of the recorded length — the
    simulation never inspects payload contents, only sizes.
    """

    def deparse(self, pkt: Packet) -> bytes:
        try:
            header_bytes = b"".join(h.pack() for h in pkt.headers)
        except ValueError as exc:
            raise DeparseError(str(exc)) from exc
        return header_bytes + bytes(pkt.payload_len)


def standard_parser() -> Parser:
    """The reproduction's default parse graph.

    Ethernet → {IPv4 → {TCP, UDP}, HULA probe, liveness echo, INT
    report}; UDP port 9900 carries NetCache key-value headers.
    """
    return Parser(
        [
            ParserState(
                "start",
                extracts=Ethernet,
                select_field="ethertype",
                transitions={
                    int(EtherType.IPV4): "ipv4",
                    int(EtherType.HULA): "hula",
                    int(EtherType.LIVENESS): "liveness",
                    int(EtherType.INT_REPORT): "int_report",
                    DEFAULT: ACCEPT,
                },
            ),
            ParserState(
                "ipv4",
                extracts=Ipv4,
                select_field="protocol",
                transitions={
                    int(IpProto.TCP): "tcp",
                    int(IpProto.UDP): "udp",
                    DEFAULT: ACCEPT,
                },
            ),
            ParserState("tcp", extracts=Tcp, transitions={DEFAULT: ACCEPT}),
            ParserState(
                "udp",
                extracts=Udp,
                select_field="dport",
                transitions={9900: "kv", DEFAULT: ACCEPT},
            ),
            ParserState("kv", extracts=KeyValue, transitions={DEFAULT: ACCEPT}),
            ParserState("hula", extracts=HulaProbe, transitions={DEFAULT: ACCEPT}),
            ParserState(
                "liveness", extracts=LivenessEcho, transitions={DEFAULT: ACCEPT}
            ),
            ParserState(
                "int_report", extracts=IntReport, transitions={DEFAULT: ACCEPT}
            ),
        ]
    )
