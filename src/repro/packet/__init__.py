"""Packet substrate: headers, packets, parsing, and hashing.

Packets in the reproduction carry real, byte-serializable protocol
headers (Ethernet / IPv4 / TCP / UDP plus the reproduction's probe and
telemetry headers), so the programmable parser and deparser operate on
genuine wire formats rather than opaque dictionaries.
"""

from repro.packet.headers import (
    EtherType,
    Ethernet,
    Header,
    HeaderField,
    HulaProbe,
    IntReport,
    IpProto,
    Ipv4,
    KeyValue,
    LivenessEcho,
    Tcp,
    Udp,
)
from repro.packet.hashing import crc16, crc32, fold_hash, flow_hash
from repro.packet.packet import Packet, FiveTuple
from repro.packet.parser import DeparseError, Deparser, ParseError, Parser, ParserState
from repro.packet.builder import (
    make_hula_probe,
    make_liveness_echo,
    make_kv_request,
    make_tcp_packet,
    make_udp_packet,
)

__all__ = [
    "Header",
    "HeaderField",
    "Ethernet",
    "Ipv4",
    "Tcp",
    "Udp",
    "HulaProbe",
    "LivenessEcho",
    "IntReport",
    "KeyValue",
    "EtherType",
    "IpProto",
    "Packet",
    "FiveTuple",
    "Parser",
    "ParserState",
    "Deparser",
    "ParseError",
    "DeparseError",
    "crc16",
    "crc32",
    "fold_hash",
    "flow_hash",
    "make_tcp_packet",
    "make_udp_packet",
    "make_hula_probe",
    "make_liveness_echo",
    "make_kv_request",
]
