"""Application-level impact of failover: a reliable transfer (paper §8).

A sliding-window reliable transfer (the §8 "simple reliable delivery
protocol" — itself an event-driven state machine) crosses the diamond
topology while the primary link fails.  With data-plane FRR the
transfer barely notices (a timeout or two); with control-plane repair
it stalls for the full repair window and pays hundreds of
retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.frr import FastRerouteProgram, StaticRouteProgram
from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.experiments.frr_exp import (
    H0_IP,
    H1_IP,
    _build_diamond,
    _install_transit_routes,
)
from repro.net.reliable import ReliableReceiver, ReliableSender
from repro.sim.units import MICROSECONDS, MILLISECONDS


@dataclass
class ReliableResult:
    """One reliable-transfer-through-failover run."""

    scheme: str
    total_packets: int
    delivered: int
    retransmissions: int
    completed: bool
    completion_ms: Optional[float]

    def summary_row(self) -> str:
        """A printable summary row."""
        finish = f"{self.completion_ms:.1f}ms" if self.completion_ms else "never"
        return (
            f"{self.scheme:<14} delivered={self.delivered}/{self.total_packets} "
            f"retransmissions={self.retransmissions:<5} completion={finish}"
        )


def run_reliable_transfer(
    scheme: str = "frr",
    total_packets: int = 20_000,
    fail_at_ps: int = 5 * MILLISECONDS,
    duration_ps: int = 400 * MILLISECONDS,
    timeout_ps: int = 10 * MILLISECONDS,
    control_config: ControlPlaneConfig = ControlPlaneConfig(),
) -> ReliableResult:
    """Run the transfer over one failover scheme ('frr'/'control-plane')."""
    if scheme == "frr":
        network = _build_diamond(make_sume_switch())
        program = FastRerouteProgram()
        program.install_protected_route(H1_IP, primary=1, backup=2)
        program.install_route(H0_IP, 0)
        _install_transit_routes(network, FastRerouteProgram)
    elif scheme == "control-plane":
        network = _build_diamond(make_baseline_switch())
        program = StaticRouteProgram()
        program.install_routes({H1_IP: 1, H0_IP: 0})
        _install_transit_routes(network, StaticRouteProgram)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    network.switches["s0"].load_program(program)
    # ACKs return over the s3→s2→s0 side, which never fails: the
    # experiment isolates *forward-path* repair (the s0→s1 link dies in
    # both directions, and s3 cannot observe a remote link's failure).
    network.switches["s3"].program.install_route(H0_IP, 2)

    sender = ReliableSender(
        network.hosts["h0"],
        H1_IP,
        total_packets=total_packets,
        window=32,
        timeout_ps=timeout_ps,
    )
    receiver = ReliableReceiver(network.hosts["h1"])
    sender.start(at_ps=100 * MICROSECONDS)

    link = network.link_between("s0", "s1")
    assert link is not None
    link.fail_at(fail_at_ps)

    if scheme == "control-plane":
        controller = ControlPlane(network.sim, control_config)
        network.sim.call_at(
            fail_at_ps + control_config.failure_detection_ps,
            lambda: controller.install_route(
                lambda: program.control_update(H1_IP, 2)
            ),
        )

    network.run(until_ps=duration_ps)

    stats = sender.stats
    return ReliableResult(
        scheme=scheme,
        total_packets=total_packets,
        delivered=receiver.delivered,
        retransmissions=stats.retransmissions,
        completed=stats.complete,
        completion_ms=(
            stats.completed_at_ps / MILLISECONDS if stats.completed_at_ps else None
        ),
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="reliable/frr",
        runner="repro.experiments.reliable_exp:run_reliable_transfer",
        params={"scheme": "frr", "total_packets": 20_000},
        app="reliable-transfer", topology="diamond",
        tags=("experiment",),
        summary="reliable transfer across a failover (long run)",
    ))


_register_scenarios()
