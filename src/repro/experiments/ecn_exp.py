"""Multi-bit vs. single-bit ECN signal quality (paper §3).

Bursty traffic sweeps the bottleneck queue through its whole range.
Each delivered packet carries a congestion signal the receiver decodes
into an occupancy estimate; the score is the mean absolute error
against the true occupancy recorded at marking time.  Six DSCP bits
should beat one ECN bit by an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.ecn import (
    MultiBitEcnProgram,
    SingleBitEcnProgram,
    decode_multi_bit,
    decode_single_bit,
)
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.packet import Packet
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.bursts import OnOffBurst

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002

BUFFER_BYTES = 64 * 1024


@dataclass
class EcnResult:
    """One marking scheme's decoding quality."""

    scheme: str
    samples: int
    mean_abs_error_bytes: float
    max_true_occupancy: int

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.scheme:<14} samples={self.samples:<6} "
            f"decode_error={self.mean_abs_error_bytes:9.0f}B "
            f"(queue peaked at {self.max_true_occupancy}B)"
        )


def run_ecn(
    scheme: str = "multi-bit",
    duration_ps: int = 20 * MILLISECONDS,
    seed: int = 37,
) -> EcnResult:
    """Run one marking scheme ('multi-bit' or 'single-bit')."""
    if scheme == "multi-bit":
        program = MultiBitEcnProgram(buffer_capacity_bytes=BUFFER_BYTES)
    elif scheme == "single-bit":
        program = SingleBitEcnProgram(mark_threshold_bytes=BUFFER_BYTES // 4)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    network = build_linear(
        make_sume_switch(queue_capacity_bytes=BUFFER_BYTES), switch_count=1
    )
    switch = network.switches["s0"]
    program.install_route(H1_IP, 1)
    program.install_route(H0_IP, 0)
    switch.load_program(program)
    switch.tm.set_port_rate(1, 2.0)  # bottleneck so the queue breathes

    errors: List[int] = []
    peak = [0]

    def receiver(pkt: Packet) -> None:
        true_occ = pkt.meta.get("true_bottleneck_occ")
        if true_occ is None:
            return
        peak[0] = max(peak[0], true_occ)
        if scheme == "multi-bit":
            estimate = decode_multi_bit(pkt, program.quantum)
        else:
            estimate = decode_single_bit(pkt, program.mark_threshold_bytes)
        if estimate is not None:
            errors.append(abs(estimate - true_occ))

    network.hosts["h1"].add_sink(receiver)

    flow = FlowSpec(H0_IP, H1_IP, sport=11, dport=12)
    burst = OnOffBurst(
        network.sim,
        network.hosts["h0"].send,
        flow,
        burst_packets=24,
        intra_gap_ps=1_200_000,
        mean_off_ps=300 * MICROSECONDS,
        payload_len=1400,
        seed=seed,
        name="ecn-bursts",
    )
    burst.start(at_ps=20 * MICROSECONDS)

    network.run(until_ps=duration_ps)
    return EcnResult(
        scheme=scheme,
        samples=len(errors),
        mean_abs_error_bytes=sum(errors) / len(errors) if errors else 0.0,
        max_true_occupancy=peak[0],
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for scheme in ("multi-bit", "single-bit"):
        register(ScenarioSpec(
            name=f"ecn/{scheme}",
            runner="repro.experiments.ecn_exp:run_ecn",
            params={"scheme": scheme, "seed": 37},
            app="ecn", workload="cbr", seed=37,
            tags=("experiment", "application"),
            summary=f"{scheme} ECN congestion marking",
        ))


_register_scenarios()
