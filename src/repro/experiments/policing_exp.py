"""Token-bucket policing: timer-built vs. fixed-function (paper §3).

Flows at different offered rates pass through a per-flow policer with a
1 Gb/s committed rate.  The timer-built policer (registers + TIMER
events) is compared against the fixed-function srTCM meter extern:
both should pass conformant traffic and clamp over-rate flows near the
committed rate; the timer policer additionally demonstrates a
customization (a shared borrowing pool) the fixed-function block cannot
express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.apps.policing import FixedFunctionPolicer, TimerTokenBucketPolicer
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.cbr import ConstantBitRate
from repro.workloads.sink import PacketSink

H1_IP = 0x0A00_0002


@dataclass
class PolicerFlowStats:
    """Per-flow policing outcome."""

    offered_gbps: float
    delivered_gbps: float
    limit_gbps: float

    @property
    def clamped_correctly(self) -> bool:
        """Delivered ≈ min(offered, limit) within 15%."""
        expected = min(self.offered_gbps, self.limit_gbps)
        return abs(self.delivered_gbps - expected) <= 0.15 * expected


@dataclass
class PolicingResult:
    """One policer run."""

    scheme: str
    flows: List[PolicerFlowStats]

    def summary_row(self) -> str:
        """A printable summary row."""
        cells = " ".join(
            f"{f.offered_gbps:.1f}->{f.delivered_gbps:.2f}G" for f in self.flows
        )
        ok = all(f.clamped_correctly for f in self.flows)
        return f"{self.scheme:<14} {cells}  conformant={ok}"


def run_policing(
    scheme: str = "timer",
    offered_gbps: Tuple[float, ...] = (0.5, 1.0, 3.0),
    limit_gbps: float = 1.0,
    duration_ps: int = 20 * MILLISECONDS,
) -> PolicingResult:
    """Run one policer ('timer', 'timer-borrowing', or 'meter')."""
    network = build_linear(make_sume_switch(), switch_count=1)
    switch = network.switches["s0"]
    if scheme == "timer":
        program = TimerTokenBucketPolicer(
            num_flows=64,
            rate_bps=limit_gbps * 1e9,
            burst_bytes=30_000,
            refill_period_ps=100 * MICROSECONDS,
        )
    elif scheme == "timer-borrowing":
        program = TimerTokenBucketPolicer(
            num_flows=64,
            rate_bps=limit_gbps * 1e9,
            burst_bytes=30_000,
            refill_period_ps=100 * MICROSECONDS,
            borrowing=True,
        )
    elif scheme == "meter":
        program = FixedFunctionPolicer(
            num_flows=64, rate_bps=limit_gbps * 1e9, burst_bytes=30_000
        )
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    program.install_route(H1_IP, 1)
    switch.load_program(program)

    sink = PacketSink("rx")
    network.hosts["h1"].add_sink(sink)

    flows: List[FlowSpec] = []
    for index, rate in enumerate(offered_gbps):
        flow = FlowSpec(0x0A00_0001, H1_IP, sport=6_000 + index, dport=7_000)
        flows.append(flow)
        gen = ConstantBitRate(
            network.sim,
            network.hosts["h0"].send,
            flow,
            rate_gbps=rate,
            payload_len=1400,
            name=f"flow{index}",
        )
        gen.start(at_ps=20 * MICROSECONDS)

    network.run(until_ps=duration_ps)

    stats = []
    for flow, rate in zip(flows, offered_gbps):
        key = (flow.src_ip, flow.dst_ip, 17, flow.sport, flow.dport)
        packets = sink.per_flow.get(key, 0)
        delivered_bits = packets * (1400 + 42) * 8
        delivered_gbps = delivered_bits / (duration_ps / SECONDS) / 1e9
        stats.append(
            PolicerFlowStats(
                offered_gbps=rate,
                delivered_gbps=delivered_gbps,
                limit_gbps=limit_gbps,
            )
        )
    return PolicingResult(scheme=scheme, flows=stats)


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="policing/timer",
        runner="repro.experiments.policing_exp:run_policing",
        params={"scheme": "timer", "limit_gbps": 1.0},
        app="policing", workload="cbr",
        tags=("experiment", "application"),
        summary="timer-refilled token-bucket rate policing",
    ))


_register_scenarios()
