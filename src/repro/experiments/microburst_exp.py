"""Microburst detection experiment (paper §2's worked example).

A dumbbell with background senders plus one ON/OFF *culprit* flow that
periodically slams the bottleneck queue.  The event-driven detector
(paper's ``microburst.p4``) runs on a SUME Event Switch; the Snappy
baseline runs on a baseline PSA switch.  Reported per detector:

* whether the culprit was caught, and how fast after burst start,
* false positives (other flows flagged),
* total stateful footprint in bits — the ≥4× claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.microburst import CmsMicroburstDetector, MicroburstDetector
from repro.apps.snappy import SnappyDetector
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.net.topology import build_dumbbell
from repro.packet.hashing import ip_pair_hash
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.bursts import OnOffBurst
from repro.workloads.cbr import ConstantBitRate

#: The receiver's IP in the dumbbell (rx0 is host index 100).
RX_IP = 0x0A00_0000 + 101

NUM_REGS = 1024
FLOW_THRESH_BYTES = 8_000


@dataclass
class MicroburstResult:
    """Outcome of one detector run."""

    detector: str
    architecture: str
    detection_stage: str
    state_bits: int
    culprit_flow_id: int
    culprit_detected: bool
    detections_total: int
    false_positive_flows: int
    detection_latency_ps: Optional[int]
    bursts_sent: int

    def summary_row(self) -> str:
        """A printable summary row."""
        latency = (
            f"{self.detection_latency_ps / MICROSECONDS:.1f}us"
            if self.detection_latency_ps is not None
            else "never"
        )
        return (
            f"{self.detector:<12} arch={self.architecture:<18} "
            f"stage={self.detection_stage:<7} state={self.state_bits:>8}b "
            f"caught={str(self.culprit_detected):<5} fp_flows={self.false_positive_flows} "
            f"latency={latency}"
        )


def _drive_workload(network, background_senders: int, duration_ps: int, seed: int):
    """Attach background CBR flows and the bursty culprit; returns culprit."""
    hosts = network.hosts
    background = []
    for i in range(background_senders):
        tx = hosts[f"tx{i}"]
        flow = FlowSpec(src_ip=tx.ip, dst_ip=RX_IP, sport=7_000 + i, dport=9_000)
        gen = ConstantBitRate(
            network.sim, tx.send, flow, rate_gbps=1.0, payload_len=1400,
            name=f"bg{i}",
        )
        gen.start(at_ps=10 * MICROSECONDS)
        background.append(gen)
    culprit_tx = hosts[f"tx{background_senders}"]
    culprit_flow = FlowSpec(
        src_ip=culprit_tx.ip, dst_ip=RX_IP, sport=7_999, dport=9_000
    )
    culprit = OnOffBurst(
        network.sim,
        culprit_tx.send,
        culprit_flow,
        burst_packets=48,
        intra_gap_ps=1_200_000,  # ≈ 1460B @ 10 Gb/s back-to-back
        mean_off_ps=int(1.5 * MILLISECONDS),
        payload_len=1400,
        seed=seed,
        name="culprit",
    )
    culprit.start(at_ps=100 * MICROSECONDS)
    return culprit, culprit_flow


def _evaluate(
    detector,
    detector_name: str,
    architecture: str,
    detection_stage: str,
    culprit,
    culprit_flow: FlowSpec,
    num_regs: int,
) -> MicroburstResult:
    culprit_fid = ip_pair_hash(culprit_flow.src_ip, culprit_flow.dst_ip, num_regs)
    detected_flows = detector.detected_flows()
    latency: Optional[int] = None
    first = detector.first_detection_ps(culprit_fid)
    if first is not None and culprit.burst_start_times:
        starts = [t for t in culprit.burst_start_times if t <= first]
        if starts:
            latency = first - starts[-1]
    return MicroburstResult(
        detector=detector_name,
        architecture=architecture,
        detection_stage=detection_stage,
        state_bits=detector.state_bits(),
        culprit_flow_id=culprit_fid,
        culprit_detected=culprit_fid in detected_flows,
        detections_total=len(detector.detections),
        false_positive_flows=len([f for f in detected_flows if f != culprit_fid]),
        detection_latency_ps=latency,
        bursts_sent=culprit.bursts_sent,
    )


@dataclass
class MicroburstSetup:
    """A built-but-unfinished event-driven microburst run.

    Everything referenced here pickles, so an in-flight run can be
    checkpointed (``Simulator.checkpoint(path, state=setup)``) and
    finished later — possibly in a fresh process — with
    :func:`finish_event_driven`.
    """

    network: object  # repro.net.network.Network
    detector: MicroburstDetector
    culprit: OnOffBurst
    culprit_flow: FlowSpec
    duration_ps: int


def prepare_event_driven(
    duration_ps: int = 20 * MILLISECONDS,
    background_senders: int = 3,
    seed: int = 11,
) -> MicroburstSetup:
    """Build the §2 event-driven run without advancing the clock."""
    network = build_dumbbell(
        make_sume_switch(queue_capacity_bytes=128 * 1024),
        senders=background_senders + 1,
        receivers=1,
    )
    detector = MicroburstDetector(
        num_regs=NUM_REGS, flow_thresh_bytes=FLOW_THRESH_BYTES
    )
    detector.install_route(RX_IP, 0)  # s0: toward s1
    network.switches["s0"].load_program(detector)
    passthrough = MicroburstDetector(num_regs=16, flow_thresh_bytes=1 << 30)
    passthrough.install_route(RX_IP, 1)  # s1: toward rx0
    network.switches["s1"].load_program(passthrough)
    culprit, culprit_flow = _drive_workload(
        network, background_senders, duration_ps, seed
    )
    return MicroburstSetup(
        network=network,
        detector=detector,
        culprit=culprit,
        culprit_flow=culprit_flow,
        duration_ps=duration_ps,
    )


def finish_event_driven(setup: MicroburstSetup) -> MicroburstResult:
    """Run a prepared (or checkpoint-restored) setup to completion."""
    setup.network.run(until_ps=setup.duration_ps)
    return _evaluate(
        setup.detector,
        "event-driven",
        "sume-event-switch",
        "ingress",
        setup.culprit,
        setup.culprit_flow,
        NUM_REGS,
    )


def run_event_driven(
    duration_ps: int = 20 * MILLISECONDS,
    background_senders: int = 3,
    seed: int = 11,
) -> MicroburstResult:
    """The paper's detector on the SUME Event Switch."""
    return finish_event_driven(
        prepare_event_driven(duration_ps, background_senders, seed)
    )


def run_cms_variant(
    duration_ps: int = 20 * MILLISECONDS,
    background_senders: int = 3,
    seed: int = 11,
    width: int = 128,
    depth: int = 2,
) -> MicroburstResult:
    """The §2-footnote variant: occupancy in a count-min sketch."""
    network = build_dumbbell(
        make_sume_switch(queue_capacity_bytes=128 * 1024),
        senders=background_senders + 1,
        receivers=1,
    )
    detector = CmsMicroburstDetector(
        width=width, depth=depth, flow_thresh_bytes=FLOW_THRESH_BYTES
    )
    detector.install_route(RX_IP, 0)
    network.switches["s0"].load_program(detector)
    passthrough = MicroburstDetector(num_regs=16, flow_thresh_bytes=1 << 30)
    passthrough.install_route(RX_IP, 1)
    network.switches["s1"].load_program(passthrough)
    culprit, culprit_flow = _drive_workload(
        network, background_senders, duration_ps, seed
    )
    network.run(until_ps=duration_ps)
    return _evaluate(
        detector,
        "event-cms",
        "sume-event-switch",
        "ingress",
        culprit,
        culprit_flow,
        1 << 20,  # reporting identity space used by the CMS variant
    )


def run_snappy_baseline(
    duration_ps: int = 20 * MILLISECONDS,
    background_senders: int = 3,
    seed: int = 11,
    snapshot_count: int = 4,
) -> MicroburstResult:
    """The Snappy approximation on a baseline PSA switch."""
    network = build_dumbbell(
        make_baseline_switch(queue_capacity_bytes=128 * 1024),
        senders=background_senders + 1,
        receivers=1,
    )
    detector = SnappyDetector(
        num_regs=NUM_REGS,
        flow_thresh_bytes=FLOW_THRESH_BYTES,
        snapshot_count=snapshot_count,
        window_ps=50 * MICROSECONDS,
    )
    detector.install_route(RX_IP, 0)
    network.switches["s0"].load_program(detector)
    passthrough = SnappyDetector(
        num_regs=16, flow_thresh_bytes=1 << 30, snapshot_count=2
    )
    passthrough.install_route(RX_IP, 1)
    network.switches["s1"].load_program(passthrough)
    culprit, culprit_flow = _drive_workload(
        network, background_senders, duration_ps, seed
    )
    network.run(until_ps=duration_ps)
    return _evaluate(
        detector,
        "snappy",
        "baseline-psa",
        "egress",
        culprit,
        culprit_flow,
        NUM_REGS,
    )


def state_reduction_factor(
    event_result: MicroburstResult, snappy_result: MicroburstResult
) -> float:
    """The paper's headline: Snappy state / event-driven state."""
    if event_result.state_bits == 0:
        raise ValueError("event-driven detector reports zero state")
    return snappy_result.state_bits / event_result.state_bits


def run_detector_pair() -> dict:
    """Both §2 detectors back to back (the `microburst` events source)."""
    return {
        "event-driven": run_event_driven(),
        "snappy": run_snappy_baseline(),
    }


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="microburst/event-driven",
        builder="repro.experiments.microburst_exp:prepare_event_driven",
        finisher="repro.experiments.microburst_exp:finish_event_driven",
        params={"duration_ps": 20 * MILLISECONDS, "background_senders": 3,
                "seed": 11},
        app="microburst", topology="dumbbell", workload="cbr+onoff",
        seed=11, duration_ps=20 * MILLISECONDS,
        tags=("experiment", "paper"),
        summary="§2 event-driven microburst detector (SUME event switch)",
    ))
    register(ScenarioSpec(
        name="microburst/snappy",
        runner="repro.experiments.microburst_exp:run_snappy_baseline",
        params={"duration_ps": 20 * MILLISECONDS, "background_senders": 3,
                "seed": 11, "snapshot_count": 4},
        app="microburst", topology="dumbbell", workload="cbr+onoff",
        seed=11, duration_ps=20 * MILLISECONDS,
        tags=("experiment", "paper"),
        summary="§2 Snappy baseline on a baseline PSA switch",
    ))
    register(ScenarioSpec(
        name="microburst/cms",
        runner="repro.experiments.microburst_exp:run_cms_variant",
        params={"duration_ps": 20 * MILLISECONDS, "background_senders": 3,
                "seed": 11, "width": 128, "depth": 2},
        app="microburst", topology="dumbbell", workload="cbr+onoff",
        seed=11, duration_ps=20 * MILLISECONDS,
        tags=("experiment", "paper"),
        summary="§2 footnote variant: occupancy in a count-min sketch",
    ))
    register(ScenarioSpec(
        name="microburst",
        runner="repro.experiments.microburst_exp:run_detector_pair",
        params={},
        app="microburst", topology="dumbbell", workload="cbr+onoff",
        tags=("source",),
        summary="events source: both §2 detectors back to back",
    ))


_register_scenarios()
