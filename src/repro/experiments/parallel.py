"""Process-parallel sweeps of independent experiment points.

Figure sweeps and benchmark trajectories run many *independent*
simulations — each point builds its own :class:`~repro.sim.kernel.Simulator`
and shares no state with its neighbours — so they parallelize across
processes trivially.  :func:`run_points` fans points over a
``multiprocessing`` pool and merges results **deterministically**:
results always come back in input order (``Pool.map`` semantics),
regardless of which worker finished first, so a parallel sweep is
byte-for-byte the same report as a serial one.

Points and their results must be picklable; the worker function must be
importable (module-level).  With ``workers=1``, a single point, or on a
single-CPU host the sweep degrades to a plain serial loop in-process —
no pool is spawned, which also keeps the serial path debuggable.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple


def default_workers() -> int:
    """Worker count used when the caller does not pick one."""
    return max(1, os.cpu_count() or 1)


def run_points(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[Any]:
    """Apply ``fn`` to every point, fanning across processes.

    Returns ``[fn(p) for p in points]`` — same values, same order — but
    computed on up to ``workers`` processes.  ``chunksize=1`` keeps
    scheduling fair for unevenly sized points; raise it for many tiny
    points.
    """
    points = list(points)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(points) <= 1:
        return [fn(point) for point in points]
    workers = min(workers, len(points))
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(fn, points, chunksize=chunksize)


def _apply(task: Tuple[Callable[..., Any], tuple, dict]) -> Any:
    fn, args, kwargs = task
    return fn(*args, **kwargs)


def run_tasks(
    tasks: Sequence[Tuple[Callable[..., Any], tuple, dict]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run ``(fn, args, kwargs)`` triples in parallel, input-ordered.

    Convenience wrapper over :func:`run_points` for sweeps whose points
    call different functions or need keyword parameters.
    """
    return run_points(_apply, tasks, workers=workers)
