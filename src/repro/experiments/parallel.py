"""Process-parallel sweeps of independent experiment points.

Figure sweeps and benchmark trajectories run many *independent*
simulations — each point builds its own :class:`~repro.sim.kernel.Simulator`
and shares no state with its neighbours — so they parallelize across
processes trivially.  :func:`run_points` fans points over a
``multiprocessing`` pool and merges results **deterministically**:
results always come back in input order (``Pool.map`` semantics),
regardless of which worker finished first, so a parallel sweep is
byte-for-byte the same report as a serial one.

Points and their results must be picklable; the worker function must be
importable (module-level).  With ``workers=1``, a single point, or on a
single-CPU host the sweep degrades to a plain serial loop in-process —
no pool is spawned, which also keeps the serial path debuggable.
"""

from __future__ import annotations

import multiprocessing.connection
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple


def default_workers() -> int:
    """Worker count used when the caller does not pick one.

    Prefers the scheduling affinity mask over the raw CPU count:
    cgroup-limited CI runners and containers report every host core via
    ``os.cpu_count()`` but only let the process run on a few, and
    oversubscribing the pool there just adds context-switch overhead.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux or restricted platform
        return max(1, os.cpu_count() or 1)


def run_points(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[Any]:
    """Apply ``fn`` to every point, fanning across processes.

    Returns ``[fn(p) for p in points]`` — same values, same order — but
    computed on up to ``workers`` processes.  ``chunksize=1`` keeps
    scheduling fair for unevenly sized points; raise it for many tiny
    points.
    """
    points = list(points)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(points) <= 1:
        return [fn(point) for point in points]
    workers = min(workers, len(points))
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(fn, points, chunksize=chunksize)


def _apply(task: Tuple[Callable[..., Any], tuple, dict]) -> Any:
    fn, args, kwargs = task
    return fn(*args, **kwargs)


def run_tasks(
    tasks: Sequence[Tuple[Callable[..., Any], tuple, dict]],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run ``(fn, args, kwargs)`` triples in parallel, input-ordered.

    Convenience wrapper over :func:`run_points` for sweeps whose points
    call different functions or need keyword parameters.
    """
    return run_points(_apply, tasks, workers=workers)


# ---------------------------------------------------------------------------
# Persistent workers
#
# Pool.map is fire-and-forget: each point is independent and workers
# keep no state between points.  The sharded simulator needs the
# opposite — a worker that builds its shard once and then exchanges
# small synchronization messages with the coordinator every window.
# PersistentWorker wraps one such process + duplex pipe; the message
# protocol on top of it is owned by the caller (repro.sim.shard).
# ---------------------------------------------------------------------------


class WorkerCrashed(RuntimeError):
    """A persistent worker died or reported an exception."""


class PersistentWorker:
    """One long-lived worker process behind a duplex pipe.

    ``main`` must be a module-level (picklable) function with signature
    ``main(conn, *args)``; it owns the worker side of the pipe until it
    returns.  The parent talks through :meth:`send` / :meth:`recv`;
    :meth:`recv` raises :class:`WorkerCrashed` when the child dies
    instead of blocking forever, and converts ``("error", traceback)``
    replies into exceptions carrying the worker's traceback.
    """

    def __init__(self, main: Callable[..., None], *args: Any) -> None:
        # fork keeps worker startup cheap (no re-import of the package);
        # platforms without it (macOS 3.14+, Windows) fall back to spawn,
        # which is why ``main`` must stay module-level/picklable.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=main, args=(child_conn, *args), daemon=True
        )
        self._process.start()
        child_conn.close()

    @property
    def connection(self):
        """The parent end of the duplex pipe, for multiplexed waits.

        Callers juggling several workers hand these to :func:`wait_any`
        (``multiprocessing.connection.wait`` underneath) and then call
        :meth:`recv` on whichever workers are ready — no polling, no
        blocking on a single slow worker.
        """
        return self._conn

    def send(self, message: Any) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashed(f"worker pipe closed: {exc}") from exc

    def recv(self) -> Any:
        try:
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            code = self._process.exitcode
            raise WorkerCrashed(
                f"worker exited (exitcode={code}) before replying"
            ) from exc
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            raise WorkerCrashed(f"worker raised:\n{reply[1]}")
        return reply

    def close(self) -> None:
        """Terminate the process and release the pipe; idempotent."""
        if self._process.is_alive():
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._process.join(timeout=2.0)
            if self._process.is_alive():  # pragma: no cover - safety net
                self._process.terminate()
                self._process.join(timeout=2.0)
        self._conn.close()

    def __enter__(self) -> "PersistentWorker":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def wait_any(
    workers: Sequence["PersistentWorker"], timeout: Optional[float] = None
) -> List["PersistentWorker"]:
    """Workers with a reply (or a death) ready to :meth:`~PersistentWorker.recv`.

    Blocks until at least one of ``workers`` has something on its pipe —
    including EOF from a crashed child, which the subsequent ``recv``
    converts into :class:`WorkerCrashed`.  Order follows the input
    sequence, not readiness order, so callers draining replies stay
    deterministic.
    """
    ready = multiprocessing.connection.wait(
        [worker.connection for worker in workers], timeout=timeout
    )
    ready_set = set(ready)
    return [worker for worker in workers if worker.connection in ready_set]
