"""HULA vs. ECMP load balancing on a leaf-spine fabric (paper §3).

Two elephant flows leave leaf0 for hosts behind leaf1.  Their five-
tuples are chosen so static ECMP hashes both onto the *same* uplink —
the pathological (but common) collision HULA exists to fix.  HULA's
timer-generated probes measure path utilization and move one elephant
to the idle spine at the next flowlet boundary.

Reported: bytes transmitted per leaf0 uplink, an imbalance score
(max/mean uplink load), bottleneck drops, and receiver goodput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.hula import EcmpLeafProgram, HulaLeafProgram, HulaSpineProgram
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_leaf_spine
from repro.packet.packet import FiveTuple
from repro.packet.hashing import tuple_hash
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.bursts import OnOffBurst
from repro.workloads.sink import PacketSink


@dataclass
class HulaResult:
    """One load-balancing run."""

    scheme: str
    uplink_tx_bytes: List[int]
    imbalance: float
    drops: int
    delivered_packets: int
    probes_sent: int
    path_switches: int

    def summary_row(self) -> str:
        """A printable summary row."""
        loads = "/".join(f"{b // 1000}kB" for b in self.uplink_tx_bytes)
        return (
            f"{self.scheme:<6} uplinks={loads:<22} imbalance={self.imbalance:5.2f} "
            f"drops={self.drops:<5} delivered={self.delivered_packets}"
        )


def _sport_hashing_to(src_ip: int, dst_ip: int, uplinks: int, target: int) -> int:
    """A source port whose five-tuple ECMP-hashes onto ``target``."""
    for sport in range(20_000, 30_000):
        ftuple = FiveTuple(src_ip, dst_ip, 17, sport, 9_000)
        if tuple_hash(ftuple, uplinks) == target:
            return sport
    raise RuntimeError("no port hashing to the target uplink found")


def _setup(scheme: str, seed: int):
    fabric = build_leaf_spine(
        make_sume_switch(queue_capacity_bytes=256 * 1024),
        leaf_count=2,
        spine_count=2,
        hosts_per_leaf=2,
    )
    leaf_programs = {}
    for leaf_index, leaf in enumerate(fabric.leaves):
        if scheme == "hula":
            program = HulaLeafProgram(
                tor_id=leaf_index,
                uplink_ports=fabric.uplink_ports[leaf.name],
                tor_count=2,
                probe_period_ps=50 * MICROSECONDS,
                flowlet_gap_ps=200 * MICROSECONDS,
            )
        else:
            program = EcmpLeafProgram(uplink_ports=fabric.uplink_ports[leaf.name])
        # Local hosts.
        base = fabric.host_port_base[leaf.name]
        for host_index, host in enumerate(fabric.hosts[leaf.name]):
            program.install_route(host.ip, base + host_index)
        leaf_programs[leaf.name] = program

    # Remote host mappings.
    for leaf_index, leaf in enumerate(fabric.leaves):
        other = fabric.leaves[1 - leaf_index]
        for host in fabric.hosts[other.name]:
            leaf_programs[leaf.name].install_remote(host.ip, 1 - leaf_index)

    for leaf in fabric.leaves:
        leaf.load_program(leaf_programs[leaf.name])

    for spine_index, spine in enumerate(fabric.spines):
        spine_program = HulaSpineProgram(
            leaf_ports=fabric.downlink_ports[spine.name],
            decay_period_ps=50 * MICROSECONDS,
        )
        # Spines route by destination leaf: host IPs behind leaf i exit
        # via downlink port i.
        for leaf_index, leaf in enumerate(fabric.leaves):
            for host in fabric.hosts[leaf.name]:
                spine_program.install_route(host.ip, leaf_index)
        spine.load_program(spine_program)

    return fabric, leaf_programs


def run_load_balance(
    scheme: str = "hula",
    duration_ps: int = 10 * MILLISECONDS,
    elephant_gbps: float = 6.0,
    seed: int = 3,
) -> HulaResult:
    """Run one scheme ('hula' or 'ecmp') and report uplink balance."""
    if scheme not in ("hula", "ecmp"):
        raise ValueError(f"unknown scheme {scheme!r}")
    fabric, leaf_programs = _setup(scheme, seed)
    network = fabric.network

    src0, src1 = fabric.hosts["leaf0"]
    dst0, dst1 = fabric.hosts["leaf1"]
    # Both elephants ECMP-hash onto uplink 0: the collision HULA fixes.
    sport_a = _sport_hashing_to(src0.ip, dst0.ip, 2, target=0)
    sport_b = _sport_hashing_to(src1.ip, dst0.ip, 2, target=0)
    sink0, sink1 = PacketSink("dst0"), PacketSink("dst1")
    dst0.add_sink(sink0)
    dst1.add_sink(sink1)

    flows = [
        (src0, FlowSpec(src0.ip, dst0.ip, sport=sport_a, dport=9_000)),
        (src1, FlowSpec(src1.ip, dst0.ip, sport=sport_b, dport=9_000)),
    ]
    # ON/OFF elephants: bursts at ~6 Gb/s with quiet gaps long enough to
    # cross HULA's flowlet boundary, so paths can migrate.
    sample_wire = (1400 + 42 + 20) * 8  # payload + headers + preamble/IFG
    intra_gap = max(1, int(sample_wire * 1_000 / elephant_gbps))
    generators = []
    for index, (host, flow) in enumerate(flows):
        gen = OnOffBurst(
            network.sim,
            host.send,
            flow,
            burst_packets=200,
            intra_gap_ps=intra_gap,
            mean_off_ps=400 * MICROSECONDS,
            payload_len=1400,
            seed=seed + index,
            name=f"elephant:{flow.sport}",
        )
        gen.start(at_ps=200 * MICROSECONDS)
        generators.append(gen)

    network.run(until_ps=duration_ps)

    leaf0 = fabric.leaves[0]
    uplink_bytes = [
        leaf0.tm.port_stats(port)["tx_bytes"] for port in fabric.uplink_ports["leaf0"]
    ]
    mean_load = sum(uplink_bytes) / len(uplink_bytes)
    imbalance = max(uplink_bytes) / mean_load if mean_load else 0.0
    program = leaf_programs["leaf0"]
    return HulaResult(
        scheme=scheme,
        uplink_tx_bytes=uplink_bytes,
        imbalance=imbalance,
        drops=leaf0.tm.drops_overflow,
        delivered_packets=sink0.packets + sink1.packets,
        probes_sent=getattr(program, "probes_sent", 0),
        path_switches=getattr(program, "path_switches", 0),
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for scheme in ("ecmp", "hula"):
        register(ScenarioSpec(
            name=f"load-balance/{scheme}",
            runner="repro.experiments.hula_exp:run_load_balance",
            params={"scheme": scheme, "seed": 3},
            app="hula", topology="leaf-spine", workload="cbr",
            seed=3,
            tags=("experiment", "application"),
            summary=f"{scheme} load balancing on a 2x2 leaf-spine fabric",
        ))


_register_scenarios()
