"""Event Merger behaviour under load (paper Figure 4).

The Figure 4 experiment: drive a SUME Event Switch at increasing
offered load with a program that consumes enqueue/dequeue events, and
watch how event metadata reaches the pipeline —

* at low load most events ride **injected empty packets** (plenty of
  idle cycles, no carriers),
* at high load most events **piggyback** on ingress packets,
* with injection *disabled* (the ablation) events queue in the merger
  and overflow once no carriers appear.

Also reports the mean event-delivery wait, i.e. how long events sat in
the merger — the architecture-induced staleness of §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.microburst import MicroburstDetector
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.sim.units import MILLISECONDS, NANOSECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.poisson import PoissonTraffic

H1_IP = 0x0A00_0002


@dataclass
class MergerResult:
    """One offered-load point."""

    offered_load: float
    injection_enabled: bool
    events_offered: int
    piggybacked: int
    injected_events: int
    injected_packets: int
    events_dropped: int
    mean_wait_ns: float
    stranded_at_end: int

    @property
    def piggyback_fraction(self) -> float:
        """Share of delivered events that rode an ingress packet."""
        delivered = self.piggybacked + self.injected_events
        return self.piggybacked / delivered if delivered else 0.0

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"load={self.offered_load:4.2f} inject={str(self.injection_enabled):<5} "
            f"events={self.events_offered:<6} piggyback%={100 * self.piggyback_fraction:5.1f} "
            f"empty_pkts={self.injected_packets:<6} dropped={self.events_dropped:<5} "
            f"wait={self.mean_wait_ns:7.1f}ns stranded={self.stranded_at_end}"
        )


def run_merger_load(
    offered_load: float = 0.5,
    injection_enabled: bool = True,
    duration_ps: int = 2 * MILLISECONDS,
    seed: int = 9,
) -> MergerResult:
    """Drive one load point through the SUME merger.

    ``offered_load`` is the fraction of the 10 Gb/s bottleneck consumed
    by 64-byte-ish packets.
    """
    if not 0 < offered_load <= 1.2:
        raise ValueError(f"offered load must be in (0, 1.2], got {offered_load}")
    network = build_linear(
        make_sume_switch(merger_injection_enabled=injection_enabled),
        switch_count=1,
    )
    switch = network.switches["s0"]
    program = MicroburstDetector(num_regs=256, flow_thresh_bytes=1 << 30)
    program.install_route(H1_IP, 1)
    switch.load_program(program)

    h0 = network.hosts["h0"]
    # Mean packet rate for the requested load at 10 Gb/s with ~130B
    # frames (small packets stress the merger hardest).
    payload = 72
    frame_wire_bits = (payload + 42 + 20) * 8
    pps = offered_load * 10e9 / frame_wire_bits
    workload = PoissonTraffic(
        network.sim,
        h0.send,
        FlowSpec(0x0A00_0001, H1_IP, sport=777, dport=888),
        mean_pps=pps,
        payload_len=payload,
        seed=seed,
        name="merger-load",
    )
    workload.start(at_ps=10_000)
    network.run(until_ps=duration_ps)

    stats = switch.merger.stats
    return MergerResult(
        offered_load=offered_load,
        injection_enabled=injection_enabled,
        events_offered=stats.offered,
        piggybacked=stats.piggybacked,
        injected_events=stats.injected_events,
        injected_packets=stats.injected_packets,
        events_dropped=stats.dropped,
        mean_wait_ns=stats.mean_wait_ps / NANOSECONDS,
        stranded_at_end=switch.merger.pending_count,
    )


def sweep_offered_load(
    loads: List[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    injection_enabled: bool = True,
    duration_ps: int = 2 * MILLISECONDS,
) -> List[MergerResult]:
    """The Figure 4 sweep."""
    return [
        run_merger_load(load, injection_enabled, duration_ps) for load in loads
    ]


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="merger/load",
        runner="repro.experiments.merger_exp:run_merger_load",
        params={"offered_load": 0.5, "injection_enabled": True, "seed": 9},
        app="merger", seed=9,
        tags=("experiment",),
        summary="event-merger behavior at one offered load",
    ))
    register(ScenarioSpec(
        name="merger/sweep",
        runner="repro.experiments.merger_exp:sweep_offered_load",
        params={"injection_enabled": True},
        app="merger",
        tags=("experiment",),
        summary="event-merger offered-load sweep",
    ))


_register_scenarios()
