"""Native events vs. Tofino-style emulation (paper §6).

The same program — a dequeue auditor that consumes DEQUEUE and TIMER
events and records how late each one arrives — runs on:

* the **SUME Event Switch** (native events through the Event Merger),
* the **Tofino-like emulated switch**: timers via the packet generator,
  dequeues via recirculation through a fixed-rate internal port.

Sweeping the packet (= dequeue-event) rate shows the §6 claim: emulation
*works* but pays in recirculation bandwidth and latency, and collapses
(drops events) once the recirculation port saturates — hardware changes
are needed for the full Table 1 event set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.experiments.factories import make_emulated_switch, make_sume_switch
from repro.net.topology import build_linear
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import MICROSECONDS, MILLISECONDS, NANOSECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.poisson import PoissonTraffic

H1_IP = 0x0A00_0002
AUDIT_TIMER = 9


class DequeueAuditor(ForwardingProgram):
    """Records the delivery lag of every DEQUEUE and TIMER event."""

    name = "dequeue-auditor"

    def __init__(self, timer_period_ps: int = 100 * MICROSECONDS) -> None:
        super().__init__()
        self.timer_period_ps = timer_period_ps
        self.dequeue_lags_ps: List[int] = []
        self.timer_fires = 0

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(AUDIT_TIMER, self.timer_period_ps)

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.forward_by_ip(pkt, meta)

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self.dequeue_lags_ps.append(ctx.now_ps - event.time_ps)

    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        self.timer_fires += 1


@dataclass
class EmulationResult:
    """One architecture at one event rate."""

    architecture: str
    event_rate_pps: float
    dequeues_fired: int
    dequeues_delivered: int
    events_lost: int
    mean_lag_ns: float
    max_lag_ns: float
    recirc_utilization: float
    pipeline_slot_fraction: float

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.architecture:<18} rate={self.event_rate_pps / 1e6:5.2f}Mpps "
            f"delivered={self.dequeues_delivered:<6} lost={self.events_lost:<5} "
            f"lag(mean/max)={self.mean_lag_ns:7.1f}/{self.max_lag_ns:8.1f}ns "
            f"recirc={100 * self.recirc_utilization:5.1f}%"
        )


def run_emulation_point(
    architecture: str = "sume",
    event_rate_pps: float = 500_000.0,
    duration_ps: int = 5 * MILLISECONDS,
    recirc_rate_gbps: float = 1.0,
    seed: int = 13,
) -> EmulationResult:
    """One (architecture, dequeue-rate) measurement."""
    if architecture == "sume":
        factory = make_sume_switch()
    elif architecture == "tofino-emulated":
        factory = make_emulated_switch(recirc_rate_gbps=recirc_rate_gbps)
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    network = build_linear(factory, switch_count=1)
    switch = network.switches["s0"]
    auditor = DequeueAuditor()
    auditor.install_route(H1_IP, 1)
    switch.load_program(auditor)

    workload = PoissonTraffic(
        network.sim,
        network.hosts["h0"].send,
        FlowSpec(0x0A00_0001, H1_IP, sport=321, dport=654),
        mean_pps=event_rate_pps,
        payload_len=200,
        seed=seed,
        name="audit-load",
    )
    workload.start(at_ps=10_000)
    network.run(until_ps=duration_ps)

    lags = auditor.dequeue_lags_ps
    fired = switch.bus.fired[EventType.DEQUEUE]
    delivered = len(lags)
    recirc_util = 0.0
    slot_fraction = 0.0
    lost = 0
    if architecture == "tofino-emulated":
        report = switch.emulation_overhead_report(duration_ps)
        recirc_util = report["recirc_utilization"]
        slot_fraction = report["pipeline_slot_fraction"]
        lost = report["events_lost"]
    else:
        lost = switch.merger.stats.dropped
    return EmulationResult(
        architecture=architecture,
        event_rate_pps=event_rate_pps,
        dequeues_fired=fired,
        dequeues_delivered=delivered,
        events_lost=lost,
        mean_lag_ns=(sum(lags) / len(lags) / NANOSECONDS) if lags else 0.0,
        max_lag_ns=(max(lags) / NANOSECONDS) if lags else 0.0,
        recirc_utilization=recirc_util,
        pipeline_slot_fraction=slot_fraction,
    )


def sweep_event_rate(
    rates_pps: List[float] = (100_000.0, 500_000.0, 1_000_000.0, 2_000_000.0),
    duration_ps: int = 5 * MILLISECONDS,
    recirc_rate_gbps: float = 1.0,
) -> Dict[str, List[EmulationResult]]:
    """Native vs. emulated across dequeue-event rates."""
    return {
        arch: [
            run_emulation_point(arch, rate, duration_ps, recirc_rate_gbps)
            for rate in rates_pps
        ]
        for arch in ("sume", "tofino-emulated")
    }


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="emulation/sweep",
        runner="repro.experiments.emulation_exp:sweep_event_rate",
        params={},
        app="emulation",
        tags=("experiment",),
        summary="§6: native events vs Tofino-style emulation rate sweep",
    ))
    register(ScenarioSpec(
        name="emulation/point",
        runner="repro.experiments.emulation_exp:run_emulation_point",
        params={"architecture": "sume", "event_rate_pps": 500_000.0},
        app="emulation",
        tags=("experiment",),
        summary="one native-vs-emulated measurement point",
    ))


_register_scenarios()
