"""Benchmark-trajectory harness: record the simulator's own speed.

Runs the kernel/switch micro-benchmarks from
``benchmarks/test_simulator_performance.py`` — bare-kernel event
throughput, end-to-end packets through a SUME switch, the flow-decision
cache, and the sharded fat-tree engine — and writes a
``BENCH_<label>.json`` snapshot so the repo accumulates a perf
trajectory over time and CI can fail on regressions.

Schema (version 1)::

    {
      "schema": 1,
      "label": "pr2",                  # trajectory point name
      "python": "3.11.7",
      "scheduler": "heap",             # kernel backend measured
      "benchmarks": {
        "kernel": {
          "rounds": 5,
          "wall_s_min": 0.0123,        # best round (robust statistic)
          "wall_s_mean": 0.0131,
          "wall_s_all": [...],         # per-round wall seconds
          "events": 20000,             # simulated events per round
          "events_per_sec": 1626016.0  # events / best wall time
        },
        "switch": {
          ... same shape ...,
          "packets": 500,
          "pkts_per_sec": 8347.0,
          "events": 7504,              # kernel events behind the packets
          "events_per_sec": 125275.0
        }
      }
    }

Regression checks (:func:`compare`) use ``wall_s_min``: on shared, noisy
hosts the best round tracks the code's true cost while mean tracks the
host's load.
"""

from __future__ import annotations

import json
import os
import sys
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import run_points
from repro.sim.kernel import SCHEDULER_ENV, Simulator

#: Events dispatched per kernel round (matches the pytest benchmark).
KERNEL_EVENTS = 20_000
#: Packets pushed through the switch per round (matches the pytest benchmark).
SWITCH_PACKETS = 500

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


def kernel_round() -> Tuple[float, int]:
    """One timed round of chained-timer kernel dispatch.

    Returns ``(wall_seconds, simulated_events)``.
    """
    sim = Simulator()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < KERNEL_EVENTS:
            sim.call_after(1, tick)

    sim.call_at(0, tick)
    start = perf_counter()
    sim.run()
    wall = perf_counter() - start
    if count[0] != KERNEL_EVENTS:
        raise RuntimeError(f"kernel round ran {count[0]} events, expected {KERNEL_EVENTS}")
    return wall, sim.events_executed


def switch_round() -> Tuple[float, int]:
    """One timed round of packets through a SUME switch with a program.

    Returns ``(wall_seconds, simulated_events)``.  Topology build and
    program load are inside the timed region, matching the pytest
    benchmark.
    """
    from repro.apps.microburst import MicroburstDetector
    from repro.experiments.factories import make_sume_switch
    from repro.net.topology import build_linear
    from repro.packet.builder import make_udp_packet

    start = perf_counter()
    network = build_linear(make_sume_switch(), switch_count=1)
    program = MicroburstDetector(num_regs=256, flow_thresh_bytes=1 << 30)
    program.install_routes({H1_IP: 1, H0_IP: 0})
    network.switches["s0"].load_program(program)
    received: List[object] = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(SWITCH_PACKETS):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    wall = perf_counter() - start
    if len(received) != SWITCH_PACKETS:
        raise RuntimeError(
            f"switch round delivered {len(received)} packets, "
            f"expected {SWITCH_PACKETS}"
        )
    return wall, network.sim.events_executed


def switch_cached_round() -> Tuple[float, int]:
    """One timed round of packets through the flow-decision cache.

    A baseline PSA switch runs the multi-table :class:`L3Router` — a
    pure, fully cacheable pipeline — so after the first packet of the
    flow records the ACL → LPM → next-hop walk, the remaining packets
    replay it.  Topology build and program load are inside the timed
    region, matching :func:`switch_round`.
    """
    from repro.apps.l3fwd import L3Router
    from repro.experiments.factories import make_baseline_switch
    from repro.net.topology import build_linear
    from repro.packet.builder import make_udp_packet

    start = perf_counter()
    # The round measures the cache, so force it on regardless of the
    # ambient REPRO_FLOW_CACHE setting — and pin the flow fastpath off
    # so per-hop replay is what gets timed (switch_fastpath measures
    # the fused path).
    network = build_linear(
        make_baseline_switch(flow_cache=True, fastpath=False), switch_count=1
    )
    program = L3Router()
    program.install_host_routes({H0_IP: 0, H1_IP: 1})
    program.deny_flow(src=0x7F00_0001, src_mask=0xFFFF_FFFF, priority=5)
    network.switches["s0"].load_program(program)
    received: List[object] = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(SWITCH_PACKETS):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    wall = perf_counter() - start
    if len(received) != SWITCH_PACKETS:
        raise RuntimeError(
            f"switch_cached round delivered {len(received)} packets, "
            f"expected {SWITCH_PACKETS}"
        )
    cache = network.switches["s0"].flow_cache
    if cache is None or cache.stats.hits == 0:
        raise RuntimeError("switch_cached round ran without flow-cache hits")
    return wall, network.sim.events_executed


def switch_compiled_round() -> Tuple[float, int]:
    """One timed round through the compiled pipeline specializer.

    The same baseline-PSA / :class:`L3Router` topology as
    :func:`switch_cached_round`, but with the flow-decision cache *off*
    and pipeline compilation *on* — every packet takes the exec-generated
    fused walk (inlined tables, folded actions), so this round tracks
    the specializer's throughput with no memoization in front of it.
    """
    from repro.apps.l3fwd import L3Router
    from repro.experiments.factories import make_baseline_switch
    from repro.net.topology import build_linear
    from repro.packet.builder import make_udp_packet

    start = perf_counter()
    network = build_linear(
        make_baseline_switch(flow_cache=False, compile=True, fastpath=False),
        switch_count=1,
    )
    program = L3Router()
    program.install_host_routes({H0_IP: 0, H1_IP: 1})
    program.deny_flow(src=0x7F00_0001, src_mask=0xFFFF_FFFF, priority=5)
    network.switches["s0"].load_program(program)
    received: List[object] = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(SWITCH_PACKETS):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    wall = perf_counter() - start
    if len(received) != SWITCH_PACKETS:
        raise RuntimeError(
            f"switch_compiled round delivered {len(received)} packets, "
            f"expected {SWITCH_PACKETS}"
        )
    switch = network.switches["s0"]
    if not switch._compiled:
        raise RuntimeError("switch_compiled round ran without compiled dispatch")
    return wall, network.sim.events_executed


def switch_fastpath_round() -> Tuple[float, int]:
    """One timed round through the end-to-end flow fastpath.

    The same baseline-PSA / :class:`L3Router` topology as
    :func:`switch_cached_round` with the flow cache *and* the flow
    fastpath on: after the first packet records the walk and the second
    builds the path entry, every delivery is **one** fused kernel event
    at the precomputed arrival time instead of the per-hop event
    cadence.  Packets are spaced wider than the end-to-end pipeline
    window (fusing requires a quiet path — continuous line-rate streams
    fall back by design), so this round tracks the fused path's
    throughput for paced flows; the identical topology keeps it directly
    comparable to ``switch_cached``.  Multi-hop fusion is covered by the
    equivalence tests and the chaos fastpath arm.
    """
    from repro.apps.l3fwd import L3Router
    from repro.experiments.factories import make_baseline_switch
    from repro.net.topology import build_linear
    from repro.packet.builder import make_udp_packet

    start = perf_counter()
    network = build_linear(
        make_baseline_switch(flow_cache=True, fastpath=True), switch_count=1
    )
    for name in ("s0",):
        program = L3Router()
        program.install_host_routes({H0_IP: 0, H1_IP: 1})
        program.deny_flow(src=0x7F00_0001, src_mask=0xFFFF_FFFF, priority=5)
        network.switches[name].load_program(program)
    received: List[object] = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(SWITCH_PACKETS):
        network.sim.call_at(
            1_000 + i * 8_000_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    wall = perf_counter() - start
    if len(received) != SWITCH_PACKETS:
        raise RuntimeError(
            f"switch_fastpath round delivered {len(received)} packets, "
            f"expected {SWITCH_PACKETS}"
        )
    fastpath = network.switches["s0"].flow_fastpath
    if fastpath is None or fastpath.stats.fused < SWITCH_PACKETS - 2:
        raise RuntimeError(
            "switch_fastpath round ran without fused deliveries "
            f"({fastpath.stats if fastpath else 'fastpath off'})"
        )
    return wall, network.sim.events_executed


def switch_sharded_round() -> Tuple[float, int]:
    """One timed round of the conservative-parallel shard engine.

    A k=4 fat tree (20 switches, 16 hosts) under the incast workload,
    split into 2 shards.  Worker startup, window synchronization, and
    boundary serialization are all inside the timed region — this round
    tracks the *engine's* overhead trajectory, not raw switch speed.
    Falls back to inline workers when run inside a daemonic pool
    process (``bench --workers N``), which cannot fork children.
    """
    import multiprocessing

    from repro.experiments.shard_exp import (
        ShardScenario,
        expected_packets,
        run_sharded,
    )

    scenario = ShardScenario(topology="fattree", k=4, waves=1, packets_per_sender=2)
    mode = "inline" if multiprocessing.current_process().daemon else "process"
    start = perf_counter()
    result = run_sharded(scenario, shards=2, mode=mode)
    wall = perf_counter() - start
    expected = expected_packets(scenario)
    if result.total_received() != expected:
        raise RuntimeError(
            f"switch_sharded round delivered {result.total_received()} "
            f"packets, expected {expected}"
        )
    return wall, result.stats.total("events_executed")


#: Named benchmark rounds the harness (and the parallel fan-out) runs.
BENCH_ROUNDS = {
    "kernel": kernel_round,
    "switch": switch_round,
    "switch_cached": switch_cached_round,
    "switch_compiled": switch_compiled_round,
    "switch_fastpath": switch_fastpath_round,
    "switch_sharded": switch_sharded_round,
}

#: Iterations of the host-speed spin loop (fixed across snapshots so
#: scores recorded on different hosts are directly comparable).
CALIBRATION_ITERS = 1_000_000


def host_speed_score(rounds: int = 3) -> Dict:
    """A fixed spin-loop calibration probe of this host's speed.

    Pure-Python integer loop, no allocation, no I/O: the score (loop
    iterations per second, best of ``rounds``) tracks single-core
    interpreter throughput — exactly what every other benchmark round
    is bounded by.  Recorded in the snapshot so ``--compare`` can tell
    "the code got slower" from "the host got slower" (the pr7-era
    "degraded 1-core host" ambiguity).
    """
    best = float("inf")
    for _ in range(rounds):
        acc = 0
        start = perf_counter()
        for i in range(CALIBRATION_ITERS):
            acc += i & 7
        wall = perf_counter() - start
        if acc != (CALIBRATION_ITERS // 8) * 28:  # keep the loop honest
            raise RuntimeError("calibration loop was optimized away")
        best = min(best, wall)
    return {
        "iters": CALIBRATION_ITERS,
        "rounds": rounds,
        "wall_s_min": best,
        "score": CALIBRATION_ITERS / best,
    }


def host_speed_ratio(current: Dict, baseline: Dict) -> Optional[float]:
    """current host score / baseline host score, None when either
    snapshot predates the calibration probe."""
    cur = current.get("host_speed", {}).get("score")
    base = baseline.get("host_speed", {}).get("score")
    if not cur or not base:
        return None
    return cur / base


def sharded_showcase(k: int = 8, shards: int = 8, mode: str = "process") -> Dict:
    """The ISSUE-6 acceptance run: k=8 fat tree, serial vs 8 shards.

    Returns an honest record — wall times, speedup, host core count,
    and the fingerprint verdict — for the snapshot's top-level
    ``"sharded"`` key (``repro bench --sharded-showcase``).  Raises when
    the sharded fingerprint diverges from the serial one; a fingerprint
    mismatch is a correctness bug, not a slow round.  Speedup is
    reported, not gated: it is hardware-dependent (``host_cores``
    records how many cores the run actually had).
    """
    from repro.experiments.parallel import default_workers
    from repro.experiments.shard_exp import ShardScenario, run_serial, run_sharded

    scenario = ShardScenario(topology="fattree", k=k, waves=1, packets_per_sender=2)
    serial = run_serial(scenario)
    sharded = run_sharded(scenario, shards=shards, mode=mode)
    if serial.fingerprint != sharded.fingerprint:
        raise RuntimeError(
            f"sharded fingerprint diverged from serial on fattree-k{k} "
            f"({sharded.digest[:16]} vs {serial.digest[:16]})"
        )
    return {
        "topology": f"fattree-k{k}",
        "shards": shards,
        "mode": mode,
        "host_cores": default_workers(),
        "packets": sharded.total_received(),
        "serial_wall_s": serial.wall_s,
        "sharded_wall_s": sharded.wall_s,
        "speedup": serial.wall_s / sharded.wall_s if sharded.wall_s else 0.0,
        "fingerprint_match": True,
        "digest": sharded.digest,
        "windows": sharded.stats.windows,
        "boundary_packets": sharded.stats.total("boundary_tx"),
        "stall_windows": sharded.stats.total("stall_windows"),
    }


def showcase_rows(entry: Dict) -> List[str]:
    """Human-readable rows for a :func:`sharded_showcase` record."""
    return [
        f"{entry['topology']} × {entry['shards']} shards ({entry['mode']}, "
        f"{entry['host_cores']} core(s) available)",
        f"serial  {entry['serial_wall_s'] * 1e3:8.1f} ms",
        f"sharded {entry['sharded_wall_s'] * 1e3:8.1f} ms  "
        f"(speedup {entry['speedup']:.2f}x)",
        f"fingerprint match: {entry['fingerprint_match']} "
        f"({entry['packets']} packets, digest {entry['digest'][:16]}…)",
        f"{entry['windows']} window(s), {entry['boundary_packets']} boundary "
        f"packet(s), {entry['stall_windows']} stall(s)",
    ]


def run_round(name: str) -> Tuple[float, int]:
    """One timed round of a named benchmark: ``(wall_seconds, events)``.

    The single choke point every consumer goes through — the sweep
    harness (:func:`collect`), the parallel fan-out, and the scenario
    registry (``repro submit bench/<name>``).
    """
    try:
        fn = BENCH_ROUNDS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench round {name!r}; pick from {sorted(BENCH_ROUNDS)}"
        ) from None
    return fn()


def _run_named_round(name: str) -> Tuple[float, int]:
    """Picklable worker entry for :func:`repro.experiments.parallel.run_points`."""
    return run_round(name)


def _snapshot(
    label: str, benchmarks: Dict[str, Dict], host_speed: Optional[Dict] = None
) -> Dict:
    """Assemble the schema-1 snapshot dict around measured benchmarks."""
    data = {
        "schema": 1,
        "label": label,
        "python": sys.version.split()[0],
        "scheduler": os.environ.get(SCHEDULER_ENV) or "heap",
        "benchmarks": benchmarks,
    }
    if host_speed is not None:
        data["host_speed"] = host_speed
    return data


def _load_progress(progress_path: Optional[str], label: str, rounds: int) -> Dict[str, Dict]:
    """Benchmarks already recorded by an interrupted :func:`collect`.

    A progress file is only trusted when its label, scheduler backend,
    and per-benchmark round count match the current invocation — a
    mismatched file is ignored, not an error, so stale progress can
    never poison a sweep.
    """
    if not progress_path or not os.path.exists(progress_path):
        return {}
    try:
        data = read_snapshot(progress_path)
    except (OSError, ValueError):
        return {}
    if data.get("label") != label:
        return {}
    if data.get("scheduler") != (os.environ.get(SCHEDULER_ENV) or "heap"):
        return {}
    return {
        name: entry
        for name, entry in data.get("benchmarks", {}).items()
        if name in BENCH_ROUNDS and entry.get("rounds") == rounds
    }


def collect(
    label: str,
    rounds: int = 5,
    workers: int = 1,
    progress_path: Optional[str] = None,
) -> Dict:
    """Run every benchmark ``rounds`` times and build the snapshot dict.

    ``workers > 1`` fans rounds across processes via the parallel sweep
    runner — useful for many rounds on idle multi-core hosts; keep
    ``workers=1`` for timing fidelity on busy or single-core machines.

    ``progress_path`` makes long sweeps resumable: the partial snapshot
    is rewritten there after every completed benchmark, and benchmarks
    already present in a matching progress file are skipped on the next
    run (``repro bench --resume PATH``).
    """
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    host_speed = host_speed_score()
    benchmarks: Dict[str, Dict] = _load_progress(progress_path, label, rounds)
    for name in sorted(BENCH_ROUNDS):
        if name in benchmarks:
            continue  # recorded before the interruption
        outcomes = run_points(_run_named_round, [name] * rounds, workers=workers)
        walls = [wall for wall, _events in outcomes]
        events = outcomes[0][1]
        best = min(walls)
        entry: Dict = {
            "rounds": rounds,
            "wall_s_min": best,
            "wall_s_mean": sum(walls) / len(walls),
            "wall_s_all": walls,
            "events": events,
            "events_per_sec": events / best,
        }
        if name in ("switch", "switch_cached", "switch_compiled", "switch_fastpath"):
            entry["packets"] = SWITCH_PACKETS
            entry["pkts_per_sec"] = SWITCH_PACKETS / best
        benchmarks[name] = entry
        if progress_path:
            write_snapshot(_snapshot(label, benchmarks, host_speed), progress_path)
    return _snapshot(label, benchmarks, host_speed)


def write_snapshot(data: Dict, path: str) -> None:
    """Write a snapshot as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_snapshot(path: str) -> Dict:
    """Read a snapshot written by :func:`write_snapshot`."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != 1:
        raise ValueError(f"{path}: unsupported BENCH schema {data.get('schema')!r}")
    return data


def compare(
    baseline: Dict,
    current: Dict,
    max_regression: float = 0.25,
    host_normalize: bool = False,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns one message per benchmark whose best wall time regressed by
    more than ``max_regression`` (0.25 == 25% slower); empty list means
    the gate passes.  Benchmarks present in only one snapshot are
    ignored — the trajectory may gain benchmarks over time.

    With ``host_normalize``, wall times are first corrected by the
    snapshots' spin-loop calibration scores (:func:`host_speed_ratio`):
    a run on a host measuring 0.8× the baseline host's speed has its
    walls deflated by 0.8 before gating, so "the runner was slow today"
    stops tripping the gate while genuine code regressions still do.
    Messages then report both the raw and the normalized comparison.
    Snapshots without a calibration score fall back to the raw gate.
    """
    problems: List[str] = []
    base_marks = baseline.get("benchmarks", {})
    cur_marks = current.get("benchmarks", {})
    ratio = host_speed_ratio(current, baseline) if host_normalize else None
    for name in sorted(set(base_marks) & set(cur_marks)):
        base = base_marks[name]["wall_s_min"]
        cur = cur_marks[name]["wall_s_min"]
        gated = cur * ratio if ratio is not None else cur
        allowed = base * (1.0 + max_regression)
        if gated > allowed:
            if ratio is not None:
                problems.append(
                    f"{name}: {cur:.4f}s raw / {gated:.4f}s host-normalized "
                    f"(×{ratio:.2f}) vs baseline {base:.4f}s "
                    f"({gated / base:.2f}x normalized, "
                    f"allowed {1.0 + max_regression:.2f}x)"
                )
            else:
                problems.append(
                    f"{name}: {cur:.4f}s vs baseline {base:.4f}s "
                    f"({cur / base:.2f}x, allowed {1.0 + max_regression:.2f}x)"
                )
    return problems


def expand_baselines(patterns: List[str], exclude: str = "") -> List[str]:
    """Expand ``--compare`` glob patterns into snapshot paths.

    Keeps the workflow self-maintaining: a new ``BENCH_prN.json``
    snapshot joins the gate without editing CI.  Non-glob entries pass
    through untouched (a missing file should fail loudly downstream,
    not vanish); ``exclude`` drops the snapshot being written right now
    so a run never gates against itself.  Order-preserving, de-duped.
    """
    import glob as globlib

    paths: List[str] = []
    for pattern in patterns:
        matches = sorted(globlib.glob(pattern))
        for path in matches or [pattern]:
            if path != exclude and path not in paths:
                paths.append(path)
    return paths


def round_stats(entry: Dict) -> Tuple[float, float, int]:
    """``(stddev_s, cov, rounds)`` of one benchmark entry's rounds.

    Derived from ``wall_s_all`` so every schema-1 snapshot — including
    ones recorded before these statistics were reported — yields them;
    an entry without per-round walls reports zeros and its declared
    round count.
    """
    walls = entry.get("wall_s_all") or []
    rounds = entry.get("rounds", len(walls))
    if len(walls) < 2:
        return 0.0, 0.0, rounds
    mean = sum(walls) / len(walls)
    var = sum((w - mean) ** 2 for w in walls) / (len(walls) - 1)
    std = var**0.5
    return std, (std / mean if mean else 0.0), rounds


def missing_round_warnings(
    current: Dict, baselines: List[Tuple[str, Dict]]
) -> List[str]:
    """One warning per baseline lacking a benchmark the current snapshot
    has.  Old snapshots predate newer rounds (pr-era files have no
    ``switch_compiled``); the gate ignores them, but the step summary
    should say so rather than silently shrinking coverage."""
    cur_names = set(current.get("benchmarks", {}))
    warnings = []
    for label, baseline in baselines:
        missing = sorted(cur_names - set(baseline.get("benchmarks", {})))
        if missing:
            warnings.append(
                f"⚠ baseline `{label}` lacks round(s) {', '.join(missing)}; "
                "those benchmarks are not gated against it."
            )
    return warnings


def missing_round_failures(
    current: Dict, baselines: List[Tuple[str, Dict]]
) -> List[str]:
    """Benchmarks the current snapshot has but **no** baseline covers.

    A round missing from *one* old baseline is expected drift and stays
    a warning; a round missing from *every* baseline means the gate is
    not checking it at all — a silently ungated benchmark.  CI must
    fail on those (``repro bench --compare`` exits nonzero), because
    the fix is one command: re-record a baseline that includes the
    round.  Returns one message per fully-ungated benchmark; empty when
    there are no baselines (nothing was claimed to be gated) or every
    current round is covered somewhere."""
    if not baselines:
        return []
    cur_names = set(current.get("benchmarks", {}))
    covered: set = set()
    for _label, baseline in baselines:
        covered |= set(baseline.get("benchmarks", {}))
    return [
        f"✗ round `{name}` is in the current snapshot but in none of the "
        f"baselines ({', '.join(label for label, _data in baselines)}); "
        "the regression gate never sees it — re-record a baseline that "
        "includes it."
        for name in sorted(cur_names - covered)
    ]


def skipped_round_notes(
    current: Dict, baselines: List[Tuple[str, Dict]]
) -> List[str]:
    """Rounds a baseline has but the **current** snapshot lacks.

    The delta table iterates the current snapshot's benchmarks, so a
    round that exists only in a baseline — say the current run was
    resumed from a partial progress file, or a benchmark was renamed —
    would silently vanish from the summary.  These notes make that
    coverage gap explicit instead; one note per baseline with skipped
    rounds, naming them."""
    cur_names = set(current.get("benchmarks", {}))
    notes = []
    for label, baseline in baselines:
        skipped = sorted(set(baseline.get("benchmarks", {})) - cur_names)
        if skipped:
            notes.append(
                f"⚠ baseline `{label}` has round(s) {', '.join(skipped)} "
                "that the current snapshot did not run; they are absent "
                "from the table above, not compared."
            )
    return notes


def delta_markdown(
    current: Dict,
    baselines: List[Tuple[str, Dict]],
    max_regression: float = 0.25,
    normalize: bool = False,
) -> List[str]:
    """A per-scenario delta table in GitHub-flavored markdown.

    One row per benchmark — best/mean wall, round stddev and coefficient
    of variation, round count — plus one column per baseline snapshot;
    each baseline cell is the best-wall-time delta vs that baseline
    (positive = slower).  With ``normalize``, cells show the raw delta
    *and* the host-speed-normalized delta (``raw / norm``) and the ⚠
    gate flag follows the normalized number — matching what
    :func:`compare` gates on.  Baselines lacking a benchmark get ``n/a``
    cells and a trailing warning line instead of failing the render;
    rounds only a baseline has are listed below the table.  Written
    into ``$GITHUB_STEP_SUMMARY`` by the CI benchmark job.
    """
    lines = [
        f"### Benchmark deltas — label `{current['label']}`, "
        f"scheduler `{current['scheduler']}`, python {current['python']}",
        "",
        "| benchmark | best | mean | stddev | CoV | rounds | "
        + " | ".join(label for label, _data in baselines)
        + " |",
        "|---|---|---|---|---|---|" + "---|" * len(baselines),
    ]
    cur_marks = current.get("benchmarks", {})
    ratios = {
        label: (host_speed_ratio(current, baseline) if normalize else None)
        for label, baseline in baselines
    }
    for name in sorted(cur_marks):
        entry = cur_marks[name]
        cur = entry["wall_s_min"]
        std, cov, rounds = round_stats(entry)
        cells = []
        for label, baseline in baselines:
            base_entry = baseline.get("benchmarks", {}).get(name)
            if base_entry is None:
                cells.append("n/a")
                continue
            base = base_entry["wall_s_min"]
            delta = cur / base - 1.0
            ratio = ratios[label]
            if ratio is not None:
                norm_delta = cur * ratio / base - 1.0
                flag = " ⚠" if norm_delta > max_regression else ""
                cells.append(f"{delta:+.1%} / {norm_delta:+.1%}{flag}")
            else:
                flag = " ⚠" if delta > max_regression else ""
                cells.append(f"{delta:+.1%}{flag}")
        lines.append(
            f"| {name} | {cur * 1e3:.2f} ms | "
            f"{entry['wall_s_mean'] * 1e3:.2f} ms | "
            f"{std * 1e3:.2f} ms | {cov:.1%} | {rounds} | "
            + " | ".join(cells)
            + " |"
        )
    lines.append("")
    if normalize:
        lines.append(
            f"Gate: ≤ {max_regression:.0%} regression vs every baseline "
            "(cells are raw / host-speed-normalized deltas; positive is "
            "slower, ⚠ means the **normalized** delta exceeds the gate)."
        )
    else:
        lines.append(
            f"Gate: ≤ {max_regression:.0%} regression vs every baseline "
            "(positive deltas are slower; ⚠ exceeds the gate)."
        )
    speed_notes = []
    for label, baseline in baselines:
        ratio = host_speed_ratio(current, baseline)
        if ratio is not None:
            speed_notes.append(f"{label}: ×{ratio:.2f}")
    if speed_notes:
        lines.append(
            "Host-speed ratio (this host's spin-loop score / baseline's; "
            "< 1 means this host is slower, so positive deltas may be the "
            "host, not the code): " + ", ".join(speed_notes) + "."
        )
    warnings = missing_round_warnings(current, baselines)
    skipped = skipped_round_notes(current, baselines)
    if warnings or skipped:
        lines.append("")
        lines.extend(warnings)
        lines.extend(skipped)
    return lines


def summary_rows(data: Dict) -> List[str]:
    """Human-readable rows for one snapshot (CLI output)."""
    rows = [
        f"label={data['label']} scheduler={data['scheduler']} "
        f"python={data['python']}"
    ]
    host_speed = data.get("host_speed")
    if host_speed:
        rows.append(
            f"host_speed      score={host_speed['score']:,.0f} spin-iters/s "
            f"(best of {host_speed['rounds']}, {host_speed['iters']:,} iters)"
        )
    for name, entry in sorted(data["benchmarks"].items()):
        extras = ""
        if "pkts_per_sec" in entry:
            extras = f"  {entry['pkts_per_sec']:>12,.0f} pkts/s"
        std, cov, rounds = round_stats(entry)
        rows.append(
            f"{name:<15} best={entry['wall_s_min'] * 1e3:8.2f}ms "
            f"mean={entry['wall_s_mean'] * 1e3:8.2f}ms "
            f"±{std * 1e3:6.2f}ms (CoV {cov:5.1%}, n={rounds}) "
            f"{entry['events_per_sec']:>12,.0f} ev/s{extras}"
        )
    return rows


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for name in sorted(BENCH_ROUNDS):
        register(ScenarioSpec(
            name=f"bench/{name}",
            runner="repro.experiments.bench:run_round",
            params={"name": name},
            app="bench",
            tags=("bench",),
            summary=f"one timed round of the {name} benchmark",
        ))


_register_scenarios()
