"""Figures 1 and 2: baseline PSA vs. the logical event-driven model.

**Figure 1** (baseline PSA): packets traverse ingress pipeline →
traffic manager → egress pipeline.  The experiment shows the
architecture working — and shows the paper's gap: the TM's enqueue/
dequeue/drop transitions all happen, but every one of them is
*suppressed* before reaching the programming model.

**Figure 2** (logical event-driven architecture): the same traffic on
the logical model, where each event kind has its own logical pipeline
with a dedicated port into shared state.  Every event is delivered, and
delivered *synchronously* — zero lag between an event firing and its
handler running — which is the multi-ported-memory ideal the SUME
switch approximates (its merger adds a small, measurable delivery
wait; see the Figure 4 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.microburst import MicroburstDetector
from repro.apps.snappy import SnappyDetector
from repro.arch.events import EventType
from repro.experiments.factories import (
    make_baseline_switch,
    make_logical_switch,
    make_sume_switch,
)
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.sim.units import MICROSECONDS, MILLISECONDS

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


@dataclass
class ArchitectureTrace:
    """What one architecture let the program see."""

    architecture: str
    packets_forwarded: int
    events_fired: Dict[EventType, int]
    events_handled: Dict[EventType, int]
    events_suppressed: Dict[EventType, int]
    mean_event_wait_ps: float

    def buffer_events_visible(self) -> int:
        """Enqueue+dequeue events the program actually handled."""
        return (
            self.events_handled[EventType.ENQUEUE]
            + self.events_handled[EventType.DEQUEUE]
        )

    def buffer_events_suppressed(self) -> int:
        """Enqueue+dequeue transitions hidden from the program."""
        return (
            self.events_suppressed[EventType.ENQUEUE]
            + self.events_suppressed[EventType.DEQUEUE]
        )

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.architecture:<22} forwarded={self.packets_forwarded:<5} "
            f"buffer_events_visible={self.buffer_events_visible():<6} "
            f"suppressed={self.buffer_events_suppressed():<6} "
            f"event_wait={self.mean_event_wait_ps / 1000:.1f}ns"
        )


def _drive(network, packets: int) -> None:
    h0 = network.hosts["h0"]
    for i in range(packets):
        network.sim.call_at(
            (i + 1) * 10 * MICROSECONDS,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, sport=500 + (i % 7), dport=600,
                            payload_len=400),
        )


def run_architecture(
    architecture: str = "baseline",
    packets: int = 200,
    duration_ps: int = 5 * MILLISECONDS,
) -> ArchitectureTrace:
    """Trace one architecture ('baseline', 'logical', or 'sume')."""
    if architecture == "baseline":
        factory = make_baseline_switch()
        program = SnappyDetector(num_regs=64, flow_thresh_bytes=1 << 30)
    elif architecture == "logical":
        factory = make_logical_switch()
        program = MicroburstDetector(num_regs=64, flow_thresh_bytes=1 << 30)
    elif architecture == "sume":
        factory = make_sume_switch()
        program = MicroburstDetector(num_regs=64, flow_thresh_bytes=1 << 30)
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    network = build_linear(factory, switch_count=1)
    switch = network.switches["s0"]
    program.install_routes({H1_IP: 1, H0_IP: 0})
    switch.load_program(program)
    delivered = []
    network.hosts["h1"].add_sink(lambda pkt: delivered.append(pkt))
    _drive(network, packets)
    network.run(until_ps=duration_ps)

    wait = 0.0
    merger = getattr(switch, "merger", None)
    if merger is not None:
        wait = merger.stats.mean_wait_ps
    # The switch's EventBus keeps the canonical per-kind counters; the
    # trace snapshots them rather than re-counting anything itself.
    return ArchitectureTrace(
        architecture=switch.description.name,
        packets_forwarded=len(delivered),
        events_fired=dict(switch.bus.fired),
        events_handled=dict(switch.bus.handled),
        events_suppressed=dict(switch.bus.suppressed),
        mean_event_wait_ps=wait,
    )


def run_all_architectures(packets: int = 200) -> list:
    """All three architectures under identical traffic (figures source)."""
    return [
        run_architecture(arch, packets=packets)
        for arch in ("baseline", "logical", "sume")
    ]


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for arch in ("baseline", "logical", "sume"):
        register(ScenarioSpec(
            name=f"figures/{arch}",
            runner="repro.experiments.psa_fig_exp:run_architecture",
            params={"architecture": arch, "packets": 200},
            app="psa-figures", topology="linear",
            tags=("experiment", "figure"),
            summary=f"Figures 1/2/4: the {arch} architecture trace",
        ))
    register(ScenarioSpec(
        name="figures",
        runner="repro.experiments.psa_fig_exp:run_all_architectures",
        params={"packets": 200},
        app="psa-figures", topology="linear",
        tags=("source",),
        summary="events source: all three architectures back to back",
    ))


_register_scenarios()
