"""Fast re-route vs. control-plane re-route (paper §3, §5).

A diamond topology::

        ┌─ s1 ─┐
    h0—s0      s3—h1
        └─ s2 ─┘

traffic h0→h1 follows the primary path via s1.  At ``fail_at_ps`` the
s0–s1 link dies.

* **FRR** (event-driven): s0's LINK_STATUS handler flips the route to
  the backup port (via s2) within the event-handling latency —
  nanoseconds to microseconds.
* **Control-plane** (baseline): the program keeps forwarding into the
  dead link until the controller's failure detection fires (default
  100 ms), recomputes, and installs the backup route.

Reported: packets lost and the forwarding outage duration measured at
the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.frr import FastRerouteProgram, StaticRouteProgram
from repro.apps.common import ForwardingProgram
from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.net.host import Host
from repro.net.network import Network
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.cbr import ConstantBitRate

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


@dataclass
class FrrResult:
    """One failover run."""

    scheme: str
    packets_sent: int
    packets_delivered: int
    packets_lost: int
    outage_ps: int
    reroute_delay_ps: Optional[int]

    def summary_row(self) -> str:
        """A printable summary row."""
        delay = (
            f"{self.reroute_delay_ps / MICROSECONDS:.1f}us"
            if self.reroute_delay_ps is not None
            else "n/a"
        )
        return (
            f"{self.scheme:<14} sent={self.packets_sent:<6} "
            f"lost={self.packets_lost:<6} outage={self.outage_ps / MICROSECONDS:8.1f}us "
            f"reroute_delay={delay}"
        )


def _build_diamond(factory) -> Network:
    network = Network()
    s0 = network.add_switch(factory(network.sim, "s0", 3))
    s1 = network.add_switch(factory(network.sim, "s1", 2))
    s2 = network.add_switch(factory(network.sim, "s2", 2))
    s3 = network.add_switch(factory(network.sim, "s3", 3))
    h0 = network.add_host(Host(network.sim, "h0", H0_IP))
    h1 = network.add_host(Host(network.sim, "h1", H1_IP))
    network.connect(h0, 0, s0, 0, latency_ps=500_000)
    network.connect(s0, 1, s1, 0, latency_ps=500_000)  # primary
    network.connect(s0, 2, s2, 0, latency_ps=500_000)  # backup
    network.connect(s1, 1, s3, 1, latency_ps=500_000)
    network.connect(s2, 1, s3, 2, latency_ps=500_000)
    network.connect(s3, 0, h1, 0, latency_ps=500_000)
    return network


def _install_transit_routes(network: Network, transit_cls) -> None:
    for name, routes in (
        ("s1", {H1_IP: 1, H0_IP: 0}),
        ("s2", {H1_IP: 1, H0_IP: 0}),
        ("s3", {H1_IP: 0, H0_IP: 1}),
    ):
        program = transit_cls()
        program.install_routes(routes)
        network.switches[name].load_program(program)


def run_failover(
    scheme: str = "frr",
    duration_ps: int = 300 * MILLISECONDS,
    fail_at_ps: int = 50 * MILLISECONDS,
    rate_gbps: float = 1.0,
    control_config: ControlPlaneConfig = ControlPlaneConfig(),
) -> FrrResult:
    """Run one failover scheme ('frr' or 'control-plane')."""
    if scheme not in ("frr", "control-plane"):
        raise ValueError(f"unknown scheme {scheme!r}")

    if scheme == "frr":
        network = _build_diamond(make_sume_switch())
        program: ForwardingProgram = FastRerouteProgram()
        program.install_protected_route(H1_IP, primary=1, backup=2)
        program.install_route(H0_IP, 0)
        _install_transit_routes(network, FastRerouteProgram)
    else:
        network = _build_diamond(make_baseline_switch())
        program = StaticRouteProgram()
        program.install_routes({H1_IP: 1, H0_IP: 0})
        _install_transit_routes(network, StaticRouteProgram)

    network.switches["s0"].load_program(program)

    # Receiver-side arrival log for outage measurement.
    arrivals: List[int] = []
    network.hosts["h1"].add_sink(lambda pkt: arrivals.append(network.sim.now_ps))

    flow = FlowSpec(H0_IP, H1_IP, sport=5_000, dport=6_000)
    generator = ConstantBitRate(
        network.sim,
        network.hosts["h0"].send,
        flow,
        rate_gbps=rate_gbps,
        payload_len=1000,
        name="frr-flow",
    )
    generator.start(at_ps=1 * MILLISECONDS)

    link = network.link_between("s0", "s1")
    assert link is not None
    link.fail_at(fail_at_ps)

    reroute_delay: Optional[int] = None
    if scheme == "control-plane":
        controller = ControlPlane(network.sim, control_config)
        # The controller notices the failure after its detection timeout,
        # then recomputes and installs the backup route.
        def on_detected() -> None:
            controller.install_route(lambda: program.control_update(H1_IP, 2))

        network.sim.call_at(
            fail_at_ps + control_config.failure_detection_ps, on_detected
        )

    network.run(until_ps=duration_ps)

    if scheme == "frr" and isinstance(program, FastRerouteProgram) and program.failovers:
        reroute_delay = program.failovers[0].time_ps - fail_at_ps
    elif scheme == "control-plane" and isinstance(program, StaticRouteProgram):
        if program.control_updates:
            reroute_delay = (
                control_config.failure_detection_ps
                + control_config.reroute_compute_ps
                + control_config.rtt_ps
                + control_config.per_entry_write_ps
            )

    # Outage: the largest inter-arrival gap after the failure instant
    # (covers both the in-flight drain and the recovery gap), including
    # a never-recovered tail.
    outage = 0
    for before, after in zip(arrivals, arrivals[1:]):
        if after >= fail_at_ps:
            outage = max(outage, after - before)
    if arrivals and arrivals[-1] < duration_ps - 2 * MILLISECONDS:
        outage = max(outage, duration_ps - arrivals[-1])  # never recovered

    sent = generator.packets_sent
    delivered = len(arrivals)
    return FrrResult(
        scheme=scheme,
        packets_sent=sent,
        packets_delivered=delivered,
        packets_lost=sent - delivered,
        outage_ps=outage,
        reroute_delay_ps=reroute_delay,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for scheme in ("frr", "control-plane"):
        register(ScenarioSpec(
            name=f"failover/{scheme}",
            runner="repro.experiments.frr_exp:run_failover",
            params={"scheme": scheme},
            app="frr", topology="diamond", workload="cbr",
            tags=("experiment", "application"),
            summary=f"link failover via {scheme} on the diamond",
        ))


_register_scenarios()
