"""Programmable scheduling: event-driven WFQ over a PIFO (paper §3).

Two flows with WFQ weights 3:1 both blast a slowed bottleneck port.
Under FIFO, service tracks arrivals (≈1:1); under the PIFO + dequeue-
event WFQ program, delivered bytes track the weights (≈3:1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.scheduling import FifoSchedulerProgram, WfqSchedulerProgram, rank_of
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.hashing import flow_hash
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.tm.scheduler import PifoScheduler
from repro.workloads.base import FlowSpec
from repro.workloads.poisson import PoissonTraffic
from repro.workloads.sink import PacketSink

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


@dataclass
class SchedulingResult:
    """One scheduler run."""

    scheme: str
    heavy_packets: int
    light_packets: int
    configured_ratio: float

    @property
    def measured_ratio(self) -> float:
        """Delivered heavy/light packet ratio."""
        return self.heavy_packets / self.light_packets if self.light_packets else 0.0

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.scheme:<6} heavy={self.heavy_packets:<6} "
            f"light={self.light_packets:<6} "
            f"service_ratio={self.measured_ratio:.2f} "
            f"(weights say {self.configured_ratio:.1f})"
        )


def run_scheduling(
    scheme: str = "wfq",
    heavy_weight: int = 3,
    duration_ps: int = 20 * MILLISECONDS,
    offered_gbps: float = 3.0,
    bottleneck_gbps: float = 2.0,
) -> SchedulingResult:
    """Run one scheduler ('wfq' or 'fifo') on a 2-flow contention."""
    heavy_flow = FlowSpec(H0_IP, H1_IP, sport=21, dport=22)
    light_flow = FlowSpec(H0_IP, H1_IP, sport=23, dport=24)
    heavy_id = flow_hash(heavy_flow.build_packet(0), 256)
    light_id = flow_hash(light_flow.build_packet(0), 256)

    if scheme == "wfq":
        program = WfqSchedulerProgram(
            num_flows=256, weights={heavy_id: heavy_weight, light_id: 1}
        )
        scheduler_factory = lambda queues: PifoScheduler(queues, rank_of, capacity=512)
    elif scheme == "fifo":
        program = FifoSchedulerProgram()
        scheduler_factory = None
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    network = build_linear(
        make_sume_switch(
            queue_capacity_bytes=512 * 1024,
            scheduler_factory=scheduler_factory,
        ),
        switch_count=1,
    )
    switch = network.switches["s0"]
    program.install_route(H1_IP, 1)
    program.install_route(H0_IP, 0)
    switch.load_program(program)
    switch.tm.set_port_rate(1, bottleneck_gbps)

    sink = PacketSink("rx")
    network.hosts["h1"].add_sink(sink)

    h0 = network.hosts["h0"]
    # Poisson arrivals avoid the deterministic phase lock two
    # synchronized CBR sources would exhibit at a full FIFO queue.
    pkt_wire_bits = (1400 + 42 + 20) * 8
    pps = (offered_gbps / 2) * 1e9 / pkt_wire_bits
    for seed_offset, (flow, name) in enumerate(
        ((heavy_flow, "heavy"), (light_flow, "light"))
    ):
        gen = PoissonTraffic(
            network.sim, h0.send, flow, mean_pps=pps,
            payload_len=1400, name=name, seed=31 + seed_offset,
        )
        gen.start(at_ps=20 * MICROSECONDS)

    network.run(until_ps=duration_ps)

    def count(flow: FlowSpec) -> int:
        key = (flow.src_ip, flow.dst_ip, 17, flow.sport, flow.dport)
        return sink.per_flow.get(key, 0)

    return SchedulingResult(
        scheme=scheme,
        heavy_packets=count(heavy_flow),
        light_packets=count(light_flow),
        configured_ratio=float(heavy_weight),
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="scheduling/wfq",
        runner="repro.experiments.scheduling_exp:run_scheduling",
        params={"scheme": "wfq", "heavy_weight": 3},
        app="scheduling", workload="cbr",
        tags=("experiment", "application"),
        summary="programmable weighted-fair scheduling via PIFO",
    ))


_register_scenarios()
