"""Figure 3 and the §4 staleness trade-offs, quantitatively.

Three sweeps over the cycle-level pipeline model:

1. **Aggregation works** (Figure 3): with the main + aggregation
   register layout, an enqueue, a dequeue, and a packet read can land
   on the same cycle with *zero* port conflicts; the naive layout (one
   single-ported array for everything) conflicts constantly.
2. **Overspeed sweep**: staleness is bounded, and shrinks as the
   pipeline runs faster than line rate.
3. **Port-disable sweep** (§4's "not using some of the external
   ports"): freeing packet cycles converts them into drain cycles,
   buying accuracy with bandwidth — the paper's bandwidth-vs-accuracy
   trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.rng import SeededRng
from repro.state.cyclesim import CyclePipelineSim, CycleSimConfig, CycleSimResult
from repro.state.memory import MemoryPortModel
from repro.pisa.externs.register import Register


@dataclass
class NaiveResult:
    """The no-aggregation ablation: everything on one array."""

    cycles: int
    conflict_cycles: int
    conflict_fraction: float

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"naive single-ported array: {self.conflict_cycles}/{self.cycles} "
            f"cycles over-subscribed ({100 * self.conflict_fraction:.1f}%)"
        )


def run_naive_single_array(
    cycles: int = 50_000,
    num_queues: int = 64,
    overspeed: float = 1.25,
    enqueue_rate: float = 0.4,
    dequeue_rate: float = 0.4,
    seed: int = 1,
) -> NaiveResult:
    """Count port conflicts when all three event streams share one array."""
    rng = SeededRng(seed, "naive")
    memory = MemoryPortModel(
        Register(num_queues, name="naive"), ports=1, strict=False
    )
    packet_fraction = 1.0 / overspeed
    outstanding = [0] * num_queues
    for cycle in range(cycles):
        if rng.random() < enqueue_rate:
            queue = rng.randint(0, num_queues - 1)
            memory.add(cycle, queue, 64)
            outstanding[queue] += 1
        if rng.random() < dequeue_rate:
            candidates = [q for q, n in enumerate(outstanding) if n > 0]
            if candidates:
                queue = rng.choice(candidates)
                memory.add(cycle, queue, -64)
                outstanding[queue] -= 1
        if rng.random() < packet_fraction:
            memory.read(cycle, rng.randint(0, num_queues - 1))
    return NaiveResult(
        cycles=cycles,
        conflict_cycles=memory.conflict_cycles,
        conflict_fraction=memory.conflict_cycles / cycles,
    )


def run_aggregated(
    cycles: int = 50_000,
    overspeed: float = 1.25,
    enqueue_rate: float = 0.4,
    dequeue_rate: float = 0.4,
    num_queues: int = 64,
    seed: int = 1,
) -> CycleSimResult:
    """One Figure 3 run with the aggregation register file."""
    return CyclePipelineSim(
        CycleSimConfig(
            cycles=cycles,
            num_queues=num_queues,
            overspeed=overspeed,
            enqueue_rate=enqueue_rate,
            dequeue_rate=dequeue_rate,
            seed=seed,
        )
    ).run()


def sweep_overspeed(
    overspeeds: List[float] = (1.0, 1.1, 1.25, 1.5, 2.0),
    cycles: int = 50_000,
    seed: int = 1,
) -> List[CycleSimResult]:
    """Staleness vs. pipeline overspeed (the §4 bound)."""
    return [
        run_aggregated(cycles=cycles, overspeed=overspeed, seed=seed)
        for overspeed in overspeeds
    ]


def sweep_drain_policy(
    policies: List[str] = ("fifo", "largest", "lifo"),
    cycles: int = 50_000,
    overspeed: float = 1.15,
    seed: int = 1,
) -> List[CycleSimResult]:
    """§4's open question: how should aggregated accesses be scheduled?

    Compares drain priorities: first-touched-first, largest-pending-
    delta-first (prioritizes the most-wrong entries), and most-recent-
    first (a deliberately bad policy that starves old entries).
    """
    return [
        CyclePipelineSim(
            CycleSimConfig(
                cycles=cycles, overspeed=overspeed, drain_policy=policy, seed=seed
            )
        ).run()
        for policy in policies
    ]


def sweep_port_disable(
    fractions: List[float] = (0.0, 0.25, 0.5, 0.75),
    cycles: int = 50_000,
    overspeed: float = 1.1,
    seed: int = 1,
) -> List[CycleSimResult]:
    """Staleness vs. disabled external ports (bandwidth ↔ accuracy).

    Event rates shrink with the packet rate — fewer ports also means
    fewer enqueues/dequeues — which is exactly why the trade buys
    accuracy.
    """
    results = []
    for fraction in fractions:
        config = CycleSimConfig(
            cycles=cycles,
            overspeed=overspeed,
            port_disable_fraction=fraction,
            enqueue_rate=0.4 * (1 - fraction),
            dequeue_rate=0.4 * (1 - fraction),
            seed=seed,
        )
        results.append(CyclePipelineSim(config).run())
    return results


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="staleness/overspeed-sweep",
        runner="repro.experiments.staleness_exp:sweep_overspeed",
        params={"cycles": 50_000, "seed": 1},
        app="aggregation", seed=1,
        tags=("experiment", "figure"),
        summary="Figure 3: staleness vs merger overspeed sweep",
    ))
    register(ScenarioSpec(
        name="staleness/naive",
        runner="repro.experiments.staleness_exp:run_naive_single_array",
        params={"cycles": 50_000, "num_queues": 64, "overspeed": 1.25},
        app="aggregation",
        tags=("experiment", "figure"),
        summary="Figure 3: the naive single-array aggregation baseline",
    ))
    register(ScenarioSpec(
        name="staleness/drain-policies",
        runner="repro.experiments.staleness_exp:sweep_drain_policy",
        params={},
        app="aggregation",
        tags=("experiment",),
        summary="§4 future work: merger drain-policy sweep",
    ))


_register_scenarios()
