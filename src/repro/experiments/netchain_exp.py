"""NetChain-style coordination under chain failure (paper §3).

A three-switch replication chain (head → mid → tail) with a
pre-provisioned bypass link serves sequential writes from a client.
Mid-chain connectivity dies mid-run:

* **event-driven**: the head's LINK_STATUS handler splices the chain to
  head → tail over the bypass within microseconds — a handful of writes
  in flight are lost, and every acknowledged write remains readable at
  the tail (chain consistency holds);
* **control-plane**: writes blackhole until the controller's detection
  + recompute + install completes (~110 ms), losing thousands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.netchain import ChainClient, ChainNodeProgram, StaticChainNodeProgram
from repro.control.plane import ControlPlaneConfig
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.net.host import Host
from repro.net.network import Network
from repro.sim.process import PeriodicProcess
from repro.sim.units import MICROSECONDS, MILLISECONDS

CLIENT_IP = 0x0A00_0001
SERVICE_IP = 0x0A00_00AA


@dataclass
class NetChainResult:
    """One chain-failure run."""

    scheme: str
    writes_sent: int
    acks_received: int
    writes_lost: int
    outage_ps: int
    read_matches_last_ack: bool
    tail_writes_applied: int

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.scheme:<14} writes={self.writes_sent:<5} "
            f"lost={self.writes_lost:<5} "
            f"outage={self.outage_ps / MICROSECONDS:9.1f}us "
            f"consistent_read={self.read_matches_last_ack}"
        )


def run_netchain(
    scheme: str = "event-driven",
    duration_ps: int = 300 * MILLISECONDS,
    fail_at_ps: int = 50 * MILLISECONDS,
    write_period_ps: int = 50 * MICROSECONDS,
    control_config: ControlPlaneConfig = ControlPlaneConfig(),
) -> NetChainResult:
    """Run one repair scheme ('event-driven' or 'control-plane')."""
    if scheme == "event-driven":
        factory = make_sume_switch()
        node_cls = ChainNodeProgram
    elif scheme == "control-plane":
        factory = make_baseline_switch()
        node_cls = StaticChainNodeProgram
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    network = Network()
    head = network.add_switch(factory(network.sim, "head", 3))
    mid = network.add_switch(factory(network.sim, "mid", 2))
    tail = network.add_switch(factory(network.sim, "tail", 2))
    client_host = network.add_host(Host(network.sim, "client", CLIENT_IP))
    network.connect(client_host, 0, head, 0, latency_ps=500_000)
    network.connect(head, 1, mid, 0, latency_ps=500_000)
    network.connect(mid, 1, tail, 0, latency_ps=500_000)
    network.connect(head, 2, tail, 1, latency_ps=500_000)  # bypass

    head_program = node_cls(node_id=0, service_ip=SERVICE_IP, is_tail=False)
    head_program.install_protected_route(SERVICE_IP, primary=1, backup=2)
    head_program.install_route(CLIENT_IP, 0)
    head.load_program(head_program)

    mid_program = node_cls(node_id=1, service_ip=SERVICE_IP, is_tail=False)
    mid_program.install_route(SERVICE_IP, 1)
    mid_program.install_route(CLIENT_IP, 0)
    mid.load_program(mid_program)

    tail_program = node_cls(node_id=2, service_ip=SERVICE_IP, is_tail=True)
    tail_program.install_route(CLIENT_IP, 1)  # acks return over the bypass
    tail.load_program(tail_program)

    client = ChainClient(client_host, SERVICE_IP)
    writer = PeriodicProcess(
        network.sim, write_period_ps, client.write_next, name="chain-writer"
    )
    writer.start()
    # Stop writing shortly before the end and issue the consistency read.
    read_at = duration_ps - 5 * MILLISECONDS
    network.sim.call_at(read_at - 1, writer.stop)
    network.sim.call_at(read_at, client.read)

    link = network.link_between("head", "mid")
    assert link is not None
    link.fail_at(fail_at_ps)

    if scheme == "control-plane":
        repair_at = (
            fail_at_ps
            + control_config.failure_detection_ps
            + control_config.reroute_compute_ps
            + control_config.rtt_ps
        )
        network.sim.call_at(
            repair_at, lambda: head_program.install_route(SERVICE_IP, 2)
        )

    network.run(until_ps=duration_ps)

    stats = client.stats
    outage = 0
    acks = stats.ack_times_ps or []
    for before, after in zip(acks, acks[1:]):
        if after >= fail_at_ps:
            outage = max(outage, after - before)
    return NetChainResult(
        scheme=scheme,
        writes_sent=stats.writes_sent,
        acks_received=stats.acks_received,
        writes_lost=stats.writes_lost,
        outage_ps=outage,
        read_matches_last_ack=(
            stats.read_replies == 1
            and stats.last_read_value >= stats.last_acked_value
        ),
        tail_writes_applied=tail_program.writes_applied,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="netchain/event-driven",
        runner="repro.experiments.netchain_exp:run_netchain",
        params={"scheme": "event-driven"},
        app="netchain",
        tags=("experiment",),
        summary="NetChain coordination with event-driven failover",
    ))


_register_scenarios()
