"""Table 2: one representative run per application class.

The paper's Table 2 lists five application classes, example systems,
and the events each uses.  This experiment regenerates the table from
the living code: for each class it instantiates the representative
program (so the "Events Used" column comes from the program's actual
handlers, not from prose) and runs a short end-to-end experiment for a
headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.aqm import FredAqm
from repro.apps.frr import FastRerouteProgram
from repro.apps.hula import HulaLeafProgram
from repro.apps.microburst import MicroburstDetector
from repro.apps.netcache import NetCacheProgram
from repro.arch.events import EventType
from repro.sim.units import MILLISECONDS


@dataclass
class Table2Row:
    """One application-class row."""

    application_class: str
    example: str
    events_used: List[str]
    headline_metric: str

    def summary_row(self) -> str:
        """A printable summary row."""
        events = ", ".join(self.events_used)
        return (
            f"{self.application_class:<28} {self.example:<22} "
            f"[{events}]  {self.headline_metric}"
        )


def _events_of(program) -> List[str]:
    interesting = program.handled_events() - {
        EventType.INGRESS_PACKET,
        EventType.EGRESS_PACKET,
        EventType.GENERATED_PACKET,
        EventType.RECIRCULATED_PACKET,
    }
    return sorted(kind.value for kind in interesting)


def build_table2(run_experiments: bool = True) -> List[Table2Row]:
    """The five Table 2 rows, optionally with live headline metrics."""
    rows: List[Table2Row] = []

    # Congestion-aware forwarding: HULA.
    hula = HulaLeafProgram(tor_id=0, uplink_ports=[0, 1], tor_count=2)
    metric = ""
    if run_experiments:
        from repro.experiments.hula_exp import run_load_balance

        ecmp = run_load_balance("ecmp", duration_ps=5 * MILLISECONDS)
        hula_result = run_load_balance("hula", duration_ps=5 * MILLISECONDS)
        metric = (
            f"uplink imbalance {ecmp.imbalance:.2f} (ECMP) -> "
            f"{hula_result.imbalance:.2f} (HULA)"
        )
    rows.append(
        Table2Row(
            "Congestion Aware Forwarding",
            "HULA load balancing",
            _events_of(hula),
            metric,
        )
    )

    # Network management: fast re-route.
    frr = FastRerouteProgram()
    metric = ""
    if run_experiments:
        from repro.experiments.frr_exp import run_failover

        frr_result = run_failover("frr", duration_ps=120 * MILLISECONDS)
        cp_result = run_failover("control-plane", duration_ps=180 * MILLISECONDS)
        metric = (
            f"failover loss {frr_result.packets_lost} pkt (FRR) vs "
            f"{cp_result.packets_lost} pkt (control plane)"
        )
    rows.append(
        Table2Row(
            "Network Management",
            "Fast Re-Route",
            _events_of(frr),
            metric,
        )
    )

    # Network monitoring: microburst detection.
    microburst = MicroburstDetector()
    metric = ""
    if run_experiments:
        from repro.experiments.microburst_exp import (
            run_event_driven,
            run_snappy_baseline,
            state_reduction_factor,
        )

        event = run_event_driven(duration_ps=10 * MILLISECONDS)
        snappy = run_snappy_baseline(duration_ps=10 * MILLISECONDS)
        metric = (
            f"culprit caught={event.culprit_detected}, "
            f"state reduction {state_reduction_factor(event, snappy):.1f}x vs Snappy"
        )
    rows.append(
        Table2Row(
            "Network Monitoring",
            "Microburst Detection",
            _events_of(microburst),
            metric,
        )
    )

    # Traffic management: FRED-like AQM.
    fred = FredAqm()
    metric = ""
    if run_experiments:
        from repro.experiments.aqm_exp import run_aqm

        tail = run_aqm("drop-tail", duration_ps=10 * MILLISECONDS)
        fred_result = run_aqm("fred", duration_ps=10 * MILLISECONDS)
        metric = (
            f"fairness {tail.fairness:.2f} (drop-tail) -> "
            f"{fred_result.fairness:.2f} (FRED)"
        )
    rows.append(
        Table2Row(
            "Traffic Management",
            "FRED-like fair AQM",
            _events_of(fred),
            metric,
        )
    )

    # In-network computing: NetCache.
    netcache = NetCacheProgram()
    metric = ""
    if run_experiments:
        from repro.experiments.netcache_exp import run_netcache

        with_timer = run_netcache(True, duration_ps=20 * MILLISECONDS,
                                  shift_at_ps=10 * MILLISECONDS)
        without = run_netcache(False, duration_ps=20 * MILLISECONDS,
                               shift_at_ps=10 * MILLISECONDS)
        metric = (
            f"post-shift hit {100 * without.post_shift_hit_ratio:.0f}% (no timer) -> "
            f"{100 * with_timer.post_shift_hit_ratio:.0f}% (timer LRU)"
        )
    rows.append(
        Table2Row(
            "In-Network Computing",
            "NetCache-style caching",
            _events_of(netcache),
            metric,
        )
    )
    return rows


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="table2/rows",
        runner="repro.experiments.table2_exp:build_table2",
        params={"run_experiments": True},
        app="table2",
        tags=("experiment", "paper"),
        summary="Table 2: one live run per application class",
    ))


_register_scenarios()
