"""Time-windowed flow-rate measurement (paper §5 student project).

One CBR flow and one ON/OFF flow cross a switch.  The timer + shift
register monitor measures both rates over a sliding window; the
baseline EWMA estimator (packet events only) is run side by side.  The
key qualitative difference: when the bursty flow goes silent the
windowed measurement decays to zero within one window, while the EWMA
— which can only update when packets arrive — freezes at its last
value.

Reported: measured vs. true rates during activity, and the estimates a
fixed settle time after the bursty flow stops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.flow_rate import EwmaRateEstimator, FlowRateMonitor
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.hashing import tuple_hash
from repro.packet.packet import FiveTuple
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.cbr import ConstantBitRate

H1_IP = 0x0A00_0002


@dataclass
class FlowRateResult:
    """Rates as seen by one estimator."""

    estimator: str
    cbr_true_gbps: float
    cbr_measured_gbps: float
    stopped_flow_residual_gbps: float

    @property
    def active_error(self) -> float:
        """Relative error on the active CBR flow."""
        if self.cbr_true_gbps == 0:
            return 0.0
        return abs(self.cbr_measured_gbps - self.cbr_true_gbps) / self.cbr_true_gbps

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.estimator:<10} active: true={self.cbr_true_gbps:.2f}G "
            f"measured={self.cbr_measured_gbps:.2f}G (err={100 * self.active_error:4.1f}%)  "
            f"stopped flow residual={self.stopped_flow_residual_gbps:.3f}G"
        )


def run_flow_rate(
    estimator: str = "window",
    cbr_gbps: float = 2.0,
    burst_gbps: float = 4.0,
    stop_burst_at_ps: int = 10 * MILLISECONDS,
    duration_ps: int = 20 * MILLISECONDS,
) -> FlowRateResult:
    """Run one estimator ('window' or 'ewma')."""
    network = build_linear(make_sume_switch(), switch_count=1)
    switch = network.switches["s0"]
    slot_ps = 200 * MICROSECONDS
    if estimator == "window":
        program = FlowRateMonitor(num_flows=256, slots=8, slot_period_ps=slot_ps)
    elif estimator == "ewma":
        program = EwmaRateEstimator(num_flows=256, tau_ps=8 * slot_ps)
    else:
        raise ValueError(f"unknown estimator {estimator!r}")
    program.install_route(H1_IP, 1)
    switch.load_program(program)

    cbr_flow = FlowSpec(0x0A00_0001, H1_IP, sport=8_001, dport=9_001)
    burst_flow = FlowSpec(0x0A00_0001, H1_IP, sport=8_002, dport=9_002)
    h0 = network.hosts["h0"]
    cbr = ConstantBitRate(
        network.sim, h0.send, cbr_flow, rate_gbps=cbr_gbps, payload_len=1400,
        name="cbr",
    )
    burst = ConstantBitRate(
        network.sim, h0.send, burst_flow, rate_gbps=burst_gbps, payload_len=1400,
        name="burst",
    )
    cbr.start(at_ps=20 * MICROSECONDS)
    burst.start(at_ps=20 * MICROSECONDS)
    network.sim.call_at(stop_burst_at_ps, burst.stop)

    network.run(until_ps=duration_ps)

    size = 256
    cbr_id = tuple_hash(FiveTuple(cbr_flow.src_ip, cbr_flow.dst_ip, 17, 8_001, 9_001), size)
    burst_id = tuple_hash(
        FiveTuple(burst_flow.src_ip, burst_flow.dst_ip, 17, 8_002, 9_002), size
    )
    cbr_measured = program.rate_bps(cbr_id) / 1e9
    burst_residual = program.rate_bps(burst_id) / 1e9
    # True goodput rate of the CBR flow at the measurement point, using
    # on-wire bits per packet as the workload generator paces them.
    true_rate = cbr_gbps * (1400 + 42) / (1400 + 42 + 20)
    return FlowRateResult(
        estimator=estimator,
        cbr_true_gbps=true_rate,
        cbr_measured_gbps=cbr_measured,
        stopped_flow_residual_gbps=burst_residual,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for estimator in ("window", "ewma"):
        register(ScenarioSpec(
            name=f"flow-rate/{estimator}",
            runner="repro.experiments.flow_rate_exp:run_flow_rate",
            params={"estimator": estimator},
            app="flow-rate", workload="cbr+burst",
            tags=("experiment", "application"),
            summary=f"per-flow rate estimation with the {estimator} estimator",
        ))


_register_scenarios()
