"""NetCache-style caching with timer-driven statistics (paper §3).

A client host issues GETs with Zipf-skewed key popularity through a
switch running :class:`~repro.apps.netcache.NetCacheProgram` to a
key-value server.  Halfway through, the hot set *shifts* (the classic
workload change).  With timer events the switch decays its hit counters
and clears the miss statistics each window, so the cache re-learns the
new hot set quickly; without timers the stale statistics pin the old
hot keys and the hit ratio stays depressed.

Reported: overall hit ratio, server load, and the post-shift hit ratio
(the "reacts to workload changes" claim).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.netcache import KvServerApp, NetCacheProgram
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.builder import make_kv_request
from repro.packet.headers import KeyValue
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import TrafficGenerator

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002
KEY_SPACE = 512


class KvWorkload(TrafficGenerator):
    """Zipf-popular GET requests with a mid-run hot-set shift."""

    def __init__(
        self,
        sim: Simulator,
        send,
        mean_pps: float,
        key_space: int = KEY_SPACE,
        skew: float = 1.3,
        shift_at_ps: int = 0,
        shift_offset: int = 0,
        seed: int = 23,
    ) -> None:
        super().__init__(sim, send, "kv-workload")
        self.mean_pps = mean_pps
        self.key_space = key_space
        self.skew = skew
        self.shift_at_ps = shift_at_ps
        self.shift_offset = shift_offset
        self._rng = SeededRng(seed, "kv")

    def _tick(self) -> None:
        rank = self._rng.zipf_index(self.key_space, self.skew)
        if self.shift_at_ps and self.sim.now_ps >= self.shift_at_ps:
            rank = (rank + self.shift_offset) % self.key_space
        pkt = make_kv_request(
            op=KeyValue.OP_GET,
            key=rank + 1,
            src_ip=H0_IP,
            dst_ip=H1_IP,
            ts_ps=self.sim.now_ps,
        )
        self._emit(pkt)
        gap = max(1, int(self._rng.expovariate(self.mean_pps) * 1e12))
        self._schedule_next(gap)


@dataclass
class NetCacheResult:
    """One caching run."""

    timers_enabled: bool
    requests: int
    hit_ratio: float
    post_shift_hit_ratio: float
    server_requests: int
    admissions: int
    evictions: int

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"timers={str(self.timers_enabled):<5} requests={self.requests:<6} "
            f"hit={100 * self.hit_ratio:5.1f}% "
            f"post_shift_hit={100 * self.post_shift_hit_ratio:5.1f}% "
            f"server_load={self.server_requests}"
        )


def run_netcache(
    timers_enabled: bool = True,
    duration_ps: int = 40 * MILLISECONDS,
    shift_at_ps: int = 20 * MILLISECONDS,
    mean_pps: float = 400_000.0,
    cache_slots: int = 32,
    seed: int = 23,
) -> NetCacheResult:
    """Run the cache with or without its maintenance timer."""
    network = build_linear(make_sume_switch(), switch_count=1)
    switch = network.switches["s0"]
    program = NetCacheProgram(
        cache_slots=cache_slots,
        admit_threshold=4,
        decay_period_ps=2 * MILLISECONDS,
        timer_enabled=timers_enabled,
    )
    program.install_route(H1_IP, 1)
    program.install_route(H0_IP, 0)
    switch.load_program(program)

    server_host = network.hosts["h1"]
    store = {key: key * 1_000 for key in range(1, KEY_SPACE + 1)}
    server = KvServerApp(server_host, store, cache=program)

    workload = KvWorkload(
        network.sim,
        network.hosts["h0"].send,
        mean_pps=mean_pps,
        shift_at_ps=shift_at_ps,
        shift_offset=KEY_SPACE // 2,
        seed=seed,
    )
    workload.start(at_ps=100 * MICROSECONDS)

    # Sample hits/misses at the shift to compute the post-shift ratio.
    snapshot = {}

    def take_snapshot() -> None:
        snapshot["hits"] = program.hits
        snapshot["misses"] = program.misses

    network.sim.call_at(shift_at_ps, take_snapshot)
    network.run(until_ps=duration_ps)

    post_hits = program.hits - snapshot.get("hits", 0)
    post_misses = program.misses - snapshot.get("misses", 0)
    post_total = post_hits + post_misses
    return NetCacheResult(
        timers_enabled=timers_enabled,
        requests=workload.packets_sent,
        hit_ratio=program.hit_ratio,
        post_shift_hit_ratio=post_hits / post_total if post_total else 0.0,
        server_requests=server.requests_served,
        admissions=program.admissions,
        evictions=program.evictions,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for label, timers in (("timers", True), ("no-timers", False)):
        register(ScenarioSpec(
            name=f"netcache/{label}",
            runner="repro.experiments.netcache_exp:run_netcache",
            params={"timers_enabled": timers},
            app="netcache", workload="zipf",
            tags=("experiment", "application"),
            summary=f"NetCache hot-key caching ({label})",
        ))


_register_scenarios()
