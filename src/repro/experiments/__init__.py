"""Experiment runners.

One module per paper experiment (see DESIGN.md's per-experiment index).
Each runner assembles a topology, loads programs, drives a workload,
and returns a plain-data result object.  The benchmark suite prints
these as the paper's tables/figures; the integration tests assert the
qualitative claims (who wins, by roughly what factor); the examples
narrate single runs.
"""

from repro.experiments.factories import (
    make_baseline_switch,
    make_emulated_switch,
    make_logical_switch,
    make_sume_switch,
)

__all__ = [
    "make_baseline_switch",
    "make_logical_switch",
    "make_sume_switch",
    "make_emulated_switch",
]
