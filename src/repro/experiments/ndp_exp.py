"""NDP-style trimming on buffer-overflow events (paper §3).

Incast waves overflow a deliberately small bottleneck queue.  With the
event-driven NDP program, every overflow regenerates the victim's
headers through the high-priority queue, so the receiver learns of
every loss; under tail-drop the losses are silent and the sender must
wait for timeouts.

Reported: data packets lost, trim notifications delivered, and the
*loss visibility* — the fraction of lost packets the receiver heard
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.ndp import NdpProgram, TailDropProgram
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_dumbbell
from repro.packet.packet import Packet
from repro.sim.units import MILLISECONDS
from repro.tm.scheduler import StrictPriorityScheduler
from repro.workloads.base import FlowSpec
from repro.workloads.incast import IncastWave

RX_IP = 0x0A00_0000 + 101


@dataclass
class NdpResult:
    """One incast run."""

    scheme: str
    packets_sent: int
    data_delivered: int
    data_lost: int
    trims_delivered: int
    loss_visibility: float

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.scheme:<10} sent={self.packets_sent:<6} lost={self.data_lost:<6} "
            f"trims_rx={self.trims_delivered:<6} "
            f"loss_visibility={100 * self.loss_visibility:5.1f}%"
        )


def run_incast(
    scheme: str = "ndp",
    senders: int = 6,
    waves: int = 6,
    packets_per_sender: int = 24,
    duration_ps: int = 20 * MILLISECONDS,
) -> NdpResult:
    """Run one scheme ('ndp' or 'tail-drop') under incast."""
    if scheme not in ("ndp", "tail-drop"):
        raise ValueError(f"unknown scheme {scheme!r}")
    network = build_dumbbell(
        make_sume_switch(
            queue_capacity_bytes=16 * 1024,  # tiny, NDP-style
            queues_per_port=2,
            scheduler_factory=StrictPriorityScheduler,
        ),
        senders=senders,
        receivers=1,
    )
    program = NdpProgram() if scheme == "ndp" else TailDropProgram()
    program.install_route(RX_IP, 0)
    network.switches["s0"].load_program(program)
    egress = TailDropProgram()
    egress.install_route(RX_IP, 1)
    network.switches["s1"].load_program(egress)

    data_rx = 0
    trims_rx = 0

    def sink(pkt: Packet) -> None:
        nonlocal data_rx, trims_rx
        if pkt.meta.get("ndp_trimmed"):
            trims_rx += 1
        else:
            data_rx += 1

    network.hosts["rx0"].add_sink(sink)

    sends = []
    flows = []
    for i in range(senders):
        tx = network.hosts[f"tx{i}"]
        sends.append(tx.send)
        flows.append(FlowSpec(tx.ip, RX_IP, sport=3_000 + i, dport=4_000))
    wave = IncastWave(
        network.sim, sends, flows, packets_per_sender=packets_per_sender,
        payload_len=1400,
    )
    for w in range(waves):
        wave.fire_at((w + 1) * 2 * MILLISECONDS)

    network.run(until_ps=duration_ps)

    sent = wave.packets_sent
    lost = sent - data_rx
    visibility = trims_rx / lost if lost else 1.0
    return NdpResult(
        scheme=scheme,
        packets_sent=sent,
        data_delivered=data_rx,
        data_lost=lost,
        trims_delivered=trims_rx,
        loss_visibility=min(1.0, visibility),
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for scheme in ("tail-drop", "ndp"):
        register(ScenarioSpec(
            name=f"incast/{scheme}",
            runner="repro.experiments.ndp_exp:run_incast",
            params={"scheme": scheme, "senders": 6, "waves": 6,
                    "packets_per_sender": 24},
            app="ndp", topology="dumbbell", workload="incast",
            tags=("experiment", "application"),
            summary=f"incast under {scheme}",
        ))


_register_scenarios()
