"""AQM from events (paper §3, §5): FRED-like fairness vs. drop-tail.

A dumbbell where one unresponsive blaster competes with well-behaved
senders for the bottleneck.  Under drop-tail the blaster monopolizes
the buffer; under the event-driven FRED the per-active-flow occupancy
(computed from enqueue/dequeue events) caps its share.  RED is included
as the classic average-occupancy AQM.

Reported: per-flow goodput at the receiver, Jain's fairness index,
bottleneck queue statistics, and (for FRED) the timer-sampled occupancy
time series length — the §5 "report to a monitor" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.aqm import DropTailProgram, FredAqm, PieAqm, RedAqm
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_dumbbell
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.cbr import ConstantBitRate
from repro.workloads.sink import PacketSink

RX_IP = 0x0A00_0000 + 101


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair."""
    if not values:
        return 1.0
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)


@dataclass
class AqmResult:
    """One AQM scheme run."""

    scheme: str
    per_flow_packets: List[int]
    fairness: float
    blaster_share: float
    overflow_drops: int
    aqm_drops: int
    occupancy_samples: int
    peak_buffer_bytes: int

    def summary_row(self) -> str:
        """A printable summary row."""
        flows = "/".join(str(p) for p in self.per_flow_packets)
        return (
            f"{self.scheme:<10} goodput(pkts)={flows:<22} fairness={self.fairness:5.3f} "
            f"blaster_share={100 * self.blaster_share:5.1f}% "
            f"tail_drops={self.overflow_drops:<6} aqm_drops={self.aqm_drops:<6} "
            f"peak_buffer={self.peak_buffer_bytes}B"
        )


def run_aqm(
    scheme: str = "fred",
    duration_ps: int = 20 * MILLISECONDS,
    polite_senders: int = 3,
    polite_gbps: float = 2.5,
    blaster_gbps: float = 9.0,
    seed: int = 17,
) -> AqmResult:
    """Run one AQM scheme ('fred', 'red', 'pie', or 'drop-tail')."""
    if scheme not in ("fred", "red", "pie", "drop-tail"):
        raise ValueError(f"unknown scheme {scheme!r}")
    network = build_dumbbell(
        make_sume_switch(queue_capacity_bytes=64 * 1024),
        senders=polite_senders + 1,
        receivers=1,
    )
    if scheme == "fred":
        program = FredAqm(
            num_regs=1024,
            fairness_factor=1.2,
            min_buffer_bytes=8_000,
            sample_period_ps=100 * MICROSECONDS,
        )
    elif scheme == "red":
        program = RedAqm(
            min_thresh_bytes=12_000, max_thresh_bytes=48_000, max_drop_prob=0.2
        )
    elif scheme == "pie":
        program = PieAqm(
            target_delay_ps=15 * MICROSECONDS, update_period_ps=100 * MICROSECONDS
        )
    else:
        program = DropTailProgram()
    program.install_route(RX_IP, 0)
    network.switches["s0"].load_program(program)

    egress = DropTailProgram()
    egress.install_route(RX_IP, 1)
    network.switches["s1"].load_program(egress)

    sink = PacketSink("rx")
    network.hosts["rx0"].add_sink(sink)

    generators = []
    flows: List[FlowSpec] = []
    for i in range(polite_senders):
        tx = network.hosts[f"tx{i}"]
        flow = FlowSpec(tx.ip, RX_IP, sport=4_000 + i, dport=5_000)
        flows.append(flow)
        gen = ConstantBitRate(
            network.sim, tx.send, flow, rate_gbps=polite_gbps, payload_len=1400,
            name=f"polite{i}",
        )
        gen.start(at_ps=50 * MICROSECONDS)
        generators.append(gen)
    blaster_tx = network.hosts[f"tx{polite_senders}"]
    blaster_flow = FlowSpec(blaster_tx.ip, RX_IP, sport=4_999, dport=5_000)
    flows.append(blaster_flow)
    blaster = ConstantBitRate(
        network.sim, blaster_tx.send, blaster_flow,
        rate_gbps=blaster_gbps, payload_len=1400, name="blaster",
    )
    blaster.start(at_ps=50 * MICROSECONDS)
    generators.append(blaster)

    network.run(until_ps=duration_ps)

    per_flow = []
    for flow in flows:
        key = (flow.src_ip, flow.dst_ip, 17, flow.sport, flow.dport)
        per_flow.append(sink.per_flow.get(key, 0))
    total = sum(per_flow) or 1
    aqm_drops = getattr(program, "unfair_drops", 0) + getattr(program, "early_drops", 0)
    return AqmResult(
        scheme=scheme,
        per_flow_packets=per_flow,
        fairness=jain_fairness([float(p) for p in per_flow]),
        blaster_share=per_flow[-1] / total,
        overflow_drops=network.switches["s0"].tm.drops_overflow,
        aqm_drops=aqm_drops,
        occupancy_samples=len(getattr(program, "occupancy_series", [])),
        peak_buffer_bytes=network.switches["s0"].tm.buffer.max_occupancy_bytes,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    # Every numeric knob of run_aqm is declared (at its default) so
    # sweeps and searches (repro.search) can range over them; declared
    # params are the admission contract for with_params overrides.
    for scheme in ("drop-tail", "fred"):
        register(ScenarioSpec(
            name=f"aqm/{scheme}",
            runner="repro.experiments.aqm_exp:run_aqm",
            params={
                "scheme": scheme,
                "duration_ps": 20 * MILLISECONDS,
                "polite_senders": 3,
                "polite_gbps": 2.5,
                "blaster_gbps": 9.0,
                "seed": 17,
            },
            app="aqm", topology="dumbbell", workload="cbr",
            tags=("experiment", "application"),
            summary=f"{scheme} queue management fairness",
        ))


_register_scenarios()
