"""INT telemetry: event-driven aggregation vs. postcards (paper §3).

Incast waves push the bottleneck queue up and cause drops.  The
event-driven aggregator summarizes each window from enqueue/overflow
events and reports only anomalous windows; the postcard baseline emits
one report per packet.  Reported: telemetry volume (reports and report
bytes on the monitor link), the volume-reduction factor, and whether
every loss/congestion episode was still captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.int_telemetry import IntAggregator, PostcardTelemetry
from repro.experiments.factories import make_sume_switch
from repro.net.host import Host
from repro.net.network import Network
from repro.packet.headers import IntReport
from repro.packet.packet import Packet
from repro.sim.units import MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.incast import IncastWave
from repro.workloads.poisson import PoissonTraffic

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002
MONITOR_IP = 0x0A00_00FE


@dataclass
class IntResult:
    """One telemetry run."""

    scheme: str
    data_packets: int
    reports_received: int
    reduction_factor: float
    anomalous_windows: int
    windows_reported: int

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.scheme:<12} data_pkts={self.data_packets:<6} "
            f"reports={self.reports_received:<6} "
            f"reduction={self.reduction_factor:8.1f}x "
            f"anomalies={self.anomalous_windows}/{self.windows_reported} reported"
        )


def run_int(
    scheme: str = "aggregate",
    duration_ps: int = 20 * MILLISECONDS,
    background_pps: float = 200_000.0,
    waves: int = 4,
    seed: int = 29,
) -> IntResult:
    """Run one telemetry scheme ('aggregate', 'all-windows', 'postcards')."""
    network = Network()
    factory = make_sume_switch(queue_capacity_bytes=24 * 1024)
    switch = network.add_switch(factory(network.sim, "s0", 4))
    h0 = network.add_host(Host(network.sim, "h0", H0_IP))
    h2 = network.add_host(Host(network.sim, "h2", H0_IP + 0x100))
    h1 = network.add_host(Host(network.sim, "h1", H1_IP))
    monitor = network.add_host(Host(network.sim, "monitor", MONITOR_IP))
    network.connect(h0, 0, switch, 0)
    network.connect(switch, 1, h1, 0)
    network.connect(switch, 2, monitor, 0)
    network.connect(h2, 0, switch, 3)

    if scheme == "aggregate":
        program = IntAggregator(
            switch_id=1, monitor_port=2, window_ps=1 * MILLISECONDS,
            anomaly_queue_bytes=12_000, filter_reports=True,
        )
    elif scheme == "all-windows":
        program = IntAggregator(
            switch_id=1, monitor_port=2, window_ps=1 * MILLISECONDS,
            anomaly_queue_bytes=12_000, filter_reports=False,
        )
    elif scheme == "postcards":
        program = PostcardTelemetry(switch_id=1, monitor_port=2)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    program.install_route(H1_IP, 1)
    program.install_route(H0_IP, 0)
    switch.load_program(program)

    reports: List[Packet] = []
    monitor.add_sink(lambda pkt: reports.append(pkt) if pkt.get(IntReport) else None)

    background = PoissonTraffic(
        network.sim,
        h0.send,
        FlowSpec(H0_IP, H1_IP, sport=1_111, dport=2_222),
        mean_pps=background_pps,
        payload_len=600,
        seed=seed,
        name="bg",
    )
    background.start(at_ps=50_000)
    wave = IncastWave(
        network.sim,
        [h0.send, h2.send] * 2,
        [
            FlowSpec(H0_IP if i % 2 == 0 else H0_IP + 0x100, H1_IP,
                     sport=1_200 + i, dport=2_222)
            for i in range(4)
        ],
        packets_per_sender=24,
        payload_len=1400,
    )
    for w in range(waves):
        wave.fire_at((w + 1) * 4 * MILLISECONDS)

    network.run(until_ps=duration_ps)

    windows = getattr(program, "windows", [])
    anomalous = sum(1 for w in windows if w.max_queue_bytes > 12_000 or w.drops > 0)
    reported = sum(1 for w in windows if w.reported)
    data_packets = program.packets_seen
    reduction = data_packets / len(reports) if reports else float("inf")
    return IntResult(
        scheme=scheme,
        data_packets=data_packets,
        reports_received=len(reports),
        reduction_factor=reduction,
        anomalous_windows=anomalous,
        windows_reported=reported,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="int/aggregate",
        runner="repro.experiments.int_exp:run_int",
        params={"scheme": "aggregate"},
        app="int", workload="cbr",
        tags=("experiment", "application"),
        summary="in-band network telemetry with aggregated reports",
    ))


_register_scenarios()
