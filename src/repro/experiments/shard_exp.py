"""Sharded datacenter scenarios: fabrics, workloads, serial references.

This module is the picklable glue between the generic engine
(:mod:`repro.sim.shard`) and concrete experiments: a pure-data
:class:`ShardScenario`, a module-level :func:`build_shard` that worker
processes call to realize their slice of the fabric, and
:func:`run_serial` / :func:`run_sharded` entry points the CLI, bench,
and tests share.

Workloads are **per-host deterministic** — every host's send schedule
depends only on the scenario (and for Zipf, its own seeded stream), not
on which shard it landed in — so a 1-shard and an 8-shard run inject
exactly the same traffic.

The stock ``incast`` workload is also *fingerprint-safe*: one receiver
per pod, every sender in pod p targets the receiver of pod p+1, so all
packets contending for any queue share one destination and one length.
Under that condition same-timestamp tie reordering (the only freedom
the sharded schedule has) permutes arrivals of interchangeable packets,
and the order-insensitive fingerprint is provably identical to the
serial run's — see ``docs/SCALING.md``.  The ``zipf`` workload mixes
destinations per queue and only promises run-to-run determinism at a
fixed shard count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.l3fwd import L3Router
from repro.experiments.factories import make_baseline_switch
from repro.net.network import Network
from repro.net.partition import Partition, partition_spec
from repro.net.routing import ecmp_routes
from repro.net.topology import TopologySpec, fat_tree_spec, leaf_spine_spec, realize
from repro.packet.builder import make_udp_packet
from repro.sim.rng import SeededRng
from repro.sim.shard import (
    HostRecords,
    ShardedSimulator,
    ShardRuntime,
    ShardRunResult,
    attach_recorders,
    behavior_fingerprint,
    fingerprint_digest,
    wire_boundary_links,
)


@dataclass(frozen=True)
class ShardScenario:
    """A sharded experiment as plain picklable data."""

    topology: str = "fattree"  # "fattree" | "leafspine"
    k: int = 4
    leaf_count: int = 2
    spine_count: int = 2
    hosts_per_leaf: int = 2
    link_latency_ps: int = 1_000_000
    workload: str = "incast"  # "incast" | "zipf"
    waves: int = 2
    packets_per_sender: int = 4
    payload_len: int = 512
    wave_gap_ps: int = 50_000_000
    send_gap_ps: int = 2_000_000
    start_ps: int = 1_000_000
    #: generous by default so stock scenarios stay drop-free.
    queue_capacity_bytes: int = 1 << 20
    zipf_skew: float = 1.2
    seed: int = 1
    strategy: str = "auto"


def scenario_spec(scenario: ShardScenario) -> TopologySpec:
    """The scenario's fabric as pure data."""
    if scenario.topology == "fattree":
        return fat_tree_spec(
            k=scenario.k, link_latency_ps=scenario.link_latency_ps
        )
    if scenario.topology == "leafspine":
        return leaf_spine_spec(
            leaf_count=scenario.leaf_count,
            spine_count=scenario.spine_count,
            hosts_per_leaf=scenario.hosts_per_leaf,
            link_latency_ps=scenario.link_latency_ps,
        )
    raise ValueError(f"unknown topology {scenario.topology!r}")


def scenario_partition(scenario: ShardScenario, shards: int) -> Partition:
    return partition_spec(scenario_spec(scenario), shards, scenario.strategy)


# ---------------------------------------------------------------------------
# Workload schedules (per-host deterministic)
# ---------------------------------------------------------------------------


def incast_pairs(spec: TopologySpec) -> List[Tuple[str, str]]:
    """(sender, receiver) pairs: pod p's hosts flood pod p+1's receiver.

    The receiver of a pod is its first host in spec order; receivers
    send nothing.  With one pod the traffic stays pod-local.
    """
    pod_of: Dict[str, int] = spec.meta["pod_of"]  # type: ignore[assignment]
    hosts = spec.host_names()
    receivers: Dict[int, str] = {}
    for host in hosts:
        receivers.setdefault(pod_of[host], host)
    pods = sorted(receivers)
    pairs = []
    for host in hosts:
        pod = pod_of[host]
        if receivers[pod] == host:
            continue
        target = pods[(pods.index(pod) + 1) % len(pods)]
        pairs.append((host, receivers[target]))
    return pairs


def _schedule_workload(
    scenario: ShardScenario, spec: TopologySpec, network: Network
) -> None:
    """Queue every local host's sends on the network's simulator."""
    ips = spec.host_ips()
    sim = network.sim
    if scenario.workload == "incast":
        for sender, receiver in incast_pairs(spec):
            host = network.hosts.get(sender)
            if host is None:  # not on this shard
                continue
            pkt_args = dict(
                src_ip=ips[sender],
                dst_ip=ips[receiver],
                payload_len=scenario.payload_len,
            )
            for wave in range(scenario.waves):
                wave_t = scenario.start_ps + wave * scenario.wave_gap_ps
                for _ in range(scenario.packets_per_sender):
                    sim.call_at(
                        wave_t, host.send, make_udp_packet(ts_ps=wave_t, **pkt_args)
                    )
        return
    if scenario.workload == "zipf":
        hosts = spec.host_names()
        for sender in hosts:
            host = network.hosts.get(sender)
            rng = SeededRng(scenario.seed, sender)
            candidates = [h for h in hosts if h != sender]
            total = scenario.waves * scenario.packets_per_sender
            for i in range(total):
                # Draw regardless of locality so every shard layout sees
                # the same per-host destination stream.
                dst = candidates[
                    rng.zipf_index(len(candidates), scenario.zipf_skew)
                ]
                if host is None:
                    continue
                t = scenario.start_ps + i * scenario.send_gap_ps
                sim.call_at(
                    t,
                    host.send,
                    make_udp_packet(
                        src_ip=ips[sender],
                        dst_ip=ips[dst],
                        payload_len=scenario.payload_len,
                        ts_ps=t,
                    ),
                )
        return
    raise ValueError(f"unknown workload {scenario.workload!r}")


def expected_packets(scenario: ShardScenario) -> int:
    """How many packets the workload injects in total."""
    spec = scenario_spec(scenario)
    per_sender = scenario.waves * scenario.packets_per_sender
    if scenario.workload == "incast":
        return len(incast_pairs(spec)) * per_sender
    return len(spec.host_names()) * per_sender


# ---------------------------------------------------------------------------
# Shard builder + entry points
# ---------------------------------------------------------------------------


def build_shard(shard_id: int, scenario: ShardScenario, shards: int) -> ShardRuntime:
    """Realize one shard of the scenario, routed and traffic-scheduled.

    Module-level and driven purely by picklable data, so it runs
    identically inline, in a forked worker, or in a spawned one.  With
    ``shards=1`` it builds the whole fabric — the serial reference.
    """
    spec = scenario_spec(scenario)
    factory = make_baseline_switch(
        queue_capacity_bytes=scenario.queue_capacity_bytes
    )
    if shards == 1:
        network = realize(spec, factory)
        boundaries = {}
    else:
        partition = partition_spec(spec, shards, scenario.strategy)
        network = realize(
            spec, factory, only_nodes=partition.shard_nodes(shard_id)
        )
        boundaries = wire_boundary_links(network, partition, shard_id)
    tables = ecmp_routes(spec)
    for name, switch in network.switches.items():
        program = L3Router()
        program.install_host_routes(tables[name])
        switch.load_program(program)
    recorders = attach_recorders(network)
    _schedule_workload(scenario, spec, network)
    return ShardRuntime(
        sim=network.sim,
        network=network,
        boundaries=boundaries,
        recorders=recorders,
    )


@dataclass
class SerialRunResult:
    """The single-process reference run."""

    records: HostRecords
    fingerprint: Dict[str, Tuple[int, int, str]]
    events: int
    wall_s: float

    @property
    def digest(self) -> str:
        return fingerprint_digest(self.fingerprint)

    def total_received(self) -> int:
        return sum(packets for packets, _, _ in self.fingerprint.values())


def run_serial(scenario: ShardScenario) -> SerialRunResult:
    """Run the whole scenario on one simulator in this process."""
    runtime = build_shard(0, scenario, 1)
    started = time.perf_counter()
    events = runtime.sim.run()
    wall_s = time.perf_counter() - started
    records = runtime.collect()
    return SerialRunResult(
        records=records,
        fingerprint=behavior_fingerprint(records),
        events=events,
        wall_s=wall_s,
    )


def run_sharded(
    scenario: ShardScenario, shards: int, mode: str = "process"
) -> ShardRunResult:
    """Run the scenario split across ``shards`` simulators."""
    partition = scenario_partition(scenario, shards)
    coordinator = ShardedSimulator(
        partition,
        build_shard,
        builder_args=(scenario, shards),
        mode=mode,
    )
    return coordinator.run()


def run_fabric(
    topology: str = "leafspine",
    k: int = 4,
    leaf_count: int = 4,
    spine_count: int = 4,
    hosts_per_leaf: int = 2,
    workload: str = "incast",
    waves: int = 2,
    packets_per_sender: int = 4,
    seed: int = 1,
    shards: int = 2,
    mode: str = "process",
    compare_serial: bool = False,
) -> dict:
    """One sharded fabric run from flat knobs (the registry entry point).

    Returns a JSON-able record; with ``compare_serial`` the serial
    reference runs too and a fingerprint mismatch raises, so a service
    job fails loudly rather than reporting a wrong-but-green result.
    """
    scenario = ShardScenario(
        topology=topology,
        k=k,
        leaf_count=leaf_count,
        spine_count=spine_count,
        hosts_per_leaf=hosts_per_leaf,
        workload=workload,
        waves=waves,
        packets_per_sender=packets_per_sender,
        seed=seed,
    )
    result = run_sharded(scenario, shards=shards, mode=mode)
    record = {
        "topology": scenario_spec(scenario).name,
        "shards": shards,
        "mode": mode,
        "workload": workload,
        "wall_s": result.wall_s,
        "digest": result.digest,
        "result": result.stats.summary_rows(),
    }
    if compare_serial:
        serial = run_serial(scenario)
        record["serial_wall_s"] = serial.wall_s
        if serial.fingerprint != result.fingerprint:
            raise RuntimeError(
                f"sharded fingerprint diverged from serial on "
                f"{record['topology']}"
            )
        record["fingerprint_match"] = True
    return record


def run_inline_demo() -> dict:
    """The `shard` events source: a 2-shard run with in-process buses."""
    result = run_sharded(
        ShardScenario(
            topology="leafspine", leaf_count=2, spine_count=2,
            hosts_per_leaf=2,
        ),
        shards=2,
        mode="inline",
    )
    return {
        "per-shard counters (shard)": result.stats.summary_rows()
        + [f"behavior fingerprint {result.digest[:16]}…"]
    }


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="shard/leafspine",
        runner="repro.experiments.shard_exp:run_fabric",
        params={"topology": "leafspine", "leaf_count": 4, "spine_count": 4,
                "hosts_per_leaf": 2, "workload": "incast", "waves": 2,
                "packets_per_sender": 4, "seed": 1, "shards": 2,
                "mode": "process", "compare_serial": False},
        app="l3fwd", topology="leaf-spine", workload="incast", seed=1,
        tags=("experiment", "shard"),
        summary="4x4 leaf-spine incast across 2 shard processes",
    ))
    register(ScenarioSpec(
        name="shard/fattree-k4",
        runner="repro.experiments.shard_exp:run_fabric",
        params={"topology": "fattree", "k": 4, "workload": "incast",
                "waves": 2, "packets_per_sender": 4, "seed": 1, "shards": 4,
                "mode": "process", "compare_serial": False},
        app="l3fwd", topology="fat-tree", workload="incast", seed=1,
        tags=("experiment", "shard"),
        summary="k=4 fat-tree incast across 4 shard processes",
    ))
    register(ScenarioSpec(
        name="shard",
        runner="repro.experiments.shard_exp:run_inline_demo",
        params={},
        app="l3fwd", topology="leaf-spine", workload="incast",
        tags=("source",),
        summary="events source: 2-shard leaf-spine with in-process buses",
    ))


_register_scenarios()
