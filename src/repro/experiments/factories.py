"""Switch factories for experiment topologies.

All topology builders take ``factory(sim, name, port_count)``; these
helpers bind each architecture with a port-count-adjusted description
and experiment-friendly buffer defaults.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.baseline import BaselinePsaSwitch
from repro.arch.description import (
    BASELINE_PSA,
    FULL_EVENT_SWITCH,
    LOGICAL_EVENT_DRIVEN,
    SUME_EVENT_SWITCH,
    TOFINO_LIKE,
)
from repro.arch.emulation import EmulatedEventSwitch
from repro.arch.event_driven import LogicalEventSwitch
from repro.arch.sume import SumeEventSwitch
from repro.net.topology import with_ports
from repro.sim.kernel import Simulator


def make_baseline_switch(
    queue_capacity_bytes: int = 64 * 1024,
    queues_per_port: int = 1,
    scheduler_factory=None,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
):
    """Factory for Figure 1 baseline PSA switches."""

    def factory(sim: Simulator, name: str, port_count: int) -> BaselinePsaSwitch:
        return BaselinePsaSwitch(
            sim,
            with_ports(BASELINE_PSA, port_count),
            name=name,
            queue_capacity_bytes=queue_capacity_bytes,
            queues_per_port=queues_per_port,
            scheduler_factory=scheduler_factory,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )

    return factory


def make_logical_switch(
    queue_capacity_bytes: int = 64 * 1024,
    queues_per_port: int = 1,
    scheduler_factory=None,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
):
    """Factory for Figure 2 logical event-driven switches."""

    def factory(sim: Simulator, name: str, port_count: int) -> LogicalEventSwitch:
        return LogicalEventSwitch(
            sim,
            with_ports(LOGICAL_EVENT_DRIVEN, port_count),
            name=name,
            queue_capacity_bytes=queue_capacity_bytes,
            queues_per_port=queues_per_port,
            scheduler_factory=scheduler_factory,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )

    return factory


def make_sume_switch(
    queue_capacity_bytes: int = 64 * 1024,
    queues_per_port: int = 1,
    scheduler_factory=None,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
    full_events: bool = False,
    merger_injection_enabled: bool = True,
    merger_queue_capacity: int = 64,
):
    """Factory for Figure 4 SUME Event Switches.

    ``full_events=True`` selects the extended description (underflow,
    control-plane, and user events included).
    """
    base = FULL_EVENT_SWITCH if full_events else SUME_EVENT_SWITCH

    def factory(sim: Simulator, name: str, port_count: int) -> SumeEventSwitch:
        return SumeEventSwitch(
            sim,
            with_ports(base, port_count),
            name=name,
            queue_capacity_bytes=queue_capacity_bytes,
            queues_per_port=queues_per_port,
            scheduler_factory=scheduler_factory,
            merger_injection_enabled=merger_injection_enabled,
            merger_queue_capacity=merger_queue_capacity,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )

    return factory


def make_emulated_switch(
    queue_capacity_bytes: int = 64 * 1024,
    recirc_rate_gbps: float = 100.0,
    recirc_queue_capacity: int = 128,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
):
    """Factory for §6 Tofino-like switches with event emulation."""

    def factory(sim: Simulator, name: str, port_count: int) -> EmulatedEventSwitch:
        return EmulatedEventSwitch(
            sim,
            with_ports(TOFINO_LIKE, port_count),
            name=name,
            queue_capacity_bytes=queue_capacity_bytes,
            recirc_rate_gbps=recirc_rate_gbps,
            recirc_queue_capacity=recirc_queue_capacity,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )

    return factory
