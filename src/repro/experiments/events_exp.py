"""Table 1: the data-plane event catalog, demonstrated live.

Two artifacts:

* the **support matrix** — which of the thirteen Table 1 events each
  stock architecture exposes (natively / via emulation / not at all),
  straight from the architecture description files;
* a **live demonstration** — a catalog program with a handler for every
  event kind runs on the full event switch while the experiment
  provokes each event: packets arrive (ingress → enqueue → dequeue →
  transmitted), a tiny queue overflows, a drained port underflows, one
  packet recirculates, the program generates a packet, a timer fires,
  the control plane triggers an event, a link flaps, and the program
  raises a user event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.common import ForwardingProgram
from repro.arch.description import STOCK_DESCRIPTIONS
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import MICROSECONDS, MILLISECONDS

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002
CATALOG_TIMER = 12


class EventCatalogProgram(ForwardingProgram):
    """Handles every event kind and counts what it saw."""

    name = "event-catalog"

    def __init__(self) -> None:
        super().__init__()
        self.seen: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.recirculate_next = False

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(CATALOG_TIMER, 100 * MICROSECONDS)

    def _saw(self, kind: EventType) -> None:
        self.seen[kind] += 1

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self._saw(EventType.INGRESS_PACKET)
        if self.recirculate_next:
            self.recirculate_next = False
            meta.request_recirculation()
            return
        self.forward_by_ip(pkt, meta)

    @handler(EventType.RECIRCULATED_PACKET)
    def recirculated(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        self._saw(EventType.RECIRCULATED_PACKET)
        self.forward_by_ip(pkt, meta)

    @handler(EventType.GENERATED_PACKET)
    def generated(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self._saw(EventType.GENERATED_PACKET)
        self.forward_by_ip(pkt, meta)

    @handler(EventType.PACKET_TRANSMITTED)
    def transmitted(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.PACKET_TRANSMITTED)

    @handler(EventType.ENQUEUE)
    def enqueue(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.ENQUEUE)

    @handler(EventType.DEQUEUE)
    def dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.DEQUEUE)

    @handler(EventType.BUFFER_OVERFLOW)
    def overflow(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.BUFFER_OVERFLOW)

    @handler(EventType.BUFFER_UNDERFLOW)
    def underflow(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.BUFFER_UNDERFLOW)

    @handler(EventType.TIMER)
    def timer(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.TIMER)
        if self.seen[EventType.TIMER] == 2:
            # Demonstrate data-plane packet generation and user events.
            probe = make_udp_packet(H0_IP, H1_IP, sport=42, dport=43, ts_ps=ctx.now_ps)
            ctx.generate_packet(probe)
            ctx.raise_user_event({"reason": 1})

    @handler(EventType.CONTROL_PLANE)
    def control(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.CONTROL_PLANE)

    @handler(EventType.LINK_STATUS)
    def link_status(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.LINK_STATUS)

    @handler(EventType.USER)
    def user(self, ctx: ProgramContext, event: Event) -> None:
        self._saw(EventType.USER)


@dataclass
class CatalogResult:
    """The live-demo outcome."""

    seen: Dict[EventType, int]

    def all_fired(self) -> bool:
        """True when every Table 1 event kind was handled at least once."""
        return all(count > 0 for kind, count in self.seen.items()
                   if kind != EventType.EGRESS_PACKET)

    def summary_rows(self) -> List[str]:
        """Printable per-event rows."""
        return [
            f"{kind.value:<26} handled {count} time(s)"
            for kind, count in sorted(self.seen.items(), key=lambda kv: kv[0].value)
        ]


def support_matrix() -> List[Dict[str, str]]:
    """Table 1 support per stock architecture description."""
    return [description.support_row() for description in STOCK_DESCRIPTIONS]


def run_catalog_demo(duration_ps: int = 5 * MILLISECONDS) -> CatalogResult:
    """Provoke all twelve single-pipeline events on the full switch."""
    network = build_linear(
        make_sume_switch(queue_capacity_bytes=4 * 1024, full_events=True),
        switch_count=1,
    )
    switch = network.switches["s0"]
    program = EventCatalogProgram()
    program.install_routes({H1_IP: 1, H0_IP: 0})
    switch.load_program(program)

    h0 = network.hosts["h0"]

    def burst(count: int, payload: int = 1400) -> None:
        for i in range(count):
            h0.send(
                make_udp_packet(
                    H0_IP, H1_IP, sport=100 + i, dport=200,
                    payload_len=payload, ts_ps=network.sim.now_ps,
                )
            )

    # Slow the egress port so the 4 KiB queue actually fills (the hosts
    # and switch otherwise share one line rate and the queue never
    # builds), then burst into it; the following silence drains the
    # queue empty — a buffer underflow.
    switch.tm.set_port_rate(1, 1.0)
    network.sim.call_at(100 * MICROSECONDS, burst, 12)
    # One packet marked for recirculation.
    network.sim.call_at(
        2 * MILLISECONDS, lambda: setattr(program, "recirculate_next", True)
    )
    network.sim.call_at(2 * MILLISECONDS + 1, burst, 1, 100)
    # A control-plane triggered event and a link flap.
    network.sim.call_at(3 * MILLISECONDS, switch.control_event, {"opcode": 7})
    link = network.link_between("s0", "h1")
    assert link is not None
    network.sim.call_at(int(3.5 * MILLISECONDS), link.set_up, False)
    network.sim.call_at(4 * MILLISECONDS, link.set_up, True)

    network.run(until_ps=duration_ps)
    return CatalogResult(seen=dict(program.seen))


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="events/catalog",
        runner="repro.experiments.events_exp:run_catalog_demo",
        params={"duration_ps": 5 * MILLISECONDS},
        app="event-catalog", topology="linear",
        duration_ps=5 * MILLISECONDS,
        tags=("experiment", "paper"),
        summary="Table 1 live demonstration: every event kind fires once",
    ))
    register(ScenarioSpec(
        name="catalog",
        runner="repro.experiments.events_exp:run_catalog_demo",
        params={"duration_ps": 5 * MILLISECONDS},
        app="event-catalog", topology="linear",
        duration_ps=5 * MILLISECONDS,
        tags=("source",),
        summary="events source: the Table 1 event-catalog demo",
    ))


_register_scenarios()
