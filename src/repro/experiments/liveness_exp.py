"""Data-plane liveness monitoring (paper §5 student project).

Two SUME Event Switches probe each other over a link; a monitor host
hangs off s0.  The link is failed *silently* — the experiment disables
LINK_STATUS delivery for the probing port pair by failing the remote
peer instead (we stop s1 from answering), so detection must come from
the echo-request deadline machinery, not from the PHY.

Reported: detection delay (should be ≈ misses_allowed × period) and
whether the failure notification reached the monitor without any
control-plane involvement; versus the control plane's polling detection
latency (defaults to 100 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.liveness import LivenessMonitor
from repro.control.plane import ControlPlaneConfig
from repro.experiments.factories import make_sume_switch
from repro.net.host import Host
from repro.net.network import Network
from repro.packet.headers import LivenessEcho
from repro.packet.packet import Packet
from repro.sim.units import MICROSECONDS, MILLISECONDS

MONITOR_IP = 0x0A00_00FE


@dataclass
class LivenessResult:
    """One liveness run."""

    detection_delay_ps: Optional[int]
    notifications_at_monitor: int
    requests_sent: int
    control_plane_delay_ps: int

    def summary_row(self) -> str:
        """A printable summary row."""
        delay = (
            f"{self.detection_delay_ps / MICROSECONDS:.1f}us"
            if self.detection_delay_ps is not None
            else "never"
        )
        return (
            f"data-plane detection={delay} "
            f"(control plane: {self.control_plane_delay_ps / MICROSECONDS:.0f}us) "
            f"notifications={self.notifications_at_monitor}"
        )


def run_liveness(
    period_ps: int = 10 * MICROSECONDS,
    misses_allowed: int = 3,
    fail_at_ps: int = 2 * MILLISECONDS,
    duration_ps: int = 4 * MILLISECONDS,
    control_config: ControlPlaneConfig = ControlPlaneConfig(),
) -> LivenessResult:
    """Fail the neighbor link and measure data-plane detection delay."""
    network = Network()
    factory = make_sume_switch()
    s0 = network.add_switch(factory(network.sim, "s0", 2))
    s1 = network.add_switch(factory(network.sim, "s1", 2))
    monitor = network.add_host(Host(network.sim, "monitor", MONITOR_IP))
    network.connect(s0, 0, s1, 0, latency_ps=500_000)
    network.connect(s0, 1, monitor, 0, latency_ps=500_000)

    prog0 = LivenessMonitor(
        switch_id=0,
        neighbor_ports=[0],
        period_ps=period_ps,
        misses_allowed=misses_allowed,
        monitor_port=1,
    )
    prog1 = LivenessMonitor(
        switch_id=1,
        neighbor_ports=[0],
        period_ps=period_ps,
        misses_allowed=misses_allowed,
        monitor_port=None,
    )
    s0.load_program(prog0)
    s1.load_program(prog1)

    notifications: List[int] = []

    def monitor_sink(pkt: Packet) -> None:
        echo = pkt.get(LivenessEcho)
        if echo is not None and echo.kind == LivenessEcho.KIND_NOTIFY:
            notifications.append(network.sim.now_ps)

    monitor.add_sink(monitor_sink)

    link = network.link_between("s0", "s1")
    assert link is not None
    # Fail silently from s0's perspective: cut the wire without letting
    # the architecture's link monitor see it (set_up would notify both
    # ends, so we sever delivery directly).
    network.sim.call_at(fail_at_ps, lambda: setattr(link, "up", False))

    network.run(until_ps=duration_ps)

    control_delay = control_config.failure_detection_ps
    return LivenessResult(
        detection_delay_ps=prog0.detection_delay_ps(fail_at_ps),
        notifications_at_monitor=len(notifications),
        requests_sent=prog0.requests_sent,
        control_plane_delay_ps=control_delay,
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="liveness/probe",
        runner="repro.experiments.liveness_exp:run_liveness",
        params={"period_ps": 10 * MICROSECONDS, "misses_allowed": 3,
                "fail_at_ps": 2 * MILLISECONDS,
                "duration_ps": 4 * MILLISECONDS},
        app="liveness", workload="cbr",
        duration_ps=4 * MILLISECONDS,
        tags=("experiment", "application"),
        summary="data-plane liveness probing detects a dead link",
    ))


_register_scenarios()
