"""Swing-state migration on failover (paper §3, network management).

The diamond topology from the FRR experiment, with per-flow byte
budgets enforced at the transit switches.  A flow spends most of its
budget on the primary path, then the link fails:

* **with migration** the head-end's LINK_STATUS handler ships the
  consumed-budget counters to the backup transit in generated
  state-transfer packets, so enforcement continues seamlessly —
  delivered bytes stay ≈ the budget;
* **without migration** the backup transit starts from zero and the
  flow gets an entire fresh budget — delivered bytes ≈ 2× the budget
  (the over-admission the paper's state migration prevents).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.frr import StaticRouteProgram
from repro.apps.state_migration import (
    BudgetTransitProgram,
    SwingStateHeadProgram,
)
from repro.experiments.factories import make_sume_switch
from repro.experiments.frr_exp import H0_IP, H1_IP, _build_diamond
from repro.sim.units import MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.cbr import ConstantBitRate
from repro.workloads.sink import PacketSink

BUDGET_BYTES = 50_000


@dataclass
class MigrationResult:
    """One failover-with-budget run."""

    migrate: bool
    budget_bytes: int
    delivered_bytes: int
    transfers_sent: int
    transfers_received: int
    over_admission_bytes: int

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"migrate={str(self.migrate):<5} budget={self.budget_bytes:<7} "
            f"delivered={self.delivered_bytes:<7} "
            f"over_admitted={self.over_admission_bytes:<7} "
            f"transfers={self.transfers_sent}/{self.transfers_received}"
        )


def run_migration(
    migrate: bool = True,
    duration_ps: int = 40 * MILLISECONDS,
    fail_at_ps: int = 10 * MILLISECONDS,
    rate_gbps: float = 0.2,
) -> MigrationResult:
    """Run the failover with or without swing-state migration."""
    network = _build_diamond(make_sume_switch())

    head = SwingStateHeadProgram(migrate=migrate)
    head.install_protected_route(H1_IP, primary=1, backup=2)
    head.install_route(H0_IP, 0)
    network.switches["s0"].load_program(head)

    transits = {}
    for name in ("s1", "s2"):
        transit = BudgetTransitProgram(budget_bytes=BUDGET_BYTES)
        transit.install_routes({H1_IP: 1, H0_IP: 0})
        network.switches[name].load_program(transit)
        transits[name] = transit

    tail = StaticRouteProgram()
    tail.install_routes({H1_IP: 0, H0_IP: 1})
    network.switches["s3"].load_program(tail)

    sink = PacketSink("h1")
    network.hosts["h1"].add_sink(sink)

    flow = FlowSpec(H0_IP, H1_IP, sport=777, dport=888)
    generator = ConstantBitRate(
        network.sim,
        network.hosts["h0"].send,
        flow,
        rate_gbps=rate_gbps,
        payload_len=958,
        name="budgeted-flow",
    )
    generator.start(at_ps=100_000)

    link = network.link_between("s0", "s1")
    assert link is not None
    link.fail_at(fail_at_ps)

    network.run(until_ps=duration_ps)

    delivered = sink.bytes
    return MigrationResult(
        migrate=migrate,
        budget_bytes=BUDGET_BYTES,
        delivered_bytes=delivered,
        transfers_sent=head.transfers_sent,
        transfers_received=transits["s2"].transfers_received,
        over_admission_bytes=max(0, delivered - BUDGET_BYTES),
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for label, migrate in (("swing", True), ("naive", False)):
        register(ScenarioSpec(
            name=f"migration/{label}",
            runner="repro.experiments.migration_exp:run_migration",
            params={"migrate": migrate},
            app="state-migration", topology="diamond",
            tags=("experiment", "application"),
            summary=f"state migration on failover ({label})",
        ))


_register_scenarios()
