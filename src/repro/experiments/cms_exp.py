"""Count-min-sketch reset: data-plane timers vs. the control plane.

The paper's §1 motivating overhead: a CMS that must be periodically
reset.  Three modes on the same Zipf heavy-hitter workload:

* ``timer`` — the TIMER event clears the sketch at exact window
  boundaries; the control plane does nothing.
* ``control`` — a modeled control plane clears the sketch over PCIe:
  every reset costs an RTT plus a per-counter write, the controller is
  single-threaded, and clears land late — windows blur together and
  mice get reported as heavy hitters.
* ``none`` — no resets at all: the sketch saturates.

Reported per mode: precision/recall of heavy-hitter reports against
the generator's ground truth, resets completed, and controller busy
fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set, Tuple

from repro.apps.heavy_hitters import HeavyHitterDetector
from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.sim.process import PeriodicProcess
from repro.sim.units import MILLISECONDS
from repro.workloads.zipf import ZipfFlowMix

H1_IP = 0x0A00_0002


@dataclass
class CmsResult:
    """One reset-mode run."""

    mode: str
    precision: float
    recall: float
    resets_completed: int
    controller_busy_fraction: float
    reports: int

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"{self.mode:<8} precision={self.precision:5.2f} recall={self.recall:5.2f} "
            f"resets={self.resets_completed:<4} "
            f"controller_busy={100 * self.controller_busy_fraction:5.1f}% "
            f"reports={self.reports}"
        )


def run_cms_reset(
    mode: str = "timer",
    duration_ps: int = 20 * MILLISECONDS,
    window_ps: int = 1 * MILLISECONDS,
    threshold_packets: int = 60,
    flow_count: int = 400,
    mean_pps: float = 2_000_000.0,
    seed: int = 5,
    control_config: ControlPlaneConfig = ControlPlaneConfig(),
) -> CmsResult:
    """Run one reset mode and score detection quality."""
    network = build_linear(make_sume_switch(), switch_count=1)
    switch = network.switches["s0"]
    detector = HeavyHitterDetector(
        width=2048,
        depth=3,
        threshold_packets=threshold_packets,
        window_ps=window_ps,
        reset_mode=mode,
    )
    detector.install_route(H1_IP, 1)
    switch.load_program(detector)

    # Drive the switch via h0's link so arrival timing is realistic.
    h0 = network.hosts["h0"]
    workload = ZipfFlowMix(
        network.sim,
        h0.send,
        flow_count=flow_count,
        skew=1.2,
        mean_pps=mean_pps,
        seed=seed,
        name="zipf",
        dst_ip=H1_IP,  # routable toward h1
    )
    workload.start(at_ps=10_000)

    controller = ControlPlane(network.sim, control_config)
    if mode == "control":
        # The control plane tries to clear the sketch every window.
        ticker = PeriodicProcess(
            network.sim,
            window_ps,
            lambda: controller.submit(
                control_config.rtt_ps
                + detector.sketch.counter_count * control_config.per_entry_write_ps,
                detector.control_reset,
            ),
            name="cp-reset",
        )
        ticker.start()

    network.run(until_ps=duration_ps)

    # Ground truth: flows averaging at least the threshold per window.
    windows = max(1, duration_ps // window_ps)
    truth: Set[Tuple] = set()
    for index, count in workload.true_counts.items():
        if count / windows >= threshold_packets:
            flow = workload.flows[index]
            truth.add((flow.src_ip, flow.dst_ip, flow.sport, flow.dport))

    reported = detector.reported_flow_keys()
    true_positives = len(reported & truth)
    precision = true_positives / len(reported) if reported else 1.0
    recall = true_positives / len(truth) if truth else 1.0
    return CmsResult(
        mode=mode,
        precision=precision,
        recall=recall,
        resets_completed=detector.resets_performed,
        controller_busy_fraction=controller.utilization(duration_ps),
        reports=len(detector.reports),
    )


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for mode in ("timer", "control", "none"):
        register(ScenarioSpec(
            name=f"cms-reset/{mode}",
            runner="repro.experiments.cms_exp:run_cms_reset",
            params={"mode": mode},
            app="cms",
            tags=("experiment",),
            summary=f"CMS periodic reset via {mode}",
        ))


_register_scenarios()
