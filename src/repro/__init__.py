"""Event-driven packet processing — a behavioral reproduction.

Reproduces Ibanez, Antichi, Brebner, McKeown, *Event-Driven Packet
Processing* (HotNets 2019): an event-driven PISA architecture whose
programming model exposes the full set of data-plane events of the
paper's Table 1, together with the baseline PSA it generalizes, the
SUME Event Switch prototype, the paper's state-distribution machinery,
and the application classes of its Table 2.

Quickstart::

    from repro.sim import Simulator
    from repro.arch import SumeEventSwitch
    from repro.apps.microburst import MicroburstDetector

    sim = Simulator()
    switch = SumeEventSwitch(sim)
    switch.load_program(MicroburstDetector(num_regs=1024, flow_thresh_bytes=8000))
    ...

See ``examples/quickstart.py`` for the complete runnable version.
"""

__version__ = "1.0.0"
