"""Flow-decision cache: memoize the per-packet pipeline walk.
Design, purity rules, and knobs: [PERFORMANCE.md](PERFORMANCE.md#flow-cache).

Software switches amortize the parser → match-action → deparser walk
the same way real PISA targets do: memoize the pipeline's *net effect*
for a flow (the megaflow cache of OVS, the flow cache every P4 software
target grows) and let later packets of the same flow replay the decision
without re-running the control function.

Correctness is guarded two ways:

* **Versioning** — every :class:`repro.pisa.table.Table` (and every
  :class:`VersionedDict`, the route-table wrapper) bumps a generation
  counter on mutation.  A cached entry carries the generation vector it
  was recorded under; any mismatch evicts the entry before it can serve
  a stale decision.
* **Purity detection** — the first traversal of a flow runs under a
  lightweight recording harness: stateful externs get per-instance
  method shims, and the program context / standard metadata are wrapped
  in proxies that flag reads of time- or queue-dependent values.  Flows
  whose control touched read-modify-write state (register reads/writes,
  meter colors, sketch queries, PIFO operations, ``ctx.now_ps``, …) are
  marked **uncacheable** — their handler runs in full on every packet,
  so shared-register semantics (microburst, HULA, NetCache) are never
  short-circuited.  Blind-write externs (``Counter.count``,
  ``CountMinSketch.update``, ``BloomFilter.insert``, window
  ``accumulate``) are *recorded* and re-executed on every replay, so
  their state evolves exactly as if the walk had run.

The purity contract covers the extern data-plane methods listed in
:data:`RECORDABLE_METHODS` / :data:`IMPURE_METHODS`, program attribute
rebinding (``self.packets_seen += 1`` is detected by a before/after
fingerprint of ``vars(program)``), and header/metadata/packet-meta
mutation (captured as the replayed decision).  Handlers that mutate
plain unversioned containers in place (``self.some_dict[k] = v``)
without going through a :class:`~repro.pisa.table.Table` or
:class:`VersionedDict` are outside the contract — every program in this
repository keeps its mutable decision state in tables, versioned route
dicts, or externs.

The cache is per-switch, enabled by default, and disabled either with
the ``REPRO_FLOW_CACHE=0`` environment variable or the switch's
``flow_cache=False`` constructor argument.  Bus observers keep full
visibility: on the observed dispatch path every packet event is still
published and delivered as usual — only the behavioral walk itself is
answered from the memo, and the cache's own hit/miss/invalidation
counters are surfaced through ``repro events-stats``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from operator import attrgetter
from typing import Dict, Iterator, List, Tuple

from repro.packet.headers import field_getter
from repro.pisa.externs.counter import Counter
from repro.pisa.externs.meter import Meter
from repro.pisa.externs.pifo import PifoQueue
from repro.pisa.externs.register import Register
from repro.pisa.externs.sketch import BloomFilter, CountMinSketch
from repro.pisa.externs.window import ShiftRegister, SlidingWindow
from repro.pisa.metadata import StandardMetadata
from repro.pisa.table import Table

__all__ = [
    "FLOW_CACHE_ENV",
    "FlowCache",
    "FlowCacheStats",
    "VersionedDict",
    "collecting_caches",
    "env_enabled",
    "RECORDABLE_METHODS",
    "IMPURE_METHODS",
]

#: Environment toggle: ``0``/``false``/``off`` disables the cache.
FLOW_CACHE_ENV = "REPRO_FLOW_CACHE"


def env_enabled(default: bool = True) -> bool:
    """The process-wide default from :data:`FLOW_CACHE_ENV`."""
    raw = os.environ.get(FLOW_CACHE_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


#: Extern methods that are blind writes: no return value the control can
#: branch on, so they replay as recorded side-effect ops.
RECORDABLE_METHODS = {
    Counter: ("count",),
    CountMinSketch: ("update", "add_signed"),
    BloomFilter: ("insert",),
    ShiftRegister: ("accumulate",),
    SlidingWindow: ("accumulate", "shift_all"),
}

#: Extern methods whose result (or read-modify-write effect) depends on
#: state: touching any of these marks the flow uncacheable.
IMPURE_METHODS = {
    Register: ("read", "write", "add", "sub", "modify", "clear", "peek"),
    Counter: ("read", "read_all", "clear"),
    Meter: ("execute", "tokens"),
    CountMinSketch: ("query", "clear"),
    BloomFilter: ("contains", "clear"),
    ShiftRegister: ("shift", "window_sum", "window_max", "head"),
    SlidingWindow: ("window_sum", "rate_bps"),
    PifoQueue: ("push", "pop", "peek_rank", "drain"),
}

#: Sentinel stored for flows whose control touched impure state.
UNCACHEABLE = object()

#: Active collection scopes: every :class:`FlowCache` constructed while
#: a scope is open registers itself there, so instrumentation commands
#: (``repro events-stats``) can report per-switch cache counters for
#: experiments they did not build themselves.
_COLLECTORS: List[List["FlowCache"]] = []


@contextmanager
def collecting_caches() -> Iterator[List["FlowCache"]]:
    """Collect every :class:`FlowCache` created inside the block."""
    caches: List["FlowCache"] = []
    _COLLECTORS.append(caches)
    try:
        yield caches
    finally:
        _COLLECTORS.remove(caches)

#: Program-context attributes whose *read* poisons cacheability (they
#: are time-, queue-, or topology-dependent) and methods whose call is
#: an architectural side effect the replay could not reproduce.
_IMPURE_CTX_ATTRS = frozenset(
    {
        "now_ps",
        "link_up",
        "queue_depth_bytes",
        "configure_timer",
        "cancel_timer",
        "generate_packet",
        "raise_user_event",
        "notify_control_plane",
    }
)

#: StandardMetadata attributes whose read is time/queue dependent.
_IMPURE_META_READS = frozenset(
    {
        "ingress_timestamp_ps",
        "egress_timestamp_ps",
        "enq_qdepth_bytes",
        "deq_qdepth_bytes",
    }
)

#: C-level generation reader for the per-lookup version vector.
_GENERATION = attrgetter("generation")

#: Canonical flat-field readers now live with the header layouts.
_field_getter = field_getter


class VersionedDict(dict):
    """A dict whose mutations bump a generation counter.

    Programs keep route tables (and similar decision state read on the
    packet path but written from non-packet handlers — FRR flips routes
    from LINK_STATUS) in one of these so the flow cache can put the
    mapping in its generation vector.
    """

    __slots__ = ("generation",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.generation = 0

    # dict subclasses with __slots__ pickle their slot state via
    # __reduce_ex__ protocol 2+ item iteration; keep it explicit.
    def __reduce__(self):
        return (type(self), (dict(self),), {"generation": self.generation})

    def __setstate__(self, state) -> None:
        self.generation = state["generation"]

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.generation += 1

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self.generation += 1

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self.generation += 1

    def clear(self) -> None:
        super().clear()
        self.generation += 1

    def pop(self, *args):
        result = super().pop(*args)
        self.generation += 1
        return result

    def popitem(self):
        result = super().popitem()
        self.generation += 1
        return result

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self.generation += 1
        return result


class FlowCacheStats:
    """Hit/miss/invalidation accounting, surfaced by ``events-stats``."""

    __slots__ = ("hits", "misses", "uncacheable", "invalidations", "evictions")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.invalidations = 0
        self.evictions = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.uncacheable
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"FlowCacheStats(hits={self.hits}, misses={self.misses}, "
            f"uncacheable={self.uncacheable}, "
            f"invalidations={self.invalidations})"
        )


class _RecordingContext:
    """ProgramContext proxy: any target-service access poisons purity."""

    __slots__ = ("_real", "_rec")

    def __init__(self, real, rec: "_Recording") -> None:
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "_rec", rec)

    def __getattr__(self, name):
        if name in _IMPURE_CTX_ATTRS:
            self._rec.impure = True
        return getattr(self._real, name)


class _RecordingMeta:
    """StandardMetadata proxy flagging reads of time/queue fields.

    Writes and pure reads forward to the real metadata object, so the
    recorded traversal produces exactly the state a bare run would.
    """

    __slots__ = ("_real", "_rec")

    def __init__(self, real: StandardMetadata, rec: "_Recording") -> None:
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "_rec", rec)

    def __getattr__(self, name):
        if name in _IMPURE_META_READS:
            self._rec.impure = True
        return getattr(self._real, name)

    def __setattr__(self, name, value) -> None:
        setattr(self._real, name, value)

    # The mutators handlers actually call, forwarded explicitly so the
    # proxy costs one indirection instead of __getattr__ + descriptor.
    def drop(self) -> None:
        self._real.drop()

    def send_to_port(self, port: int) -> None:
        self._real.send_to_port(port)

    def send_to_cpu(self) -> None:
        self._real.send_to_cpu()

    def request_recirculation(self) -> None:
        self._real.request_recirculation()

    @property
    def dropped(self) -> bool:
        return self._real.dropped

    @property
    def to_cpu(self) -> bool:
        return self._real.to_cpu

    @property
    def recirculate(self) -> bool:
        return self._real.recirculate


class _ShimOp:
    """Per-instance extern-method shim recording one blind-write call."""

    __slots__ = ("rec", "extern", "name", "orig")

    def __init__(self, rec: "_Recording", extern, name: str) -> None:
        self.rec = rec
        self.extern = extern
        self.name = name
        self.orig = getattr(extern, name)

    def __call__(self, *args, **kwargs):
        self.rec.ops.append((self.extern, self.name, args, kwargs))
        return self.orig(*args, **kwargs)


class _ShimImpure:
    """Per-instance extern-method shim marking the flow uncacheable."""

    __slots__ = ("rec", "orig")

    def __init__(self, rec: "_Recording", extern, name: str) -> None:
        self.rec = rec
        self.orig = getattr(extern, name)

    def __call__(self, *args, **kwargs):
        self.rec.impure = True
        return self.orig(*args, **kwargs)


class _Recording:
    """State captured across one recorded traversal."""

    __slots__ = (
        "impure",
        "ops",
        "header_snapshot",
        "pkt_meta_snapshot",
        "payload_len",
        "vars_fingerprint",
        "shimmed",
        "genvec",
    )

    def __init__(self) -> None:
        self.impure = False
        self.ops: List[Tuple[object, str, tuple, dict]] = []
        self.header_snapshot: List[tuple] = []
        self.pkt_meta_snapshot: Dict[str, object] = {}
        self.payload_len = 0
        self.vars_fingerprint: Dict[str, object] = {}
        self.shimmed: List[Tuple[object, str]] = []
        self.genvec: tuple = ()


class _Entry:
    """One cached flow decision."""

    __slots__ = (
        "genvec",
        "egress_spec",
        "queue_id",
        "priority",
        "enq_meta",
        "deq_meta",
        "rewrites",
        "pkt_meta_writes",
        "payload_len",
        "ops",
    )


class FlowCache:
    """Per-switch memo of pipeline decisions keyed by flow.

    ``limit`` bounds the entry count; insertion order is recency order
    (hits refresh), so eviction drops the least recently used flow.
    """

    #: Default maximum number of cached flows per switch.
    DEFAULT_LIMIT = 4096

    __slots__ = (
        "sim",
        "limit",
        "stats",
        "_entries",
        "_deps",
        "_externs",
        "_program",
        "_registered",
        "name",
        "attach_epoch",
        "__weakref__",
    )

    def __init__(self, sim, limit: int = DEFAULT_LIMIT, name: str = "") -> None:
        if limit <= 0:
            raise ValueError(f"flow cache limit must be positive, got {limit}")
        self.sim = sim
        self.limit = limit
        self.name = name
        self.stats = FlowCacheStats()
        self._entries: Dict[tuple, object] = {}
        self._deps: List[object] = []
        self._externs: List[object] = []
        self._program = None
        self._registered = False
        self.attach_epoch = 0
        for collector in _COLLECTORS:
            collector.append(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, program) -> None:
        """Bind to a loaded program: discover versioned deps and externs."""
        self._program = program
        self._entries.clear()
        # Bumped so path-level consumers (the flow fastpath) can tell a
        # re-attach from a coincidentally equal fresh generation vector.
        self.attach_epoch += 1
        deps: List[object] = []
        externs: List[object] = []
        if program is not None:
            for _name, value in sorted(vars(program).items()):
                if isinstance(value, (Table, VersionedDict)):
                    deps.append(value)
            for _name, ext in program.externs():
                externs.append(ext)
        self._deps = deps
        self._externs = externs

    def clear(self) -> None:
        """Drop every cached flow (entries only; stats survive)."""
        self._entries.clear()

    def on_sim_reset(self) -> None:
        """Simulator.reset(): start cold *and* with zeroed counters."""
        self._entries.clear()
        self.stats.reset()

    def _ensure_registered(self) -> None:
        if not self._registered:
            self._registered = True
            self.sim.add_reset_listener(self)

    # Checkpoints drop the memo: a restored simulation starts cold and
    # rebuilds warm, so resumed runs never replay decisions recorded
    # under pre-checkpoint state.
    def __getstate__(self):
        return {
            "sim": self.sim,
            "limit": self.limit,
            "name": self.name,
            "program": self._program,
        }

    def __setstate__(self, state) -> None:
        self.sim = state["sim"]
        self.limit = state["limit"]
        self.name = state.get("name", "")
        self.stats = FlowCacheStats()
        self._entries = {}
        self._deps = []
        self._externs = []
        self._program = None
        self._registered = False
        self.attach_epoch = 0
        program = state["program"]
        if program is not None:
            self.attach(program)

    # ------------------------------------------------------------------
    # Key / generation vector
    # ------------------------------------------------------------------
    def flow_key(self, kind, pkt, meta) -> tuple:
        """The flow key: event kind, arrival port, and every header field.

        Keying on *all* fields (not a guessed 5-tuple) makes replay of
        absolute header rewrites sound: identical key implies identical
        input bits, so the recorded output bits are the walk's output.
        """
        parts: List[object] = [kind, meta.ingress_port, pkt.payload_len]
        for header in pkt.headers:
            cls = header.__class__
            parts.append(cls)
            parts.extend(_field_getter(cls)(header))
        return tuple(parts)

    def _generation_vector(self) -> tuple:
        return tuple(map(_GENERATION, self._deps))

    # ------------------------------------------------------------------
    # Lookup / replay
    # ------------------------------------------------------------------
    def lookup(self, key: tuple):
        """The valid entry for ``key``: an :class:`_Entry`,
        :data:`UNCACHEABLE`, or None (miss)."""
        entries = self._entries
        entry = entries.get(key)
        if entry is None:
            return None
        if entry is UNCACHEABLE:
            self.stats.uncacheable += 1
            return entry
        if entry.genvec != self._generation_vector():
            del entries[key]
            self.stats.invalidations += 1
            return None
        self.stats.hits += 1
        return entry

    def verify_entries(self) -> int:
        """Purge every cached entry whose generation vector is stale.

        Lookup already evicts lazily, so the cache never *serves* a stale
        decision; this eager sweep exists for invariant monitors
        (:class:`repro.faults.monitors.FlowCacheCoherenceMonitor`) that
        want to assert, right after a control-plane churn fault, that no
        pre-churn entry survives.  Returns the number of entries purged
        (each also counted in ``stats.invalidations``).
        """
        genvec = self._generation_vector()
        entries = self._entries
        stale = [
            key
            for key, entry in entries.items()
            if entry is not UNCACHEABLE and entry.genvec != genvec
        ]
        for key in stale:
            del entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def replay(self, entry: "_Entry", pkt, meta) -> None:
        """Apply a recorded decision to ``pkt``/``meta``."""
        rewrites = entry.rewrites
        if rewrites:
            headers = pkt.headers
            set_ = object.__setattr__
            for idx, pairs in rewrites:
                header = headers[idx]
                # Recorded values came from a real walk, so they fit
                # their declared widths — skip Header.set's range checks.
                for name, value in pairs:
                    set_(header, name, value)
        if entry.payload_len is not None:
            pkt.payload_len = entry.payload_len
        if entry.pkt_meta_writes:
            pkt.meta.update(entry.pkt_meta_writes)
        meta.egress_spec = entry.egress_spec
        meta.queue_id = entry.queue_id
        meta.priority = entry.priority
        if entry.enq_meta:
            meta.enq_meta.update(entry.enq_meta)
        if entry.deq_meta:
            meta.deq_meta.update(entry.deq_meta)
        for bound, args, kwargs in entry.ops:
            bound(*args, **kwargs)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, ctx, pkt, meta):
        """Start recording one traversal.

        Returns ``(recording, wrapped_ctx, wrapped_meta)``; the wrapped
        objects go to the handler, the recording to :meth:`commit`.
        """
        self._ensure_registered()
        rec = _Recording()
        rec.genvec = self._generation_vector()
        rec.payload_len = pkt.payload_len
        rec.header_snapshot = [
            _field_getter(h.__class__)(h) for h in pkt.headers
        ]
        rec.pkt_meta_snapshot = dict(pkt.meta)
        rec.vars_fingerprint = self._fingerprint()
        for extern in self._externs:
            for klass, names in RECORDABLE_METHODS.items():
                if isinstance(extern, klass):
                    for name in names:
                        if hasattr(extern, name):
                            setattr(extern, name, _ShimOp(rec, extern, name))
                            rec.shimmed.append((extern, name))
            for klass, names in IMPURE_METHODS.items():
                if isinstance(extern, klass):
                    for name in names:
                        if hasattr(extern, name) and not any(
                            e is extern and n == name for e, n in rec.shimmed
                        ):
                            setattr(extern, name, _ShimImpure(rec, extern, name))
                            rec.shimmed.append((extern, name))
        return rec, _RecordingContext(ctx, rec), _RecordingMeta(meta, rec)

    def abort(self, rec: "_Recording") -> None:
        """Tear down shims without storing (handler raised)."""
        self._unshim(rec)

    def commit(self, rec: "_Recording", key: tuple, pkt, meta) -> None:
        """Finish recording: store a replayable entry or the sentinel."""
        self._unshim(rec)
        stats = self.stats
        if (
            rec.impure
            or rec.genvec != self._generation_vector()
            or len(pkt.headers) != len(rec.header_snapshot)
            or rec.vars_fingerprint != self._fingerprint()
        ):
            # Impure control, self-mutating tables, structural header
            # change (push/pop), or program attribute mutation: the
            # walk must run for every packet of this flow.
            self._store(key, UNCACHEABLE)
            stats.uncacheable += 1
            return
        entry = _Entry()
        entry.genvec = rec.genvec
        entry.egress_spec = meta.egress_spec
        entry.queue_id = meta.queue_id
        entry.priority = meta.priority
        entry.enq_meta = dict(meta.enq_meta) if meta.enq_meta else None
        entry.deq_meta = dict(meta.deq_meta) if meta.deq_meta else None
        rewrites = []
        for idx, before in enumerate(rec.header_snapshot):
            header = pkt.headers[idx]
            after = _field_getter(header.__class__)(header)
            if after != before:
                fields = header.FIELDS
                changed = tuple(
                    (fields[i].name, after[i])
                    for i in range(len(fields))
                    if after[i] != before[i]
                )
                rewrites.append((idx, changed))
        entry.rewrites = tuple(rewrites)
        entry.payload_len = (
            pkt.payload_len if pkt.payload_len != rec.payload_len else None
        )
        if pkt.meta != rec.pkt_meta_snapshot:
            entry.pkt_meta_writes = {
                k: v
                for k, v in pkt.meta.items()
                if rec.pkt_meta_snapshot.get(k, _MISSING) != v
            }
            removed = rec.pkt_meta_snapshot.keys() - pkt.meta.keys()
            if removed:
                # Key deletion can't be replayed by a dict update.
                self._store(key, UNCACHEABLE)
                stats.uncacheable += 1
                return
        else:
            entry.pkt_meta_writes = None
        # _unshim ran above, so getattr binds the real extern methods;
        # pre-binding here saves a getattr per op per replayed packet.
        entry.ops = tuple(
            (getattr(extern, name), args, kwargs)
            for extern, name, args, kwargs in rec.ops
        )
        self._store(key, entry)
        stats.misses += 1

    def _store(self, key: tuple, value) -> None:
        entries = self._entries
        if key not in entries and len(entries) >= self.limit:
            entries.pop(next(iter(entries)))
            self.stats.evictions += 1
        entries[key] = value

    def _unshim(self, rec: "_Recording") -> None:
        for extern, name in rec.shimmed:
            try:
                delattr(extern, name)
            except AttributeError:
                pass

    def _fingerprint(self) -> Dict[str, object]:
        """Shallow fingerprint of program attributes.

        Scalars by value (catches ``self.packets_seen += 1``); sized
        containers by (id, len) — versioned/extern/table state is
        covered by the generation vector and the shims instead.
        """
        program = self._program
        fp: Dict[str, object] = {}
        if program is None:
            return fp
        for name, value in vars(program).items():
            if name.startswith("_"):
                continue
            if isinstance(value, (int, float, str, bool, type(None))):
                fp[name] = value
            elif isinstance(value, (Table, VersionedDict)):
                continue  # generation vector covers these
            elif isinstance(value, (dict, list, set, tuple)):
                fp[name] = (id(value), len(value))
            else:
                fp[name] = id(value)
        return fp

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def summary(self) -> Dict[str, object]:
        """One manifest row for ``state_summary()`` / ``events-stats``."""
        data: Dict[str, object] = {"entries": len(self._entries), "limit": self.limit}
        data.update(self.stats.as_dict())
        return data

    def __repr__(self) -> str:
        return (
            f"FlowCache(entries={len(self._entries)}/{self.limit}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


_MISSING = object()
