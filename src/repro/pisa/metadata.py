"""Standard metadata carried alongside each packet through a pipeline.

Mirrors the PSA/v1model standard metadata: ingress port, egress
specification, drop and recirculate flags, queueing information filled
in by the traffic manager, and the enqueue/dequeue metadata the paper's
programming model initializes in the ingress control ("initialize enq &
deq metadata for this pkt" in microburst.p4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Egress specification value meaning "drop the packet".
DROP_PORT = -1
#: Egress specification value meaning "send to the control plane (CPU)".
CPU_PORT = -2
#: Egress specification value meaning "recirculate to ingress".
RECIRCULATE_PORT = -3


@dataclass
class StandardMetadata:
    """Per-packet standard metadata.

    ``egress_spec`` is set by the ingress control block; the special
    values :data:`DROP_PORT`, :data:`CPU_PORT` and
    :data:`RECIRCULATE_PORT` steer the packet away from the output
    ports.  ``enq_meta`` / ``deq_meta`` are the user-initialized
    dictionaries that the traffic manager copies into the enqueue and
    dequeue events it fires for this packet.
    """

    ingress_port: int = 0
    egress_spec: Optional[int] = None
    egress_port: Optional[int] = None
    packet_length: int = 0
    priority: int = 0
    queue_id: int = 0
    ingress_timestamp_ps: int = 0
    egress_timestamp_ps: int = 0
    enq_qdepth_bytes: int = 0
    deq_qdepth_bytes: int = 0
    enq_meta: Dict[str, int] = field(default_factory=dict)
    deq_meta: Dict[str, int] = field(default_factory=dict)

    @property
    def dropped(self) -> bool:
        """True when the ingress control asked for a drop."""
        return self.egress_spec == DROP_PORT

    @property
    def to_cpu(self) -> bool:
        """True when the packet is punted to the control plane."""
        return self.egress_spec == CPU_PORT

    @property
    def recirculate(self) -> bool:
        """True when the packet should be recirculated to ingress."""
        return self.egress_spec == RECIRCULATE_PORT

    def drop(self) -> None:
        """Mark the packet for dropping."""
        self.egress_spec = DROP_PORT

    def send_to_port(self, port: int) -> None:
        """Forward the packet out of ``port``."""
        if port < 0:
            raise ValueError(f"port must be non-negative, got {port}")
        self.egress_spec = port

    def send_to_cpu(self) -> None:
        """Punt the packet to the control plane."""
        self.egress_spec = CPU_PORT

    def request_recirculation(self) -> None:
        """Ask the architecture to recirculate the packet to ingress."""
        self.egress_spec = RECIRCULATE_PORT


class MetadataPool:
    """Free-list of :class:`StandardMetadata` shells.

    Architectures construct one standard-metadata object per pipeline
    traversal; at hundreds of thousands of packets that dataclass
    construction dominates.  The pool recycles dead shells instead:
    :meth:`acquire` resets and returns a free shell (or builds a new
    one), :meth:`release` returns a shell whose traversal finished.

    ``release`` always detaches ``enq_meta`` / ``deq_meta`` rather than
    clearing them — the steering path aliases those dicts into
    ``pkt.meta`` for the traffic manager, so they can outlive the shell.
    """

    __slots__ = ("_free", "limit")

    def __init__(self, limit: int = 256) -> None:
        self._free: List[StandardMetadata] = []
        self.limit = limit

    def acquire(
        self,
        ingress_port: int = 0,
        packet_length: int = 0,
        ingress_timestamp_ps: int = 0,
        egress_port: Optional[int] = None,
        egress_timestamp_ps: int = 0,
        deq_qdepth_bytes: int = 0,
    ) -> StandardMetadata:
        """A reset metadata shell ready for one pipeline traversal."""
        free = self._free
        if free:
            meta = free.pop()
            meta.ingress_port = ingress_port
            meta.egress_spec = None
            meta.egress_port = egress_port
            meta.packet_length = packet_length
            meta.priority = 0
            meta.queue_id = 0
            meta.ingress_timestamp_ps = ingress_timestamp_ps
            meta.egress_timestamp_ps = egress_timestamp_ps
            meta.enq_qdepth_bytes = 0
            meta.deq_qdepth_bytes = deq_qdepth_bytes
            return meta
        return StandardMetadata(
            ingress_port=ingress_port,
            packet_length=packet_length,
            ingress_timestamp_ps=ingress_timestamp_ps,
            egress_port=egress_port,
            egress_timestamp_ps=egress_timestamp_ps,
            deq_qdepth_bytes=deq_qdepth_bytes,
        )

    def release(self, meta: StandardMetadata) -> None:
        """Return a dead shell to the pool.

        The caller must guarantee no other reference to ``meta`` exists
        (architectures verify this with a refcount check before calling).
        """
        if len(self._free) < self.limit:
            meta.enq_meta = {}
            meta.deq_meta = {}
            self._free.append(meta)

    def __len__(self) -> int:
        return len(self._free)
