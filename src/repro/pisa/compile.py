"""Compiled pipeline specialization: exec-generated dispatch and walks.

The interpreter dispatches every pipeline packet event through a chain
of per-packet decisions — handler lookup, shared-register thread
tagging, flow-cache plumbing, event accounting — and every table-driven
program re-walks its match-action graph per packet through ``apply``'s
generic machinery.  All of those decisions are fixed at program-load
time.  :func:`compile_switch` folds them: for each pipeline packet
event it exec-generates one flat dispatch function with the load-time
constants (handler, kind value, shared registers, elision pipeline)
closed over, and — when the program describes its control flow with a
:class:`PipelineSpec` — a fused pipeline *walk* with table lookups
inlined against the concrete match kinds and currently installed
entries, action bodies fused into the caller, and constant branches
folded away.

Invalidation reuses the generation vectors the flow-decision cache
(:mod:`repro.pisa.flowcache`) relies on: a compiled walk embeds the
``generation`` of every table it inlined and guards itself with plain
integer compares.  A control-plane mutation bumps a generation, the
guard trips on the next packet, and the walk regenerates against the
new entries (or falls back to the interpreted handler if the new
contents stopped being foldable).

The interpreter remains the reference semantics.  A compiled switch
must be *behaviorally byte-identical* — same counters, same drops, same
delivery order — and ``REPRO_PIPELINE_COMPILE=0`` (or the
``compile=False`` switch kwarg) restores the interpreted path
wholesale; the equivalence tests drive both and compare fingerprints.

Known limitation, by design: an action body that mutates a table of
the *same* pipeline mid-walk would be visible to the interpreter's
live lookups but not to an already-entered compiled walk.  Programs
with such actions must not provide a :class:`PipelineSpec`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.events import PIPELINE_PACKET_EVENTS, EventType
from repro.pisa.action import (
    DROP,
    FORWARD,
    NO_ACTION,
    SET_PRIORITY,
    TO_CPU,
    Action,
    ActionCall,
)
from repro.pisa.metadata import CPU_PORT, DROP_PORT
from repro.pisa.table import ExactTable, LpmTable, Table, TernaryTable

#: Environment toggle: ``0``/``false``/``off`` disables compilation.
PIPELINE_COMPILE_ENV = "REPRO_PIPELINE_COMPILE"


def env_enabled(default: bool = True) -> bool:
    """The process-wide default from :data:`PIPELINE_COMPILE_ENV`."""
    raw = os.environ.get(PIPELINE_COMPILE_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


class CompileSkip(Exception):
    """Raised during specialization when a spec is not compilable as
    written (unfoldable actions where a fold is required, unknown
    directive, heterogeneous value-folded table); the caller falls back
    to the interpreted handler."""


@dataclass
class PipelineSpec:
    """A program's compilable description of one packet-event control.

    ``source`` is the control flow as straight-line Python over ``pkt``
    and ``meta``, with table applications written as directives the
    specializer expands against the live tables:

    * ``%apply <table> <key-expr>[, <key-expr>...]`` — inline
      ``Table.apply(key).execute(pkt, meta)`` for an exact or ternary
      table, hit/miss counters included.
    * ``%lpm <table> <value-expr> -> <var>`` — inline
      ``LpmTable.lookup_value(value)`` (no counters, like the method),
      binding ``<var>`` to the entry's *folded value* or None.  Every
      entry's action must share one value-foldable action function.

    ``tables`` names the tables the directives refer to; their
    generations form the walk's invalidation guard.  ``names`` is extra
    namespace the source (and any registered fold bodies) may use —
    header classes, bound extern methods, the program itself.
    """

    source: str
    tables: Dict[str, Table]
    names: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Action folding registries
# ----------------------------------------------------------------------
# const fold: params -> source lines (the action body fused at the call
# site), or None when these particular params are not foldable.
_CONST_FOLDS: Dict[Callable, Callable[[Dict[str, int]], Optional[List[str]]]] = {}
# value fold: (params -> compact value or None, value-var -> body lines).
# Used where every entry of a table shares one action function, so the
# table collapses to a dict of folded values and one fused body.
_VALUE_FOLDS: Dict[
    Callable,
    Tuple[Callable[[Dict[str, int]], object], Callable[[str], List[str]]],
] = {}


def register_const_fold(
    action: Action, fold: Callable[[Dict[str, int]], Optional[List[str]]]
) -> None:
    """Register the fused source body for ``action`` (keyed by its fn)."""
    _CONST_FOLDS[action.fn] = fold


def register_value_fold(
    action: Action,
    to_value: Callable[[Dict[str, int]], object],
    body: Callable[[str], List[str]],
) -> None:
    """Register a value fold: ``to_value`` compresses bound params into
    the per-entry value stored in the specialized lookup structure,
    ``body`` emits the shared fused body reading that value."""
    _VALUE_FOLDS[action.fn] = (to_value, body)


def _fold_port(params: Dict[str, int]) -> Optional[List[str]]:
    port = params.get("port")
    if isinstance(port, int) and port >= 0:
        return [f"meta.egress_spec = {port}"]
    return None


def _fold_priority(params: Dict[str, int]) -> Optional[List[str]]:
    priority = params.get("priority")
    if isinstance(priority, int):
        return [f"meta.priority = {priority}"]
    return None


register_const_fold(NO_ACTION, lambda params: [])
register_const_fold(DROP, lambda params: [f"meta.egress_spec = {DROP_PORT}"])
register_const_fold(TO_CPU, lambda params: [f"meta.egress_spec = {CPU_PORT}"])
register_const_fold(FORWARD, _fold_port)
register_const_fold(SET_PRIORITY, _fold_priority)


# ----------------------------------------------------------------------
# Walk generation (the table/action-graph specializer)
# ----------------------------------------------------------------------
def _split_key(raw: str) -> List[str]:
    """Split a directive key on top-level commas (exprs may not contain
    commas themselves; specs keep key expressions simple by contract)."""
    parts = [p.strip() for p in raw.split(",")]
    return [p for p in parts if p]


def _action_lines(
    call: ActionCall, ns: Dict[str, object], tag: str
) -> List[str]:
    """The fused body for one bound action: its registered const fold,
    or a direct ``execute`` on the bound call as the generic escape."""
    fold = _CONST_FOLDS.get(call.action.fn)
    if fold is not None:
        lines = fold(call.params)
        if lines is not None:
            return list(lines)
    ns[tag] = call
    return [f"{tag}.execute(pkt, meta)"]


def _expand_ternary(
    uid: int, table: TernaryTable, keys: List[str], ns: Dict[str, object]
) -> List[str]:
    """A priority-ordered ternary match as an if/elif chain of masked
    integer compares, zero-mask terms folded out."""
    tvar = f"_T{uid}"
    ns[tvar] = table
    arity = len(keys)
    branches: List[Tuple[str, List[str]]] = []
    for i, (values, masks, _priority, action) in enumerate(table._entries):
        if len(values) != arity:
            continue  # can never match this call site's key arity
        terms = [
            f"({keys[j]} & {masks[j]}) == {values[j]}"
            for j in range(arity)
            if masks[j] != 0  # zero masks match anything: folded out
        ]
        cond = " and ".join(terms) or "True"
        branches.append((cond, _action_lines(action, ns, f"_A{uid}_{i}")))
    miss = [f"{tvar}.miss_count += 1"]
    miss += _action_lines(table.default_action, ns, f"_D{uid}") or ["pass"]
    if not branches:
        return miss
    lines: List[str] = []
    for i, (cond, body) in enumerate(branches):
        lines.append(("if " if i == 0 else "elif ") + cond + ":")
        lines.append(f"    {tvar}.hit_count += 1")
        lines += [f"    {ln}" for ln in (body or ["pass"])]
    lines.append("else:")
    lines += [f"    {ln}" for ln in miss]
    return lines


def _expand_exact(
    uid: int, table: ExactTable, keys: List[str], ns: Dict[str, object]
) -> List[str]:
    """An exact match as one dict probe.  Homogeneous value-foldable
    tables collapse to folded-value dicts with one fused body; anything
    else probes the live entry dict and executes the bound action."""
    tvar, xvar = f"_T{uid}", f"_X{uid}"
    ns[tvar] = table
    key_expr = f"({', '.join(keys)},)"
    fns = {call.action.fn for call in table._entries.values()}
    folded = None
    if len(fns) == 1:
        fold = _VALUE_FOLDS.get(next(iter(fns)))
        if fold is not None:
            to_value, body = fold
            values = {k: to_value(c.params) for k, c in table._entries.items()}
            if all(v is not None for v in values.values()):
                folded = (values, body)
    vvar = f"_v{uid}"
    miss = [f"    {tvar}.miss_count += 1"]
    miss += [
        f"    {ln}"
        for ln in (_action_lines(table.default_action, ns, f"_D{uid}") or ["pass"])
    ]
    if folded is not None:
        values, body = folded
        ns[xvar] = values
        return [
            f"{vvar} = {xvar}.get({key_expr})",
            f"if {vvar} is None:",
            *miss,
            "else:",
            f"    {tvar}.hit_count += 1",
            *[f"    {ln}" for ln in body(vvar)],
        ]
    ns[xvar] = table._entries  # live dict: guard recompiles on mutation
    return [
        f"{vvar} = {xvar}.get({key_expr})",
        f"if {vvar} is None:",
        *miss,
        "else:",
        f"    {tvar}.hit_count += 1",
        f"    {vvar}.execute(pkt, meta)",
    ]


def _expand_lpm(
    uid: int, table: LpmTable, value_expr: str, var: str, ns: Dict[str, object]
) -> List[str]:
    """An LPM lookup as a chain of masked dict probes over folded-value
    buckets, longest prefix first; ``var`` binds the folded value."""
    entries = [
        call for _len, _mask, bucket in table._ordered for call in bucket.values()
    ]
    fns = {call.action.fn for call in entries}
    if len(fns) > 1:
        raise CompileSkip(f"lpm table {table.name!r} mixes action kinds")
    if entries:
        fold = _VALUE_FOLDS.get(next(iter(fns)))
        if fold is None:
            raise CompileSkip(f"lpm table {table.name!r} has no value fold")
        to_value = fold[0]
    if not entries:
        return [f"{var} = None"]
    lines: List[str] = [f"_lv{uid} = {value_expr}"]
    for j, (_length, mask, bucket) in enumerate(table._ordered):
        bvar = f"_L{uid}_{j}"
        folded_bucket = {}
        for k, call in bucket.items():
            value = to_value(call.params)
            if value is None:
                raise CompileSkip(f"lpm entry in {table.name!r} not foldable")
            folded_bucket[k] = value
        ns[bvar] = folded_bucket
        probe = f"{bvar}.get(_lv{uid} & {mask})"
        if j == 0:
            lines.append(f"{var} = {probe}")
        else:
            lines.append(f"if {var} is None:")
            lines.append(f"    {var} = {probe}")
    return lines


def _expand_directive(
    uid: int, line: str, spec: PipelineSpec, ns: Dict[str, object]
) -> List[str]:
    body = line.strip()[1:]  # past the leading '%'
    head, _, rest = body.partition(" ")
    rest = rest.strip()
    if head == "apply":
        tname, _, raw_keys = rest.partition(" ")
        table = spec.tables.get(tname)
        keys = _split_key(raw_keys)
        if table is None or not keys:
            raise CompileSkip(f"bad %apply directive: {line.strip()!r}")
        if isinstance(table, TernaryTable):
            return _expand_ternary(uid, table, keys, ns)
        if isinstance(table, ExactTable):
            return _expand_exact(uid, table, keys, ns)
        raise CompileSkip(f"%apply on unsupported table kind: {type(table).__name__}")
    if head == "lpm":
        tname, _, tail = rest.partition(" ")
        expr, arrow, var = tail.rpartition("->")
        table = spec.tables.get(tname)
        if table is None or not arrow or not isinstance(table, LpmTable):
            raise CompileSkip(f"bad %lpm directive: {line.strip()!r}")
        return _expand_lpm(uid, table, expr.strip(), var.strip(), ns)
    raise CompileSkip(f"unknown directive: {line.strip()!r}")


def _generate_walk(spec: PipelineSpec, stale: Callable) -> Callable:
    """Exec-generate the fused walk for ``spec`` against the tables'
    current entries, guarded by their current generations."""
    ns: Dict[str, object] = dict(spec.names)
    ns["_stale"] = stale
    guard_terms = []
    for i, (tname, table) in enumerate(sorted(spec.tables.items())):
        ns[f"_G{i}"] = table
        guard_terms.append(f"_G{i}.generation != {table.generation}")
    body: List[str] = []
    uid = 0
    for line in spec.source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        indent = line[: len(line) - len(line.lstrip())]
        if stripped.startswith("%"):
            body += [indent + ln for ln in _expand_directive(uid, line, spec, ns)]
            uid += 1
        else:
            body.append(line)
    guard = " or ".join(guard_terms)
    lines = ["def _walk(ctx, pkt, meta):"]
    if guard:
        lines.append(f"    if {guard}:")
        lines.append("        return _stale(ctx, pkt, meta)")
    lines += ["    " + ln for ln in body] or ["    pass"]
    src = "\n".join(lines)
    exec(src, ns)  # noqa: S102 - the specializer's code generator
    fn = ns["_walk"]
    fn.__repro_source__ = src
    return fn


def _make_walk(program, kind: EventType, cell: List) -> Optional[Callable]:
    """The compiled walk for ``kind`` (self-invalidating via ``cell``),
    or None when the program offers no compilable spec."""
    spec_fn = getattr(program, "pipeline_spec", None)
    if spec_fn is None:
        return None
    spec = spec_fn(kind)
    if spec is None:
        return None

    def _stale(ctx, pkt, meta):
        # A guarded generation moved: regenerate against the mutated
        # tables, or fall back to the interpreted handler if the new
        # contents stopped being foldable.  The swap through ``cell``
        # is what every compiled caller reads, so one trip rebinds all.
        new: Optional[Callable] = None
        fresh = spec_fn(kind)
        if fresh is not None:
            try:
                new = _generate_walk(fresh, _stale)
            except CompileSkip:
                new = None
        if new is None:
            new = program.handler_for(kind)
        cell[0] = new
        return new(ctx, pkt, meta)

    try:
        return _generate_walk(spec, _stale)
    except CompileSkip:
        return None


# ----------------------------------------------------------------------
# Dispatch generation (per-event flat dispatch functions)
# ----------------------------------------------------------------------
def _gen_dispatch(switch, kind: EventType, cell: List) -> Callable:
    """One flat dispatch function for ``kind`` with the interpreter's
    per-packet decisions folded: handler presence, shared-register
    tagging (omitted entirely when the program has none), elision
    pipeline, and the kind's accounting all become closed-over
    constants.  ``switch.flow_cache`` stays a live read so cache
    enable/disable needs no recompile."""
    from repro.pisa.flowcache import UNCACHEABLE

    program = switch.program
    fn = program.handler_for(kind)
    ns: Dict[str, object] = {
        "fired": switch.bus.fired,
        "handled": switch.bus.handled,
        "KIND": kind,
        "switch": switch,
        "ctx": switch.ctx,
        "cell": cell,
        "fn": fn,
        "UNCACHEABLE": UNCACHEABLE,
    }
    if fn is None:
        # No handler for this kind: the whole dispatch is one counter
        # bump.  A plain closure is identical to what exec() would
        # build, and skipping the compile keeps handler-less kinds
        # (EGRESS on most L3 programs) free on cold switches.
        fired = switch.bus.fired

        def _dispatch(pkt, meta, _fired=fired, _kind=kind):
            _fired[_kind] += 1

        _dispatch.__repro_source__ = "def _dispatch(pkt, meta):\n    fired[KIND] += 1"
        return _dispatch
    regs = switch._shared_regs
    if regs:
        ns["_st"] = switch._set_thread
        ns["KV"] = kind.value
        enter, leave = ["_st(KV)", "try:"], ["finally:", "    _st(None)"]
    else:
        enter, leave = [], []

    def guarded(call: str) -> List[str]:
        if not regs:
            return [call]
        return ["_st(KV)", "try:", f"    {call}", "finally:", "    _st(None)"]

    pipeline = switch._pipeline_for_kind(kind)
    if pipeline is not None:
        ns["pipeline"] = pipeline
        elide = ["pipeline.walks_elided += 1"]
    else:
        elide = []
    lines = [
        "def _dispatch(pkt, meta):",
        "    fired[KIND] += 1",
        "    cache = switch.flow_cache",
        "    if cache is None:",
        *[f"        {ln}" for ln in guarded("cell[0](ctx, pkt, meta)")],
        "        handled[KIND] += 1",
        "        return",
        "    key = cache.flow_key(KIND, pkt, meta)",
        "    entry = cache.lookup(key)",
        "    if entry is not None:",
        "        if entry is UNCACHEABLE:",
        *[f"            {ln}" for ln in guarded("cell[0](ctx, pkt, meta)")],
        "        else:",
        "            cache.replay(entry, pkt, meta)",
        *[f"            {ln}" for ln in elide],
        "        handled[KIND] += 1",
        "        return",
        "    rec, rctx, rmeta = cache.begin(ctx, pkt, meta)",
        *[f"    {ln}" for ln in enter],
        f"    {'    ' if regs else ''}try:",
        f"    {'    ' if regs else ''}    fn(rctx, pkt, rmeta)",
        f"    {'    ' if regs else ''}except BaseException:",
        f"    {'    ' if regs else ''}    cache.abort(rec)",
        f"    {'    ' if regs else ''}    raise",
        *[f"    {ln}" for ln in leave],
        "    cache.commit(rec, key, pkt, meta)",
        "    handled[KIND] += 1",
    ]
    src = "\n".join(lines)
    exec(src, ns)
    dispatch = ns["_dispatch"]
    dispatch.__repro_source__ = src
    return dispatch


def _compile_kind(switch, kind: EventType) -> Callable:
    """Generate the specialized dispatch function for one event kind."""
    program = switch.program
    fn = program.handler_for(kind)
    cell: List = [None]
    if fn is not None:
        walk = _make_walk(program, kind, cell)
        cell[0] = walk if walk is not None else fn
    return _gen_dispatch(switch, kind, cell)


def compile_switch(switch) -> Optional[Dict[EventType, Callable]]:
    """Specialize ``switch``'s packet-event dispatch for its loaded
    program: one exec-generated dispatch function per pipeline packet
    event, each driving the program's fused walk when it has one (the
    interpreted handler otherwise).  Returns None with no program.

    Generation is lazy per kind: each entry starts as a trampoline that
    compiles the real function on that kind's first packet and swaps
    itself out of the dict — a switch that only ever sees INGRESS
    packets pays for one generated function, not four.  (This matters
    at fleet scale: a sharded fat tree compiles dozens of switches
    whose per-switch packet counts are small.)"""
    if switch.program is None:
        return None
    dispatch: Dict[EventType, Callable] = {}

    def lazy(kind: EventType) -> Callable:
        def trampoline(pkt, meta):
            fn = _compile_kind(switch, kind)
            dispatch[kind] = fn
            return fn(pkt, meta)

        return trampoline

    for kind in sorted(PIPELINE_PACKET_EVENTS, key=lambda k: k.value):
        dispatch[kind] = lazy(kind)
    return dispatch
