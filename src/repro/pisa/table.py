"""Match-action tables: exact, longest-prefix-match, and ternary.

Tables are populated by the control plane (:mod:`repro.control.plane`)
and applied by control blocks during packet processing.  ``apply``
returns the matching entry's bound action (or the default action) which
the caller then executes — the split mirrors P4's ``table.apply()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.pisa.action import NO_ACTION, ActionCall


@dataclass
class TableEntry:
    """One table entry: a match key plus the bound action.

    The key's meaning depends on the table kind: a plain tuple for exact
    tables, ``(prefix, prefix_len)`` for LPM, ``(value, mask, priority)``
    for ternary.
    """

    key: Tuple
    action: ActionCall

    def __repr__(self) -> str:
        return f"TableEntry({self.key} -> {self.action})"


#: Sentinel distinguishing "not cached" from a cached miss (None).
_UNCACHED = object()


class Table:
    """Base class with entry bookkeeping and the default action.

    ``apply`` results are memoized in a small LRU cache so repeated
    lookups with the same key (the common case for per-flow tables on
    the packet fast path) skip the subclass's match logic.  Any entry
    mutation (:meth:`insert` / :meth:`remove` in subclasses) or
    :meth:`set_default` invalidates the cache and bumps
    :attr:`generation` — the version the flow-decision cache
    (:mod:`repro.pisa.flowcache`) records in its generation vectors, so
    a table change evicts every dependent cached flow before the next
    packet can see a stale decision.

    Swapping an entry's *action* in place must go through
    :meth:`update_action` (subclasses) so it invalidates too: mutating
    the stored :class:`ActionCall` object directly leaves both the LRU
    cache and the flow cache serving the old behavior.
    """

    #: Maximum number of keys memoized per table.
    CACHE_LIMIT = 256

    def __init__(self, name: str, max_entries: int = 1024) -> None:
        if max_entries <= 0:
            raise ValueError(f"table size must be positive, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self.default_action: ActionCall = NO_ACTION.bind()
        self.hit_count = 0
        self.miss_count = 0
        #: Bumped on every mutation; version stamp for external caches.
        self.generation = 0
        # key -> lookup result (None caches a miss); insertion order is
        # recency order — hits reinsert, eviction pops the oldest.
        self._cache: Dict[Tuple, Optional[ActionCall]] = {}

    def _mutated(self) -> None:
        """Entry/default change: drop memos and advance the generation."""
        self._cache.clear()
        self.generation += 1

    def invalidate_cache(self) -> None:
        """Drop all memoized lookup results (and version the change)."""
        self._mutated()

    def set_default(self, action: ActionCall) -> None:
        """Set the action returned on a miss."""
        self.default_action = action
        self._mutated()

    def entry_count(self) -> int:
        """Number of installed entries."""
        raise NotImplementedError

    def _check_capacity(self) -> None:
        if self.entry_count() >= self.max_entries:
            raise OverflowError(
                f"table {self.name!r} is full ({self.max_entries} entries)"
            )

    def lookup(self, key: Tuple) -> Optional[ActionCall]:
        """Return the matching action or None (no default, no counters)."""
        raise NotImplementedError

    def __getstate__(self):
        # The lookup memo is per-process scratch, not table state: it
        # depends on which packets happened to traverse (and whether a
        # compiled walk bypassed `apply` entirely), so checkpoints must
        # not capture it or equivalent switches pickle differently.
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def apply(self, key: Tuple) -> ActionCall:
        """P4-style apply: returns the matched or default action."""
        cache = self._cache
        action = cache.pop(key, _UNCACHED)
        if action is _UNCACHED:
            action = self.lookup(key)
            if len(cache) >= self.CACHE_LIMIT:
                cache.pop(next(iter(cache)))
        cache[key] = action
        if action is None:
            self.miss_count += 1
            return self.default_action
        self.hit_count += 1
        return action

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self.entry_count()}/{self.max_entries} entries)"
        )


class ExactTable(Table):
    """Exact-match table: keys are tuples compared for equality."""

    def __init__(self, name: str, max_entries: int = 1024) -> None:
        super().__init__(name, max_entries)
        self._entries: Dict[Tuple, ActionCall] = {}

    def insert(self, key: Tuple, action: ActionCall) -> None:
        """Install or overwrite the entry for ``key``."""
        if key not in self._entries:
            self._check_capacity()
        self._entries[key] = action
        self._mutated()

    def remove(self, key: Tuple) -> None:
        """Remove the entry for ``key``; KeyError if absent."""
        del self._entries[key]
        self._mutated()

    def update_action(self, key: Tuple, action: ActionCall) -> None:
        """Replace the action of an existing entry; KeyError if absent.

        The control plane's path for changing what an installed entry
        *does* (e.g. re-pointing a nexthop).  Unlike mutating the bound
        :class:`ActionCall` in place, this invalidates the lookup memo
        and bumps the generation counter.
        """
        if key not in self._entries:
            raise KeyError(f"table {self.name!r} has no entry {key!r}")
        self._entries[key] = action
        self._mutated()

    def entry_count(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple) -> Optional[ActionCall]:
        return self._entries.get(key)


class LpmTable(Table):
    """Longest-prefix-match table over a single integer field.

    Keys at insert are ``(prefix, prefix_len)`` over ``width_bits``-wide
    values; lookup takes the full value and picks the longest matching
    prefix.
    """

    def __init__(self, name: str, width_bits: int = 32, max_entries: int = 1024) -> None:
        super().__init__(name, max_entries)
        self.width_bits = width_bits
        # prefix_len -> {masked_prefix: action}
        self._by_length: Dict[int, Dict[int, ActionCall]] = {}
        # (prefix_len, mask, bucket) descending — rebuilt on mutation so
        # lookups don't re-sort and re-derive masks per packet.
        self._ordered: List[Tuple[int, int, Dict[int, ActionCall]]] = []

    def _reindex(self) -> None:
        self._ordered = [
            (length, self._mask(length), self._by_length[length])
            for length in sorted(self._by_length, reverse=True)
        ]
        self._mutated()

    def insert(self, prefix: int, prefix_len: int, action: ActionCall) -> None:
        """Install a ``prefix/prefix_len`` entry."""
        if not 0 <= prefix_len <= self.width_bits:
            raise ValueError(
                f"prefix length {prefix_len} out of range [0, {self.width_bits}]"
            )
        mask = self._mask(prefix_len)
        bucket = self._by_length.setdefault(prefix_len, {})
        key = prefix & mask
        if key not in bucket:
            self._check_capacity()
        bucket[key] = action
        self._reindex()

    def remove(self, prefix: int, prefix_len: int) -> None:
        """Remove a ``prefix/prefix_len`` entry; KeyError if absent."""
        mask = self._mask(prefix_len)
        del self._by_length[prefix_len][prefix & mask]
        self._reindex()

    def update_action(self, prefix: int, prefix_len: int, action: ActionCall) -> None:
        """Replace the action of an existing prefix entry; KeyError if absent."""
        mask = self._mask(prefix_len)
        bucket = self._by_length[prefix_len]
        key = prefix & mask
        if key not in bucket:
            raise KeyError(f"table {self.name!r} has no entry {prefix}/{prefix_len}")
        bucket[key] = action
        self._reindex()

    def _mask(self, prefix_len: int) -> int:
        if prefix_len == 0:
            return 0
        return ((1 << prefix_len) - 1) << (self.width_bits - prefix_len)

    def entry_count(self) -> int:
        return sum(len(bucket) for bucket in self._by_length.values())

    def lookup(self, key: Tuple) -> Optional[ActionCall]:
        (value,) = key
        for _length, mask, bucket in self._ordered:
            action = bucket.get(value & mask)
            if action is not None:
                return action
        return None

    def lookup_value(self, value: int) -> Optional[ActionCall]:
        """Convenience single-value lookup."""
        return self.lookup((value,))

    def apply_value(self, value: int) -> ActionCall:
        """Convenience single-value apply."""
        return self.apply((value,))


class TernaryTable(Table):
    """Ternary table: entries carry (value, mask, priority) per field.

    Lower priority wins among multiple matches, as in hardware TCAMs
    where entries are ordered.
    """

    def __init__(self, name: str, max_entries: int = 1024) -> None:
        super().__init__(name, max_entries)
        # Each entry: (values, masks, priority, action)
        self._entries: List[Tuple[Tuple[int, ...], Tuple[int, ...], int, ActionCall]] = []

    def insert(
        self,
        values: Tuple[int, ...],
        masks: Tuple[int, ...],
        priority: int,
        action: ActionCall,
    ) -> None:
        """Install a ternary entry with explicit priority."""
        if len(values) != len(masks):
            raise ValueError("values and masks must have equal arity")
        self._check_capacity()
        self._entries.append(
            (tuple(v & m for v, m in zip(values, masks)), tuple(masks), priority, action)
        )
        self._entries.sort(key=lambda e: e[2])
        self._mutated()

    def remove(self, values: Tuple[int, ...], masks: Tuple[int, ...]) -> None:
        """Remove the entry matching ``values``/``masks``; KeyError if absent."""
        masked = tuple(v & m for v, m in zip(values, masks))
        for i, (evalues, emasks, _priority, _action) in enumerate(self._entries):
            if evalues == masked and emasks == tuple(masks):
                del self._entries[i]
                self._mutated()
                return
        raise KeyError(f"table {self.name!r} has no entry {values!r}/{masks!r}")

    def update_action(
        self,
        values: Tuple[int, ...],
        masks: Tuple[int, ...],
        action: ActionCall,
    ) -> None:
        """Replace the action of an existing ternary entry; KeyError if absent."""
        masked = tuple(v & m for v, m in zip(values, masks))
        for i, (evalues, emasks, priority, _action) in enumerate(self._entries):
            if evalues == masked and emasks == tuple(masks):
                self._entries[i] = (evalues, emasks, priority, action)
                self._mutated()
                return
        raise KeyError(f"table {self.name!r} has no entry {values!r}/{masks!r}")

    def entry_count(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple) -> Optional[ActionCall]:
        for values, masks, _priority, action in self._entries:
            if len(key) != len(values):
                continue
            if all((k & m) == v for k, v, m in zip(key, values, masks)):
                return action
        return None
