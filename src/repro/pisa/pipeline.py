"""A behavioral match-action pipeline.

A :class:`Pipeline` wraps a control function (the P4 ``control`` block)
with a fixed processing latency — ``stage_count`` clock cycles — and
throughput accounting.  Architectures instantiate one pipeline per
control block they expose (ingress, egress, and in the event-driven
logical model one per event kind).
"""

from __future__ import annotations

from typing import Callable

from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import clock_period_ps

ControlFn = Callable[[Packet, StandardMetadata], None]


class Pipeline:
    """A control block with latency and throughput bookkeeping.

    ``control`` is invoked once per packet (behaviorally instantaneous);
    :attr:`latency_ps` reports how long a packet would spend traversing
    the physical stages, which architectures add to packet timestamps.
    One packet can enter per clock cycle — the pipeline is feed-forward
    and fully pipelined, so throughput is one packet per cycle
    regardless of depth.
    """

    def __init__(
        self,
        name: str,
        control: ControlFn,
        stage_count: int = 8,
        clock_mhz: float = 200.0,
    ) -> None:
        if stage_count <= 0:
            raise ValueError(f"stage count must be positive, got {stage_count}")
        self.name = name
        self.control = control
        self.stage_count = stage_count
        self.clock_mhz = clock_mhz
        self.packets_processed = 0
        # Traversals answered from the flow-decision cache: the packet
        # still crossed the pipeline (latency and packets_processed are
        # unchanged — the hardware walk always happens), but the
        # behavioral match-action walk was replayed from the memo.
        self.walks_elided = 0

    @property
    def cycle_ps(self) -> int:
        """Clock period in picoseconds."""
        return clock_period_ps(self.clock_mhz)

    @property
    def latency_ps(self) -> int:
        """Traversal latency: one cycle per stage."""
        return self.stage_count * self.cycle_ps

    def process(self, pkt: Packet, meta: StandardMetadata) -> None:
        """Run the control block on one packet."""
        self.packets_processed += 1
        self.control(pkt, meta)

    def __repr__(self) -> str:
        return (
            f"Pipeline({self.name!r}, stages={self.stage_count}, "
            f"clock={self.clock_mhz}MHz, processed={self.packets_processed})"
        )
