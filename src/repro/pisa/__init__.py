"""PISA substrate: match-action tables, pipelines, and externs.

This subpackage models the programmable parts of a Protocol Independent
Switch Architecture target: the match-action tables (exact / LPM /
ternary), the pipeline of stages a control block compiles to, and the
stateful externs the architecture exposes to P4 programs (registers,
counters, meters, sketches, PIFO queues, and the paper's new
``shared_register``).
"""

from repro.pisa.action import Action, ActionCall
from repro.pisa.metadata import StandardMetadata
from repro.pisa.pipeline import Pipeline
from repro.pisa.stage import Stage
from repro.pisa.table import (
    ExactTable,
    LpmTable,
    Table,
    TableEntry,
    TernaryTable,
)
from repro.pisa.externs.register import Register, SharedRegister
from repro.pisa.externs.counter import Counter
from repro.pisa.externs.meter import Meter, MeterColor
from repro.pisa.externs.sketch import BloomFilter, CountMinSketch
from repro.pisa.externs.pifo import PifoQueue
from repro.pisa.externs.window import ShiftRegister, SlidingWindow

__all__ = [
    "Action",
    "ActionCall",
    "StandardMetadata",
    "Pipeline",
    "Stage",
    "Table",
    "TableEntry",
    "ExactTable",
    "LpmTable",
    "TernaryTable",
    "Register",
    "SharedRegister",
    "Counter",
    "Meter",
    "MeterColor",
    "CountMinSketch",
    "BloomFilter",
    "PifoQueue",
    "ShiftRegister",
    "SlidingWindow",
]
