"""A physical match-action stage.

PISA hardware lays control logic out across a fixed number of physical
stages; stateful externs live in exactly one stage's local memory and
are only reachable from that stage (the root of the paper's §4 state-
distribution problem).  :class:`Stage` models that placement: it owns a
set of tables and externs, and the cycle-level simulator in
:mod:`repro.state.cyclesim` charges memory-port usage per stage.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pisa.table import Table


class Stage:
    """One physical pipeline stage with local tables and extern memory.

    ``memory_ports`` is the number of simultaneous register accesses the
    stage's local SRAM can serve per clock cycle (1 for single-ported
    memory — the high-line-rate case the paper's §4 designs around).
    """

    def __init__(self, index: int, memory_ports: int = 1) -> None:
        if memory_ports <= 0:
            raise ValueError(f"memory ports must be positive, got {memory_ports}")
        self.index = index
        self.memory_ports = memory_ports
        self.tables: Dict[str, Table] = {}
        self.externs: Dict[str, object] = {}

    def place_table(self, table: Table) -> None:
        """Place a table in this stage."""
        if table.name in self.tables:
            raise ValueError(f"stage {self.index} already has table {table.name!r}")
        self.tables[table.name] = table

    def place_extern(self, name: str, extern: object) -> None:
        """Place a stateful extern in this stage's local memory."""
        if name in self.externs:
            raise ValueError(f"stage {self.index} already has extern {name!r}")
        self.externs[name] = extern

    def __repr__(self) -> str:
        return (
            f"Stage({self.index}, tables={list(self.tables)}, "
            f"externs={list(self.externs)}, ports={self.memory_ports})"
        )


class StageAllocator:
    """Assigns tables and externs to stages in declaration order.

    A simple first-fit allocator standing in for a P4 compiler's
    placement phase: each stage takes at most ``tables_per_stage`` tables
    and ``externs_per_stage`` externs.
    """

    def __init__(
        self,
        stage_count: int,
        tables_per_stage: int = 4,
        externs_per_stage: int = 4,
        memory_ports: int = 1,
    ) -> None:
        if stage_count <= 0:
            raise ValueError(f"stage count must be positive, got {stage_count}")
        self.stages: List[Stage] = [
            Stage(i, memory_ports=memory_ports) for i in range(stage_count)
        ]
        self.tables_per_stage = tables_per_stage
        self.externs_per_stage = externs_per_stage

    def allocate_table(self, table: Table) -> Stage:
        """Place ``table`` in the first stage with a free table slot."""
        for stage in self.stages:
            if len(stage.tables) < self.tables_per_stage:
                stage.place_table(table)
                return stage
        raise OverflowError(f"no stage has room for table {table.name!r}")

    def allocate_extern(self, name: str, extern: object) -> Stage:
        """Place ``extern`` in the first stage with a free extern slot."""
        for stage in self.stages:
            if len(stage.externs) < self.externs_per_stage:
                stage.place_extern(name, extern)
                return stage
        raise OverflowError(f"no stage has room for extern {name!r}")
