"""End-to-end flow fastpath: fuse a whole multi-hop delivery into one event.
Design, eligibility rules, and knobs: [PERFORMANCE.md](PERFORMANCE.md#flow-fastpath).

The flow cache (:mod:`repro.pisa.flowcache`) elides the pipeline *walk*
but still pays the full event cadence per hop: ingress-latency event,
TM kick, serialization event, egress-latency event, link propagation —
five to seven kernel events per switch.  For a flow whose decision at
**every** switch on its path is cached and pure, all of that is static:
the rewrites, the egress ports, the per-hop latencies, and therefore
the end-to-end arrival time are known the moment the packet enters the
first switch.  The fastpath exploits this the way psim's flow
abstraction collapses per-packet hops: it walks the path once, records
a :class:`_PathEntry`, and thereafter schedules **one** kernel event at
the precomputed arrival time.  The event replays every hop's recorded
blind writes (counters, sketches, Bloom filters, windows) in hop order
and performs the exact per-hop bookkeeping the per-hop machinery would
have done — bus fired/suppressed/handled counters, pipeline throughput,
TM/queue/buffer/port statistics, link conservation ledgers — so the
final state is byte-identical to the per-hop reference.

Correctness is guarded at three levels:

* **Path-level generation vector** — the fused entry stores every
  on-path switch's flow-cache generation vector plus each on-path
  link's epoch (bumped on status flips and impairment attaches) and
  each bus's observer epoch.  Any control-plane mutation, fault
  injection, ``LinkImpairment`` attach, or observer attach mismatches
  the vector: the path entry is invalidated and the packet falls back
  to per-hop execution (which re-records).
* **Entry identity** — each hop's cached :class:`_Entry` objects are
  re-checked by identity against the live cache at fuse time, so
  ``clear()``, re-``attach()``, and LRU eviction all invalidate.
* **Quiescence** — fusing is only exact when nothing else can interact
  with the path while the packet is (virtually) in flight.  The fuse
  check requires every on-path switch to be idle (empty shared buffer,
  idle egress port, no armed timers, not stalled, no pending fused
  window) and its radius-1 neighborhood quiet (no packets in flight on
  any incident link, no adjacent host NIC mid-serialization).  Paths
  whose serialization time exceeds the incoming link latency are never
  fused, so a same-path follower can never catch a fused packet's
  transmit window.  Anything busy → per-hop fallback, counted by
  reason.
* **Disruption-time materialization** — generations and quiescence
  guard the *fuse* decision; they cannot guard the window itself: a
  fault callback can land while a fused delivery is (virtually) in
  flight.  Every fused delivery is therefore registered as a
  :class:`_Flight` on each hop's fastpath, and every disruption entry
  point — link status flip, impairment attach, ``stall``/``unstall``,
  TM port pause, fault-injector checkpoint — calls
  :meth:`FlowFastpath.disrupt` on the switches it touches.  Disrupt
  cancels the fused event, retroactively applies the bookkeeping of
  the hops the packet already (virtually) completed, and re-injects
  the packet into the *real* per-hop machinery at its current virtual
  stage: the ingress pipeline (``_ingress_done``), mid-serialization
  (``TrafficManager._finish_tx``), the egress pipeline
  (``_transmit``), or the wire (``Link._deliver``) — each at its
  original per-hop timestamp.  From there the ordinary code paths
  see the disruption exactly as the per-hop reference would, so even
  a fault in the middle of a fused window stays byte-identical.

The fastpath is per-switch, enabled by default, and disabled with the
``REPRO_FLOW_FASTPATH=0`` environment variable or the switch's
``fastpath=False`` constructor argument.  Path state follows the flow
cache's lifecycle rules: checkpoints, ``Simulator.fork()``, and
``Simulator.reset()`` all start cold.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.arch.events import EventType
from repro.packet.headers import _FIELD_GETTERS, field_getter, field_index
from repro.pisa.flowcache import UNCACHEABLE
from repro.sim.units import bytes_to_time_ps
from repro.tm.scheduler import FifoScheduler, StrictPriorityScheduler

__all__ = [
    "FLOW_FASTPATH_ENV",
    "FlowFastpath",
    "FastpathStats",
    "collecting_fastpaths",
    "env_enabled",
]

#: Environment toggle: ``0``/``false``/``off`` disables the fastpath.
FLOW_FASTPATH_ENV = "REPRO_FLOW_FASTPATH"


def env_enabled(default: bool = True) -> bool:
    """The process-wide default from :data:`FLOW_FASTPATH_ENV`."""
    raw = os.environ.get(FLOW_FASTPATH_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no", "")


#: TM transition kinds the fused delivery accounts as suppressed; a
#: description that *admits* any of these would fire real events per
#: hop, which the fused path cannot reproduce — such switches are
#: structurally ineligible.
_TM_EVENT_KINDS = (
    EventType.ENQUEUE,
    EventType.DEQUEUE,
    EventType.BUFFER_OVERFLOW,
    EventType.BUFFER_UNDERFLOW,
    EventType.PACKET_TRANSMITTED,
)

#: Schedulers whose dequeue decision is stateless FIFO-by-priority; a
#: DRR or PIFO port carries scheduling state the fused hop would skip.
_PURE_SCHEDULERS = (FifoScheduler, StrictPriorityScheduler)

#: Resolved lazily to avoid the base ← fastpath ← baseline/net cycles.
_BASELINE_CLS: Optional[type] = None
_LINK_CLS: Optional[type] = None
_HOST_CLS: Optional[type] = None

#: Active collection scopes (mirrors flowcache's ``collecting_caches``).
_COLLECTORS: List[List["FlowFastpath"]] = []

#: Hop-count safety bound for the path walk.
_MAX_HOPS = 16

_INGRESS = EventType.INGRESS_PACKET
_EGRESS = EventType.EGRESS_PACKET
_ENQ = EventType.ENQUEUE
_DEQ = EventType.DEQUEUE
_BUF_UND = EventType.BUFFER_UNDERFLOW
_PKT_TX = EventType.PACKET_TRANSMITTED

#: Replay granularity for one hop's bookkeeping (materialization): how
#: far through the hop the packet had virtually progressed.
_STAGE_DEQUEUED = 0  # through TM admission + dequeue (serialization began)
_STAGE_SWITCH = 1  # plus serialization end + the egress pipeline
_STAGE_FULL = 2  # plus the link ledger (arrived at the next node)


@contextmanager
def collecting_fastpaths() -> Iterator[List["FlowFastpath"]]:
    """Collect every :class:`FlowFastpath` created inside the block."""
    fastpaths: List["FlowFastpath"] = []
    _COLLECTORS.append(fastpaths)
    try:
        yield fastpaths
    finally:
        _COLLECTORS.remove(fastpaths)


def _baseline_cls() -> type:
    global _BASELINE_CLS
    if _BASELINE_CLS is None:
        from repro.arch.baseline import BaselinePsaSwitch

        _BASELINE_CLS = BaselinePsaSwitch
    return _BASELINE_CLS


def _link_cls() -> type:
    global _LINK_CLS
    if _LINK_CLS is None:
        from repro.net.link import Link

        _LINK_CLS = Link
    return _LINK_CLS


def _host_cls() -> type:
    global _HOST_CLS
    if _HOST_CLS is None:
        from repro.net.host import Host

        _HOST_CLS = Host
    return _HOST_CLS


class FastpathStats:
    """Path/fusion accounting, surfaced by ``repro events-stats``."""

    __slots__ = ("paths_built", "fused", "materialized", "invalidations", "fallbacks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.paths_built = 0
        self.fused = 0
        #: Fused deliveries cancelled by a mid-window disruption and
        #: re-injected into the per-hop machinery (still delivered).
        self.materialized = 0
        self.invalidations = 0
        #: Per-hop fallbacks by reason (entry retained): reason -> count.
        self.fallbacks: Dict[str, int] = {}

    def fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    @property
    def fallbacks_total(self) -> int:
        return sum(self.fallbacks.values())

    @property
    def fuse_rate(self) -> float:
        total = self.fused + self.fallbacks_total
        return self.fused / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "paths_built": self.paths_built,
            "fused": self.fused,
            "materialized": self.materialized,
            "fallbacks": self.fallbacks_total,
            "invalidations": self.invalidations,
            "fallback_reasons": dict(sorted(self.fallbacks.items())),
        }

    def __repr__(self) -> str:
        return (
            f"FastpathStats(paths_built={self.paths_built}, "
            f"fused={self.fused}, materialized={self.materialized}, "
            f"fallbacks={self.fallbacks_total}, "
            f"invalidations={self.invalidations})"
        )


class _Unfusable:
    """Negative path entry: this flow can never fuse under ``sig``.

    ``sig`` pins the hop-1 cache signature (attach epoch + generation
    vector); any table/route mutation or program reload re-probes, so a
    flow that *becomes* fusable after control-plane convergence is not
    stuck behind a stale verdict.
    """

    __slots__ = ("sig", "reason")

    def __init__(self, sig: tuple, reason: str) -> None:
        self.sig = sig
        self.reason = reason


class _Hop:
    """One switch traversal inside a fused path.

    Besides the decision itself, the hop prebinds every object the
    per-packet validate/deliver steps touch (stat dicts, pipelines,
    buffer, queue stats) so the fused path never re-walks attribute
    chains — the per-hop cost is the counter bumps, nothing else.
    """

    __slots__ = (
        "switch",
        "cache",
        "fp",
        "rx_port",
        "ingress_key",
        "ingress_entry",
        "egress_key",
        "egress_entry",
        "egress_spec",
        "port_obj",
        "link",
        "link_epoch",
        "rate_gbps",
        "genvec",
        "dep_gens",
        "entries",
        "bus",
        "fired",
        "handled",
        "suppressed",
        "cache_stats",
        "ingress_pipeline",
        "egress_pipeline",
        "tm",
        "buffer",
        "qstats",
        "observer_epoch",
        "tx_time_ps",
        "length",
        "d_enq",
        "d_leave",
        "d_exit",
        "incident_links",
        "neighbor_hosts",
    )


class _Flight:
    """One in-flight fused delivery.

    Registered on every hop's fastpath the moment the fused event is
    scheduled, so any mid-window disruption on any on-path switch can
    cancel the event and materialize the packet back into the per-hop
    machinery (:meth:`FlowFastpath.disrupt`)."""

    __slots__ = ("event", "path", "pkt", "t0", "done")


class _PathEntry:
    """One fused multi-hop delivery: hops, timing, and the terminal host."""

    __slots__ = ("hops", "host", "host_port", "d_end")

    def __init__(
        self, hops: Tuple[_Hop, ...], host: Host, host_port: int, d_end: int
    ) -> None:
        self.hops = hops
        self.host = host
        self.host_port = host_port
        self.d_end = d_end


class FlowFastpath:
    """Per-switch registry of fused end-to-end paths, keyed by flow.

    Owned by the *entry* switch of each path; interior hops contribute
    their cached entries and their quiescence but keep no path state of
    their own (beyond the transient fused-window watermark).
    """

    #: Default maximum number of path entries (positive or negative).
    DEFAULT_LIMIT = 1024

    __slots__ = (
        "sim",
        "switch",
        "limit",
        "name",
        "stats",
        "_paths",
        "_active",
        "_quiet_until_ps",
        "_registered",
        "__weakref__",
    )

    def __init__(self, sim, switch, limit: int = DEFAULT_LIMIT, name: str = "") -> None:
        if limit <= 0:
            raise ValueError(f"fastpath limit must be positive, got {limit}")
        self.sim = sim
        self.switch = switch
        self.limit = limit
        self.name = name
        self.stats = FastpathStats()
        self._paths: Dict[tuple, object] = {}
        #: In-flight fused deliveries crossing this switch (as any hop).
        self._active: List[_Flight] = []
        #: End of the latest fused transmit window crossing this switch;
        #: a new fuse through this switch must start at or after it.
        self._quiet_until_ps = 0
        self._registered = False
        for collector in _COLLECTORS:
            collector.append(self)

    # ------------------------------------------------------------------
    # Lifecycle (same cold-start rules as the flow cache)
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every path entry (entries only; stats survive).

        A program reload mid-run is a disruption like any other: any
        fused delivery crossing this switch is materialized first so
        its remaining hops run against the new program."""
        self.disrupt()
        self._paths.clear()

    def on_sim_reset(self) -> None:
        """Simulator.reset(): start cold *and* with zeroed counters."""
        self._paths.clear()
        self._active.clear()
        self.stats.reset()
        self._quiet_until_ps = 0

    def _ensure_registered(self) -> None:
        if not self._registered:
            self._registered = True
            self.sim.add_reset_listener(self)

    # Checkpoints and forks drop the fused paths: a restored simulation
    # starts cold and rebuilds warm, so resumed runs never fuse against
    # pre-checkpoint topology or cache state.
    def __getstate__(self):
        return {
            "sim": self.sim,
            "switch": self.switch,
            "limit": self.limit,
            "name": self.name,
        }

    def __setstate__(self, state) -> None:
        self.sim = state["sim"]
        self.switch = state["switch"]
        self.limit = state["limit"]
        self.name = state.get("name", "")
        self.stats = FastpathStats()
        self._paths = {}
        self._active = []
        self._quiet_until_ps = 0
        self._registered = False

    # ------------------------------------------------------------------
    # Entry point (called by the owning switch's receive path)
    # ------------------------------------------------------------------
    def handle(self, pkt, port: int) -> bool:
        """Try to fuse the delivery of ``pkt``; True when one event was
        scheduled and the caller must not run the per-hop path."""
        if self.switch.bus._observers:
            # Observers need per-hop event visibility; skip before the
            # path build so an instrumented run never thrashes entries.
            self.stats.fallback("observer")
            return False
        parts: List[object] = [_INGRESS, port, pkt.payload_len]
        append = parts.append
        extend = parts.extend
        getters = _FIELD_GETTERS
        for header in pkt.headers:
            cls = header.__class__
            append(cls)
            getter = getters.get(cls)
            if getter is None:
                getter = field_getter(cls)
            extend(getter(header))
        key = tuple(parts)
        path = self._paths.get(key)
        if path is None:
            path = self._build(pkt, port, key)
            if path is None:
                return False
        elif type(path) is _Unfusable:
            if path.sig == self._hop1_sig():
                self.stats.fallback(path.reason)
                return False
            del self._paths[key]
            self.stats.invalidations += 1
            path = self._build(pkt, port, key)
            if path is None:
                return False
        now = self.sim.now_ps
        verdict = self._validate(path, now)
        if verdict is not None:
            stale, reason = verdict
            self.stats.fallback(reason)
            if stale:
                del self._paths[key]
                self.stats.invalidations += 1
            return False
        flight = _Flight()
        flight.path = path
        flight.pkt = pkt
        flight.t0 = now
        flight.done = False
        flight.event = self.sim.call_after(path.d_end, self._finish, flight)
        for hop in path.hops:
            fp = hop.fp
            fp._quiet_until_ps = now + hop.d_leave
            fp._active.append(flight)
        self.stats.fused += 1
        return True

    # ------------------------------------------------------------------
    # Fuse-time validation
    # ------------------------------------------------------------------
    def _validate(self, path: _PathEntry, now: int):
        """None when the path may fuse right now; otherwise a
        ``(stale, reason)`` pair — ``stale`` drops the entry."""
        for hop in path.hops:
            sw = hop.switch
            if sw.flow_cache is not hop.cache:
                return (True, "cache")
            entries = hop.entries
            if entries.get(hop.ingress_key) is not hop.ingress_entry:
                return (True, "entry")
            if (
                hop.egress_key is not None
                and entries.get(hop.egress_key) is not hop.egress_entry
            ):
                return (True, "entry")
            for dep, gen in hop.dep_gens:
                if dep.generation != gen:
                    return (True, "generation")
            link = hop.link
            if link.epoch != hop.link_epoch or not link.up:
                return (True, "link")
            bus = hop.bus
            if bus._observers or bus.observer_epoch != hop.observer_epoch:
                return (True, "observer")
            if sw.flow_fastpath is not hop.fp:
                return (True, "disabled")
            if sw.stalled:
                return (False, "stalled")
            if sw._timers:
                return (False, "timers")
            if hop.fp._quiet_until_ps > now:
                return (False, "busy")
            port_obj = hop.port_obj
            if port_obj.busy or not port_obj.enabled:
                return (False, "busy")
            if port_obj.rate_gbps != hop.rate_gbps:
                return (True, "rate")
            if hop.buffer.occupancy_bytes:
                return (False, "queued")
            for other in hop.incident_links:
                if other.in_flight:
                    return (False, "neighborhood")
            for host in hop.neighbor_hosts:
                if host._tx_busy or host._tx_queue:
                    return (False, "neighborhood")
        return None

    # ------------------------------------------------------------------
    # Fused delivery: one event, every hop's bookkeeping, in hop order
    # ------------------------------------------------------------------
    def _finish(self, flight: _Flight) -> None:
        """The fused event: unregister the flight, then deliver."""
        flight.done = True
        for hop in flight.path.hops:
            try:
                hop.fp._active.remove(flight)
            except ValueError:
                pass
        self._deliver(flight.path, flight.pkt, flight.t0)

    def _deliver(self, path: _PathEntry, pkt, t0: int) -> None:
        """Replay every hop's bookkeeping and blind writes, in hop order."""
        for hop in path.hops:
            self._replay_hop(hop, pkt, t0, _STAGE_FULL)
        path.host.receive(pkt, path.host_port)

    def _replay_hop(self, hop: _Hop, pkt, t0: int, stage: int) -> None:
        """One hop's bookkeeping and blind writes, up to ``stage``.

        The per-entry replay mirrors :meth:`FlowCache.replay` minus the
        standard-metadata writes (the fused hop keeps no metadata
        object; the steering fields come straight from the entry).  The
        writes are grouped by the per-hop machinery's own timeline so a
        materialization can truncate the replay mid-hop: everything
        through :data:`_STAGE_DEQUEUED` lands at TM admission time,
        the :data:`_STAGE_SWITCH` tail at serialization end, and the
        :data:`_STAGE_FULL` link ledger at wire exit."""
        set_ = object.__setattr__
        pkt_meta = pkt.meta
        headers = pkt.headers
        sw = hop.switch
        sw.rx_packets += 1
        pkt.ingress_port = hop.rx_port
        fired = hop.fired
        handled = hop.handled
        suppressed = hop.suppressed
        cache_stats = hop.cache_stats
        fired[_INGRESS] += 1
        entry = hop.ingress_entry
        cache_stats.hits += 1
        rewrites = entry.rewrites
        if rewrites:
            for idx, pairs in rewrites:
                header = headers[idx]
                for name, value in pairs:
                    set_(header, name, value)
        if entry.payload_len is not None:
            pkt.payload_len = entry.payload_len
        if entry.pkt_meta_writes:
            pkt_meta.update(entry.pkt_meta_writes)
        for bound, args, kwargs in entry.ops:
            bound(*args, **kwargs)
        handled[_INGRESS] += 1
        pipeline = hop.ingress_pipeline
        pipeline.packets_processed += 1
        pipeline.walks_elided += 1
        pkt.egress_port = entry.egress_spec
        pkt.queue_id = entry.queue_id
        pkt.priority = entry.priority
        pkt_meta["enq_meta"] = dict(entry.enq_meta) if entry.enq_meta else {}
        pkt_meta["deq_meta"] = dict(entry.deq_meta) if entry.deq_meta else {}
        length = hop.length
        tm = hop.tm
        tm.total_enqueued += 1
        tm.total_dequeued += 1
        buf = hop.buffer
        buf.admitted_packets += 1
        if length > buf.max_occupancy_bytes:
            buf.max_occupancy_bytes = length
        qstats = hop.qstats
        qstats.enqueued_packets += 1
        qstats.enqueued_bytes += length
        if length > qstats.max_depth_bytes:
            qstats.max_depth_bytes = length
        if qstats.max_depth_packets < 1:
            qstats.max_depth_packets = 1
        qstats.dequeued_packets += 1
        qstats.dequeued_bytes += length
        suppressed[_ENQ] += 1
        suppressed[_DEQ] += 1
        suppressed[_BUF_UND] += 1
        port_obj = hop.port_obj
        # The serializer charges busy time at dequeue (TM _kick).
        port_obj.busy_time_ps += hop.tx_time_ps
        pkt.ts_enqueued_ps = pkt.ts_dequeued_ps = t0 + hop.d_enq
        if stage == _STAGE_DEQUEUED:
            return
        suppressed[_PKT_TX] += 1
        port_obj.tx_packets += 1
        port_obj.tx_bytes += length
        fired[_EGRESS] += 1
        pipeline = hop.egress_pipeline
        pipeline.packets_processed += 1
        entry = hop.egress_entry
        if entry is not None:
            cache_stats.hits += 1
            rewrites = entry.rewrites
            if rewrites:
                for idx, pairs in rewrites:
                    header = headers[idx]
                    for name, value in pairs:
                        set_(header, name, value)
            if entry.payload_len is not None:
                pkt.payload_len = entry.payload_len
            if entry.pkt_meta_writes:
                pkt_meta.update(entry.pkt_meta_writes)
            for bound, args, kwargs in entry.ops:
                bound(*args, **kwargs)
            pipeline.walks_elided += 1
            handled[_EGRESS] += 1
        if stage == _STAGE_SWITCH:
            return
        link = hop.link
        link.tx_packets += 1
        link.delivered_packets += 1

    # ------------------------------------------------------------------
    # Disruption-time materialization
    # ------------------------------------------------------------------
    def disrupt(self) -> None:
        """Cancel every in-flight fused delivery crossing this switch
        and materialize each back into the per-hop machinery.

        The fault entry points (link status flip, impairment attach,
        ``stall``/``unstall``, TM port pause, injector checkpoint) call
        this *before* mutating state, so no fused window ever straddles
        a disruption it could not have seen.  The packet's completed
        hops are applied retroactively (they happened in the virtual
        past, before the disruption); the rest of its journey runs on
        the ordinary code paths at the original per-hop timestamps and
        observes the disruption exactly as the reference run would."""
        active = self._active
        if not active:
            return
        self._active = []
        for flight in active:
            if flight.done:
                continue
            flight.done = True
            flight.event.cancel()
            for hop in flight.path.hops:
                fp = hop.fp
                if fp is not self:
                    try:
                        fp._active.remove(flight)
                    except ValueError:
                        pass
            self._materialize(flight)

    def _materialize(self, flight: _Flight) -> None:
        path = flight.path
        pkt = flight.pkt
        t0 = flight.t0
        hops = path.hops
        rel = self.sim.now_ps - t0
        index = 0
        count = len(hops)
        while index < count and rel >= hops[index].d_exit:
            index += 1
        if index == count:
            # Due this very picosecond: deliver in full.
            self._deliver(path, pkt, t0)
            return
        self.stats.materialized += 1
        hop = hops[index]
        for done_hop in hops[:index]:
            self._replay_hop(done_hop, pkt, t0, _STAGE_FULL)
        sim = self.sim
        if rel < hop.d_enq:
            # In the ingress pipeline: re-enter ahead of the TM.  The
            # real _ingress_done path re-runs admission, so a port that
            # the disruption just paused queues the packet exactly as
            # the per-hop reference would.
            sw = hop.switch
            sw.rx_packets += 1
            pkt.ingress_port = hop.rx_port
            sim.call_at(t0 + hop.d_enq, sw._ingress_done, pkt, hop.rx_port)
            return
        if rel < hop.d_enq + hop.tx_time_ps:
            # Mid-serialization: the TM already dequeued; rebuild its
            # in-progress transmit and let _finish_tx take over (egress
            # pipeline, then the ordinary link entry).
            self._replay_hop(hop, pkt, t0, _STAGE_DEQUEUED)
            port_obj = hop.port_obj
            port_obj.busy = True
            sim.call_at(
                t0 + hop.d_enq + hop.tx_time_ps, hop.tm._finish_tx, port_obj, pkt
            )
            return
        if rel < hop.d_leave:
            # In the egress pipeline: the switch traversal is complete;
            # re-enter at the link boundary.
            self._replay_hop(hop, pkt, t0, _STAGE_SWITCH)
            sim.call_at(t0 + hop.d_leave, hop.switch._transmit, pkt, hop.egress_spec)
            return
        # On the wire: the link's own delivery re-checks status at the
        # far end, losing the packet if the line went down under it.
        self._replay_hop(hop, pkt, t0, _STAGE_SWITCH)
        link = hop.link
        link.tx_packets += 1
        link.in_flight += 1
        if index + 1 < count:
            receiver, rx_port = hops[index + 1].switch, hops[index + 1].rx_port
        else:
            receiver, rx_port = path.host, path.host_port
        sim.call_at(t0 + hop.d_exit, link._deliver, receiver, pkt, rx_port)

    # ------------------------------------------------------------------
    # Path building (array-backed: the walk runs on flat value lists,
    # never a cloned Packet — cloning would burn packet ids and shift
    # the id sequence against the per-hop reference run)
    # ------------------------------------------------------------------
    def _build(self, pkt, port: int, key: tuple) -> Optional[_PathEntry]:
        self._ensure_registered()
        classes = [type(h) for h in pkt.headers]
        values = [list(field_getter(cls)(h)) for cls, h in zip(classes, pkt.headers)]
        payload = pkt.payload_len
        header_len = pkt.header_len
        sw = self.switch
        rx_port = port
        baseline = _baseline_cls()
        link_cls = _link_cls()
        host_cls = _host_cls()
        hops: List[_Hop] = []
        clock = 0
        seen = set()
        while True:
            if len(hops) >= _MAX_HOPS or id(sw) in seen:
                return self._negative(key, "loop")
            seen.add(id(sw))
            if type(sw) is not baseline:
                return self._negative(key, "architecture")
            if sw.flow_fastpath is None:
                return self._negative(key, "disabled")
            if sw.bus._observers:
                return None  # transient: observers may detach later
            cache = sw.flow_cache
            if cache is None:
                return self._negative(key, "no-cache")
            program = sw.program
            if program is None:
                return None  # transient: nothing loaded yet
            description = sw.description
            for kind in _TM_EVENT_KINDS:
                if description.supports(kind):
                    return self._negative(key, "architecture")
            if program.handler_for(_INGRESS) is None:
                return self._negative(key, "steer")
            ikey = self._flow_key_flat(_INGRESS, rx_port, payload, classes, values)
            entry = cache._entries.get(ikey)
            if entry is None:
                return None  # transient: the per-hop run will record it
            if entry is UNCACHEABLE:
                return self._negative(key, "uncacheable")
            genvec = cache._generation_vector()
            if entry.genvec != genvec:
                return None  # transient: per-hop lookup will purge it
            spec = entry.egress_spec
            if not isinstance(spec, int) or not 0 <= spec < sw.tm.port_count:
                return self._negative(key, "steer")
            for idx, pairs in entry.rewrites:
                index = field_index(classes[idx])
                row = values[idx]
                for name, value in pairs:
                    row[index[name]] = value
            if entry.payload_len is not None:
                payload = entry.payload_len
            length = header_len + payload
            port_obj = sw.tm.ports[spec]
            if type(port_obj.scheduler) not in _PURE_SCHEDULERS:
                return self._negative(key, "scheduler")
            queue_id = entry.queue_id
            if queue_id > port_obj.last_queue:
                queue_id = port_obj.last_queue
            egress_key = egress_entry = None
            if program.handler_for(_EGRESS) is not None:
                egress_key = self._flow_key_flat(
                    _EGRESS, rx_port, payload, classes, values
                )
                egress_entry = cache._entries.get(egress_key)
                if egress_entry is None:
                    return None
                if egress_entry is UNCACHEABLE:
                    return self._negative(key, "uncacheable")
                if egress_entry.genvec != genvec:
                    return None
                if egress_entry.egress_spec != spec:
                    return self._negative(key, "steer")
            network = getattr(sw._tx_callback, "network", None)
            if network is None:
                return self._negative(key, "unwired")
            port_links = network._switch_port_links
            link = port_links.get((sw.name, spec))
            in_link = port_links.get((sw.name, rx_port))
            if link is None or in_link is None:
                return self._negative(key, "unwired")
            if type(link) is not link_cls or type(in_link) is not link_cls:
                return self._negative(key, "boundary")
            if not link.up or link.impairment is not None:
                return None  # transient: guarded live at fuse time
            tx_time = bytes_to_time_ps(length + 20, port_obj.rate_gbps)
            if tx_time > in_link.latency_ps:
                # A same-path follower one in-link behind could catch
                # this hop's transmit window: never fuse such paths.
                return self._negative(key, "short-link")
            incident: List[Link] = []
            neighbors: List[Host] = []
            for (name, _p), other in port_links.items():
                if name != sw.name or other in incident:
                    continue
                if type(other) is not link_cls:
                    return self._negative(key, "boundary")
                incident.append(other)
                for end in (other.node_a, other.node_b):
                    if isinstance(end, host_cls) and end not in neighbors:
                        neighbors.append(end)
            bus = sw.bus
            hop = _Hop()
            hop.switch = sw
            hop.cache = cache
            hop.fp = sw.flow_fastpath
            hop.rx_port = rx_port
            hop.ingress_key = ikey
            hop.ingress_entry = entry
            hop.egress_key = egress_key
            hop.egress_entry = egress_entry
            hop.egress_spec = spec
            hop.port_obj = port_obj
            hop.link = link
            hop.link_epoch = link.epoch
            hop.rate_gbps = port_obj.rate_gbps
            hop.genvec = genvec
            hop.dep_gens = tuple((dep, dep.generation) for dep in cache._deps)
            hop.entries = cache._entries
            hop.bus = bus
            hop.fired = bus.fired
            hop.handled = bus.handled
            hop.suppressed = bus.suppressed
            hop.cache_stats = cache.stats
            hop.ingress_pipeline = sw.ingress_pipeline
            hop.egress_pipeline = sw.egress_pipeline
            hop.tm = sw.tm
            hop.buffer = sw.tm.buffer
            hop.qstats = port_obj.queues[queue_id].stats
            hop.observer_epoch = bus.observer_epoch
            hop.tx_time_ps = tx_time
            hop.length = length
            hop.d_enq = clock + sw.ingress_pipeline.latency_ps
            hop.d_leave = hop.d_enq + tx_time + sw.egress_pipeline.latency_ps
            hop.d_exit = hop.d_leave + link.latency_ps
            hop.incident_links = tuple(incident)
            hop.neighbor_hosts = tuple(neighbors)
            hops.append(hop)
            if egress_entry is not None:
                # Egress rewrites land before the next hop sees the bits.
                for idx, pairs in egress_entry.rewrites:
                    index = field_index(classes[idx])
                    row = values[idx]
                    for name, value in pairs:
                        row[index[name]] = value
                if egress_entry.payload_len is not None:
                    payload = egress_entry.payload_len
            clock = hop.d_exit
            if link.node_a is sw:
                receiver, next_port = link.node_b, link.port_b
            else:
                receiver, next_port = link.node_a, link.port_a
            if isinstance(receiver, host_cls):
                path = _PathEntry(tuple(hops), receiver, next_port, clock)
                self._store(key, path)
                self.stats.paths_built += 1
                return path
            if not isinstance(receiver, baseline):
                return self._negative(key, "architecture")
            sw = receiver
            rx_port = next_port

    # ------------------------------------------------------------------
    # Keys and negative entries
    # ------------------------------------------------------------------
    @staticmethod
    def _flow_key(kind, port: int, payload_len: int, headers) -> tuple:
        """Identical layout to :meth:`FlowCache.flow_key`."""
        parts: List[object] = [kind, port, payload_len]
        for header in headers:
            cls = header.__class__
            parts.append(cls)
            parts.extend(field_getter(cls)(header))
        return tuple(parts)

    @staticmethod
    def _flow_key_flat(kind, port: int, payload_len: int, classes, values) -> tuple:
        """`_flow_key` over the walk's flat value rows instead of headers."""
        parts: List[object] = [kind, port, payload_len]
        for cls, row in zip(classes, values):
            parts.append(cls)
            parts.extend(row)
        return tuple(parts)

    def _hop1_sig(self) -> tuple:
        cache = self.switch.flow_cache
        if cache is None:
            return ()
        return (cache.attach_epoch,) + cache._generation_vector()

    def _negative(self, key: tuple, reason: str) -> None:
        self._store(key, _Unfusable(self._hop1_sig(), reason))
        self.stats.fallback(reason)
        return None

    def _store(self, key: tuple, value) -> None:
        paths = self._paths
        if key not in paths and len(paths) >= self.limit:
            paths.pop(next(iter(paths)))
        paths[key] = value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._paths)

    def summary(self) -> Dict[str, object]:
        """One manifest row for ``events-stats``."""
        data: Dict[str, object] = {"entries": len(self._paths), "limit": self.limit}
        data.update(self.stats.as_dict())
        return data

    def __repr__(self) -> str:
        return (
            f"FlowFastpath(entries={len(self._paths)}/{self.limit}, "
            f"fused={self.stats.fused}, fallbacks={self.stats.fallbacks_total})"
        )
