"""Counter extern.

PISA counters count packets and/or bytes per index.  Unlike registers
they are write-only from the data plane (the control plane reads them),
which is why periodic data-plane maintenance of counters is impossible
on baseline architectures — one of the paper's motivating gaps.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Tuple

from repro.state.store import StateStore, make_store


class CounterKind(Enum):
    """What a counter array counts."""

    PACKETS = "packets"
    BYTES = "bytes"
    PACKETS_AND_BYTES = "packets_and_bytes"


class Counter:
    """An indexed counter array.

    ``count(index, nbytes)`` is the data-plane operation;
    :meth:`read` / :meth:`read_all` model the control-plane interface.
    """

    def __init__(
        self,
        size: int,
        kind: CounterKind = CounterKind.PACKETS_AND_BYTES,
        name: str = "counter",
        backend: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"counter size must be positive, got {size}")
        self.size = size
        self.kind = kind
        self.name = name
        self._packets = make_store(size, 0, backend, name=f"{name}.packets")
        self._bytes = make_store(size, 0, backend, name=f"{name}.bytes")

    def count(self, index: int, nbytes: int = 0) -> None:
        """Data-plane increment of counter ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"counter {self.name!r} index {index} out of range [0, {self.size})"
            )
        if self.kind in (CounterKind.PACKETS, CounterKind.PACKETS_AND_BYTES):
            self._packets[index] += 1
        if self.kind in (CounterKind.BYTES, CounterKind.PACKETS_AND_BYTES):
            self._bytes[index] += nbytes

    def read(self, index: int) -> Tuple[int, int]:
        """Control-plane read: (packets, bytes) at ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"counter {self.name!r} index {index} out of range [0, {self.size})"
            )
        return self._packets[index], self._bytes[index]

    def read_all(self) -> List[Tuple[int, int]]:
        """Control-plane bulk read of all indices."""
        return list(zip(self._packets.snapshot(), self._bytes.snapshot()))

    def clear(self) -> None:
        """Control-plane reset of all counters."""
        self._packets.fill(0)
        self._bytes.fill(0)

    def total_packets(self) -> int:
        """Sum of the packet counts across all indices."""
        return self._packets.sum_values()

    def total_bytes(self) -> int:
        """Sum of the byte counts across all indices."""
        return self._bytes.sum_values()

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._packets, self._bytes]

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, size={self.size}, kind={self.kind.value})"
