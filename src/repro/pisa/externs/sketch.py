"""Sketch externs: count-min sketch and Bloom filter.

The count-min sketch (Cormode & Muthukrishnan 2005) is the paper's
running example of a data structure that needs *periodic reset* — on a
baseline PISA architecture the control plane must clear it, with
significant overhead if resets are frequent; with timer events the data
plane resets it autonomously (paper §1, §3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.packet.hashing import crc32, fold_hash
from repro.state.store import StateStore, make_store


class CountMinSketch:
    """A count-min sketch with ``depth`` rows of ``width`` counters.

    Update adds a count under a key; query returns the minimum across
    rows, an overestimate with error ≤ 2N/width at probability
    ≥ 1 − (1/2)^depth for total count N.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        name: str = "cms",
        backend: Optional[str] = None,
    ) -> None:
        if width <= 0:
            raise ValueError(f"sketch width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"sketch depth must be positive, got {depth}")
        self.width = width
        self.depth = depth
        self.name = name
        # One flat store of depth*width counters; row r occupies
        # [r*width, (r+1)*width).  A flat layout means one manifest entry
        # and one contiguous snapshot per sketch.
        self._cells = make_store(width * depth, 0, backend, name=name)
        self.update_count = 0

    def _indices(self, key: bytes) -> List[int]:
        return [
            fold_hash(crc32(key, seed=(0xFFFFFFFF ^ (row * 0x9E3779B9)) & 0xFFFFFFFF), self.width)
            for row in range(self.depth)
        ]

    def update(self, key: bytes, count: int = 1) -> None:
        """Add ``count`` under ``key``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.update_count += 1
        width = self.width
        for row, idx in enumerate(self._indices(key)):
            self._cells[row * width + idx] += count

    def add_signed(self, key: bytes, delta: int) -> None:
        """Add a signed delta under ``key`` (occupancy-style usage).

        Valid when every key's *net* count stays non-negative (e.g.
        buffer occupancy updated by enqueue/dequeue events, the paper's
        §2 footnote): then each cell is a sum of non-negative nets and
        :meth:`query` still never underestimates.  A cell going
        negative indicates misuse and raises.
        """
        self.update_count += 1
        width = self.width
        for row, idx in enumerate(self._indices(key)):
            flat = row * width + idx
            new_value = self._cells[flat] + delta
            if new_value < 0:
                raise ValueError(
                    f"sketch {self.name!r} cell went negative; add_signed "
                    f"requires non-negative per-key nets"
                )
            self._cells[flat] = new_value

    def query(self, key: bytes) -> int:
        """Estimated count of ``key`` (never underestimates)."""
        width = self.width
        return min(
            self._cells[row * width + idx]
            for row, idx in enumerate(self._indices(key))
        )

    def clear(self) -> None:
        """Reset all counters (the paper's periodic reset operation)."""
        self._cells.fill(0)

    def row(self, row: int) -> List[int]:
        """Dense copy of one sketch row (for tests and reports)."""
        if not 0 <= row < self.depth:
            raise IndexError(f"sketch {self.name!r} row {row} out of range")
        return self._cells.snapshot()[row * self.width : (row + 1) * self.width]

    def total(self) -> int:
        """Total count inserted since the last clear (row 0 sum)."""
        return sum(self.row(0))

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._cells]

    @property
    def state_bits(self) -> int:
        """Footprint assuming 32-bit counters."""
        return self.width * self.depth * 32

    @property
    def counter_count(self) -> int:
        """Number of counters (control-plane reset cost is one write each)."""
        return self.width * self.depth

    def __repr__(self) -> str:
        return f"CountMinSketch({self.name!r}, {self.depth}x{self.width})"


class BloomFilter:
    """A Bloom filter over byte keys with ``hashes`` hash functions."""

    def __init__(
        self,
        bits: int,
        hashes: int = 3,
        name: str = "bloom",
        backend: Optional[str] = None,
    ) -> None:
        if bits <= 0:
            raise ValueError(f"filter size must be positive, got {bits}")
        if hashes <= 0:
            raise ValueError(f"hash count must be positive, got {hashes}")
        self.bits = bits
        self.hashes = hashes
        self.name = name
        # Bits stored as 0/1 ints: sparse backends evict zero cells.
        self._bitset = make_store(bits, 0, backend, name=name)
        self.insert_count = 0

    def _indices(self, key: bytes) -> List[int]:
        return [
            fold_hash(
                crc32(key, seed=(0xFFFFFFFF ^ (h * 0x85EBCA6B)) & 0xFFFFFFFF), self.bits
            )
            for h in range(self.hashes)
        ]

    def insert(self, key: bytes) -> None:
        """Add ``key`` to the set."""
        self.insert_count += 1
        for idx in self._indices(key):
            self._bitset[idx] = 1

    def contains(self, key: bytes) -> bool:
        """Membership test; false positives possible, negatives exact."""
        return all(self._bitset[idx] for idx in self._indices(key))

    def clear(self) -> None:
        """Reset the filter."""
        self._bitset.fill(0)

    def fill_ratio(self) -> float:
        """Fraction of bits set (drives the false-positive rate)."""
        return self._bitset.nonzero_count() / self.bits

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._bitset]

    def __repr__(self) -> str:
        return f"BloomFilter({self.name!r}, bits={self.bits}, hashes={self.hashes})"
