"""Time-window externs: shift register and sliding-window aggregates.

Paper §5 ("Time-Windowed Network Measurement"): one student group used
timer events with a simple shift register to accurately measure flow
rates.  :class:`ShiftRegister` is that primitive — a fixed number of
slots advanced by a timer event — and :class:`SlidingWindow` layers
sum / mean / max over it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.state.store import StateStore, make_store


class ShiftRegister:
    """A ``slots``-deep shift register of integers.

    ``accumulate`` adds into the head slot; ``shift`` (driven by a timer
    event) pushes a fresh zero slot and drops the tail.  The sum over
    all slots is then a moving-window total of the accumulated signal.
    """

    def __init__(
        self, slots: int, name: str = "shift_reg", backend: Optional[str] = None
    ) -> None:
        if slots <= 0:
            raise ValueError(f"slot count must be positive, got {slots}")
        self.slots = slots
        self.name = name
        self._values = make_store(slots, 0, backend, name=name)
        self.shift_count = 0

    def accumulate(self, amount: int) -> None:
        """Add ``amount`` into the current (head) slot."""
        self._values[0] += amount

    def shift(self) -> int:
        """Advance the window by one slot; returns the expired tail value."""
        self.shift_count += 1
        values = self._values.snapshot()
        expired = values[-1]
        self._values.load([0] + values[:-1])
        return expired

    def window_sum(self) -> int:
        """Sum over all slots — the moving-window total."""
        return self._values.sum_values()

    def window_max(self) -> int:
        """Maximum slot value in the window."""
        return self._values.max_value()

    def head(self) -> int:
        """The current (still-accumulating) slot value."""
        return self._values[0]

    def snapshot(self) -> List[int]:
        """The slots as a dense list, head first (delegates to the store)."""
        return self._values.snapshot()

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._values]

    @property
    def state_bits(self) -> int:
        """Footprint assuming 32-bit slots."""
        return self.slots * 32

    def __repr__(self) -> str:
        return f"ShiftRegister({self.name!r}, slots={self.slots})"


class SlidingWindow:
    """Per-index sliding windows: an array of shift registers.

    This is the per-flow variant used for flow-rate measurement: index
    by flow id, accumulate packet bytes, shift all windows on each timer
    event, and read rates as window-sum / window-duration.
    """

    def __init__(
        self,
        size: int,
        slots: int,
        name: str = "windows",
        backend: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"window array size must be positive, got {size}")
        self.size = size
        self.slots = slots
        self.name = name
        self._windows = [
            ShiftRegister(slots, f"{name}[{i}]", backend=backend) for i in range(size)
        ]

    def accumulate(self, index: int, amount: int) -> None:
        """Add ``amount`` to window ``index``'s head slot."""
        self._check(index)
        self._windows[index].accumulate(amount)

    def shift_all(self) -> None:
        """Advance every window (one timer event shifts them all)."""
        for window in self._windows:
            window.shift()

    def window_sum(self, index: int) -> int:
        """Moving-window total at ``index``."""
        self._check(index)
        return self._windows[index].window_sum()

    def rate_bps(self, index: int, slot_duration_ps: int) -> float:
        """Window total interpreted as a bit rate, given the slot period."""
        window_ps = self.slots * slot_duration_ps
        if window_ps <= 0:
            raise ValueError("slot duration must be positive")
        return self.window_sum(index) * 8 * 1e12 / window_ps

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"window array {self.name!r} index {index} out of range "
                f"[0, {self.size})"
            )

    @property
    def state_bits(self) -> int:
        """Total footprint across all windows."""
        return self.size * self.slots * 32

    def stores(self) -> List[StateStore]:
        """The backing stores of every window (manifest/checkpoint)."""
        return [store for window in self._windows for store in window.stores()]

    def __repr__(self) -> str:
        return f"SlidingWindow({self.name!r}, size={self.size}, slots={self.slots})"
