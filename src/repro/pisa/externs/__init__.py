"""Stateful externs exposed to data-plane programs.

An *extern* is an element whose functionality is not described in P4;
the architecture exposes it to programs through a typed interface
(paper §2).  The reproduction provides the externs of baseline PISA
targets (``Register``, ``Counter``, ``Meter``, sketches) plus the
paper's new ``SharedRegister``, which multiple event-handling threads
may read and write, and the PIFO priority queue used for programmable
scheduling.
"""

from repro.pisa.externs.register import Register, SharedRegister
from repro.pisa.externs.counter import Counter
from repro.pisa.externs.meter import Meter, MeterColor
from repro.pisa.externs.sketch import BloomFilter, CountMinSketch
from repro.pisa.externs.pifo import PifoQueue
from repro.pisa.externs.window import ShiftRegister, SlidingWindow

__all__ = [
    "Register",
    "SharedRegister",
    "Counter",
    "Meter",
    "MeterColor",
    "CountMinSketch",
    "BloomFilter",
    "PifoQueue",
    "ShiftRegister",
    "SlidingWindow",
]
