"""Push-In-First-Out (PIFO) priority queue extern.

Sivaraman et al. (SIGCOMM 2016) proposed the PIFO as the universal
scheduling primitive: entries are pushed with a *rank* and always popped
in rank order.  The paper (§3, traffic management) combines PIFOs with
event-driven programming to build complete programmable packet
schedulers; :mod:`repro.tm.scheduler` uses this extern for its
programmable scheduling policy.
"""

from __future__ import annotations

import heapq
from typing import Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class PifoQueue(Generic[T]):
    """A bounded push-in-first-out queue.

    ``push(rank, item)`` inserts at the position given by ``rank``;
    ``pop()`` removes the minimum-rank item.  Ties break FIFO (stable),
    matching the hardware PIFO design.  When full, pushes whose rank is
    worse than the current maximum are rejected; otherwise the
    worst-ranked entry is evicted — the "push out the tail" behaviour of
    a fixed-size PIFO block.
    """

    def __init__(self, capacity: int, name: str = "pifo") -> None:
        if capacity <= 0:
            raise ValueError(f"PIFO capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._heap: List[Tuple[int, int, T]] = []
        # Plain int tie-breaker (not itertools.count: the queue must
        # survive pickling for whole-simulator checkpoints).
        self._seq = 0
        self.push_count = 0
        self.reject_count = 0
        self.evict_count = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """True when at capacity."""
        return len(self._heap) >= self.capacity

    def push(self, rank: int, item: T) -> Optional[T]:
        """Insert ``item`` at ``rank``.

        Returns the evicted item if the queue was full and this push
        displaced the tail, or the pushed item itself if it was rejected
        (rank no better than the tail); returns None on a clean insert.
        """
        self.push_count += 1
        if self.full:
            worst_rank = max(entry[0] for entry in self._heap)
            if rank >= worst_rank:
                self.reject_count += 1
                return item
            evicted = self._evict_worst()
            self.evict_count += 1
            heapq.heappush(self._heap, (rank, self._next_seq(), item))
            return evicted
        heapq.heappush(self._heap, (rank, self._next_seq(), item))
        return None

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def pop(self) -> T:
        """Remove and return the minimum-rank item (FIFO among ties)."""
        if not self._heap:
            raise IndexError(f"pop from empty PIFO {self.name!r}")
        return heapq.heappop(self._heap)[2]

    def peek_rank(self) -> Optional[int]:
        """Rank of the head item, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def _evict_worst(self) -> T:
        worst_pos = max(
            range(len(self._heap)),
            key=lambda i: (self._heap[i][0], self._heap[i][1]),
        )
        entry = self._heap.pop(worst_pos)
        heapq.heapify(self._heap)
        return entry[2]

    def drain(self) -> List[T]:
        """Pop everything, in rank order."""
        items = []
        while self._heap:
            items.append(self.pop())
        return items

    def snapshot(self) -> List[T]:
        """Items in pop order without mutating the queue."""
        return [entry[2] for entry in sorted(self._heap)]

    def __repr__(self) -> str:
        return f"PifoQueue({self.name!r}, {len(self)}/{self.capacity})"
