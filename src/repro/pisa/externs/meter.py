"""Meter extern: single-rate three-color token bucket (srTCM, RFC 2697).

Baseline PISA targets expose meters as fixed-function externs.  The
paper (§3, traffic management) argues that with timer events a
programmer can instead *build* a token bucket from plain registers and
customize it; :mod:`repro.apps.policing` does exactly that and the
emulation bench compares it against this fixed-function version.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.sim.units import SECONDS
from repro.state.store import StateStore, make_store


class MeterColor(Enum):
    """srTCM marking colors."""

    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"


class Meter:
    """An indexed array of single-rate three-color token-bucket meters.

    Each index has a committed-information-rate ``cir_bps`` shared by all
    indices, a committed burst ``cbs_bytes``, and an excess burst
    ``ebs_bytes``.  Buckets are refilled lazily from the elapsed
    simulated time at each :meth:`execute` call — equivalent to
    continuous refill, without needing a background process.
    """

    def __init__(
        self,
        size: int,
        cir_bps: float,
        cbs_bytes: int,
        ebs_bytes: int = 0,
        name: str = "meter",
        backend: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"meter size must be positive, got {size}")
        if cir_bps <= 0:
            raise ValueError(f"meter rate must be positive, got {cir_bps}")
        if cbs_bytes <= 0:
            raise ValueError(f"committed burst must be positive, got {cbs_bytes}")
        if ebs_bytes < 0:
            raise ValueError(f"excess burst must be non-negative, got {ebs_bytes}")
        self.size = size
        self.cir_bps = cir_bps
        self.cbs_bytes = cbs_bytes
        self.ebs_bytes = ebs_bytes
        self.name = name
        self._committed = make_store(
            size, float(cbs_bytes), backend, name=f"{name}.committed"
        )
        self._excess = make_store(size, float(ebs_bytes), backend, name=f"{name}.excess")
        self._last_update_ps = make_store(size, 0, backend, name=f"{name}.last_update")

    def execute(self, index: int, nbytes: int, now_ps: int) -> MeterColor:
        """Meter a packet of ``nbytes`` at simulated time ``now_ps``."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"meter {self.name!r} index {index} out of range [0, {self.size})"
            )
        self._refill(index, now_ps)
        if self._committed[index] >= nbytes:
            self._committed[index] -= nbytes
            return MeterColor.GREEN
        if self._excess[index] >= nbytes:
            self._excess[index] -= nbytes
            return MeterColor.YELLOW
        return MeterColor.RED

    def _refill(self, index: int, now_ps: int) -> None:
        elapsed_ps = now_ps - self._last_update_ps[index]
        if elapsed_ps <= 0:
            return
        self._last_update_ps[index] = now_ps
        refill_bytes = self.cir_bps * elapsed_ps / (8 * SECONDS)
        committed = self._committed[index] + refill_bytes
        if committed > self.cbs_bytes:
            # Overflow of the committed bucket spills into the excess bucket.
            spill = committed - self.cbs_bytes
            committed = float(self.cbs_bytes)
            self._excess[index] = min(self.ebs_bytes, self._excess[index] + spill)
        self._committed[index] = committed

    def tokens(self, index: int, now_ps: int) -> float:
        """Current committed-bucket level in bytes (after lazy refill)."""
        self._refill(index, now_ps)
        return self._committed[index]

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._committed, self._excess, self._last_update_ps]

    def __repr__(self) -> str:
        return (
            f"Meter({self.name!r}, size={self.size}, cir={self.cir_bps:.0f}bps, "
            f"cbs={self.cbs_bytes}B, ebs={self.ebs_bytes}B)"
        )
