"""Register externs.

:class:`Register` is the classic single-thread PISA register array: a
fixed number of fixed-width cells with read / write / read-modify-write
operations and wrapping arithmetic (hardware registers wrap, they do not
raise OverflowError).

:class:`SharedRegister` is the paper's new extern (§2): a register array
that multiple event-processing threads may access.  It additionally
records which threads touched it — the architecture uses this to verify
that baseline PISA programs never share state across threads, and the
resource model uses the access pattern to size the aggregation machinery
of §4.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.state.store import StateStore, make_store


class Register:
    """A register array extern: ``size`` cells of ``width_bits`` each.

    All arithmetic wraps modulo ``2**width_bits``, matching hardware
    semantics.  Indices are range-checked; out-of-bounds access is a
    programming error and raises IndexError rather than silently
    aliasing.

    Cells live in a :class:`repro.state.store.StateStore`; ``backend``
    picks the representation (``dense`` by default, which keeps hot-path
    indexing at raw-list cost).
    """

    def __init__(
        self,
        size: int,
        width_bits: int = 32,
        name: str = "reg",
        backend: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"register size must be positive, got {size}")
        if width_bits <= 0:
            raise ValueError(f"register width must be positive, got {width_bits}")
        self.size = size
        self.width_bits = width_bits
        self.name = name
        self._mask = (1 << width_bits) - 1
        self._cells = make_store(size, 0, backend, name=name)
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------
    def read(self, index: int) -> int:
        """Read cell ``index``."""
        self._check(index)
        self.read_count += 1
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        """Write cell ``index``; the value wraps to the register width."""
        self._check(index)
        self.write_count += 1
        self._cells[index] = value & self._mask

    def add(self, index: int, delta: int) -> int:
        """Atomic read-modify-write add; returns the new value."""
        self._check(index)
        self.read_count += 1
        self.write_count += 1
        new = (self._cells[index] + delta) & self._mask
        self._cells[index] = new
        return new

    def sub(self, index: int, delta: int) -> int:
        """Atomic read-modify-write subtract; returns the new value."""
        return self.add(index, -delta)

    def modify(self, index: int, fn: Callable[[int], int]) -> int:
        """Atomic read-modify-write with an arbitrary function."""
        self._check(index)
        self.read_count += 1
        self.write_count += 1
        new = fn(self._cells[index]) & self._mask
        self._cells[index] = new
        return new

    def clear(self) -> None:
        """Reset every cell to zero (one write per cell)."""
        self.write_count += self.size
        self._cells.fill(0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def peek(self, index: int) -> int:
        """Read cell ``index`` without counting a hardware access.

        For models and reports that need the value but must not perturb
        the read/write accounting (e.g. the §4 aggregation drain).
        """
        self._check(index)
        return self._cells[index]

    def snapshot(self) -> List[int]:
        """All cells as a dense list (for tests and reports; not an access).

        Delegates to the store: the dense and dict backends return a
        fresh list, the shadowed backend a frozen shared one.
        """
        return self._cells.snapshot()

    def nonzero_count(self) -> int:
        """Number of cells holding a non-zero value."""
        return self._cells.nonzero_count()

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._cells]

    @property
    def state_bits(self) -> int:
        """Total state footprint in bits (for the §2 state-size claims)."""
        return self.size * self.width_bits

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"register {self.name!r} index {index} out of range "
                f"[0, {self.size})"
            )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, size={self.size}, "
            f"width={self.width_bits}b)"
        )


class SharedRegister(Register):
    """The paper's ``shared_register`` extern.

    Functionally a :class:`Register`, but readable and writable from any
    event-processing thread.  Accesses are attributed to the thread the
    architecture is currently executing (set via :meth:`set_thread`), so
    the reproduction can report which events touched which state — the
    property baseline PISA architectures cannot offer.
    """

    def __init__(
        self,
        size: int,
        width_bits: int = 32,
        name: str = "shared_reg",
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(size, width_bits, name, backend=backend)
        self._thread: Optional[str] = None
        self.accesses_by_thread: Dict[str, int] = {}

    def set_thread(self, thread: Optional[str]) -> None:
        """Attribute subsequent accesses to ``thread`` (set by the arch)."""
        self._thread = thread

    def _account(self) -> None:
        if self._thread is not None:
            self.accesses_by_thread[self._thread] = (
                self.accesses_by_thread.get(self._thread, 0) + 1
            )

    def read(self, index: int) -> int:
        self._account()
        return super().read(index)

    def write(self, index: int, value: int) -> None:
        self._account()
        super().write(index, value)

    def add(self, index: int, delta: int) -> int:
        self._account()
        return super().add(index, delta)

    def modify(self, index: int, fn: Callable[[int], int]) -> int:
        self._account()
        return super().modify(index, fn)

    @property
    def sharing_threads(self) -> List[str]:
        """Names of the threads that have accessed this register."""
        return sorted(self.accesses_by_thread)
