"""Match-action table actions.

An :class:`Action` is a named callable bound with compile-time parameter
names; a :class:`ActionCall` is that action plus the control-plane
supplied argument values, as stored in a table entry.  Actions receive
the packet and its standard metadata, mirroring P4 action bodies.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata

ActionFn = Callable[..., None]


class Action:
    """A named data-plane action with declared parameters.

    The wrapped function is invoked as ``fn(pkt, meta, **params)``.
    """

    def __init__(self, name: str, fn: ActionFn, param_names: Tuple[str, ...] = ()) -> None:
        self.name = name
        self.fn = fn
        self.param_names = param_names

    def bind(self, **params: int) -> "ActionCall":
        """Bind control-plane arguments, validating names."""
        missing = set(self.param_names) - set(params)
        extra = set(params) - set(self.param_names)
        if missing:
            raise TypeError(f"action {self.name!r} missing params {sorted(missing)}")
        if extra:
            raise TypeError(f"action {self.name!r} unknown params {sorted(extra)}")
        return ActionCall(self, params)

    def __repr__(self) -> str:
        return f"Action({self.name!r}, params={list(self.param_names)})"


class ActionCall:
    """An action with bound parameters, ready to execute on a packet."""

    def __init__(self, action: Action, params: Dict[str, int]) -> None:
        self.action = action
        self.params = dict(params)

    def execute(self, pkt: Packet, meta: StandardMetadata) -> None:
        """Run the action body."""
        self.action.fn(pkt, meta, **self.params)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.action.name}({args})"


# ----------------------------------------------------------------------
# Library of common actions
# ----------------------------------------------------------------------
def _forward(pkt: Packet, meta: StandardMetadata, port: int) -> None:
    meta.send_to_port(port)


def _drop(pkt: Packet, meta: StandardMetadata) -> None:
    meta.drop()


def _send_to_cpu(pkt: Packet, meta: StandardMetadata) -> None:
    meta.send_to_cpu()


def _set_priority(pkt: Packet, meta: StandardMetadata, priority: int) -> None:
    meta.priority = priority


def _noop(pkt: Packet, meta: StandardMetadata) -> None:
    return None


#: Forward out of a given port.
FORWARD = Action("forward", _forward, ("port",))
#: Drop the packet.
DROP = Action("drop", _drop)
#: Punt to the control plane.
TO_CPU = Action("send_to_cpu", _send_to_cpu)
#: Set scheduling priority.
SET_PRIORITY = Action("set_priority", _set_priority, ("priority",))
#: Do nothing (the P4 NoAction).
NO_ACTION = Action("NoAction", _noop)
