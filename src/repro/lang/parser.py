"""Recursive-descent parser for the event-driven language.

Grammar (EBNF-ish)::

    program   := "program" IDENT ";" decl* handler*
    decl      := regdecl | constdecl
    regdecl   := ("register" | "shared_register") "<" NUMBER ">"
                 "(" NUMBER ")" IDENT ";"
    constdecl := "const" IDENT "=" expr ";"     (constant-folded)
    handler   := ("on" IDENT | "init") block
    block     := "{" stmt* "}"
    stmt      := "var" IDENT "=" expr ";"
               | IDENT "=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | call ";"
    call      := IDENT ("." IDENT)? "(" [expr {"," expr}] ")"
    expr      := standard precedence: ||, &&, ==/!=, </>/<=/>=,
                 +/-, *//%, unary !/-, primary
    primary   := NUMBER | STRING | call | IDENT "." IDENT | IDENT
               | "(" expr ")"
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    ConstDecl,
    Expr,
    ExprStmt,
    Field,
    HandlerDecl,
    If,
    Name,
    Number,
    Position,
    ProgramAst,
    RegisterDecl,
    Stmt,
    String,
    UnaryOp,
    VarDecl,
)
from repro.lang.errors import LangSyntaxError
from repro.lang.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise LangSyntaxError(
                f"expected {want!r}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def pos(self) -> Position:
        token = self.peek()
        return Position(token.line, token.column)

    # -- grammar --------------------------------------------------------
    def parse_program(self) -> ProgramAst:
        self.expect("keyword", "program")
        name = self.expect("ident").text
        self.expect("punct", ";")
        registers: List[RegisterDecl] = []
        consts: List[ConstDecl] = []
        while self.check("keyword", "register") or self.check(
            "keyword", "shared_register"
        ) or self.check("keyword", "const"):
            if self.check("keyword", "const"):
                consts.append(self.parse_const())
            else:
                registers.append(self.parse_register())
        handlers: List[HandlerDecl] = []
        while not self.check("eof"):
            handlers.append(self.parse_handler())
        return ProgramAst(
            name=name,
            registers=tuple(registers),
            consts=tuple(consts),
            handlers=tuple(handlers),
        )

    def parse_register(self) -> RegisterDecl:
        pos = self.pos()
        keyword = self.advance()  # register | shared_register
        self.expect("punct", "<")
        width = self._int_token()
        self.expect("punct", ">")
        self.expect("punct", "(")
        size = self._int_token()
        self.expect("punct", ")")
        name = self.expect("ident").text
        self.expect("punct", ";")
        return RegisterDecl(
            shared=keyword.text == "shared_register",
            width_bits=width,
            size=size,
            name=name,
            pos=pos,
        )

    def parse_const(self) -> ConstDecl:
        pos = self.pos()
        self.expect("keyword", "const")
        name = self.expect("ident").text
        self.expect("punct", "=")
        value = self.parse_expr()
        self.expect("punct", ";")
        folded = _fold_const(value)
        if folded is None:
            raise LangSyntaxError(
                f"const {name!r} must be a constant expression", pos.line, pos.column
            )
        return ConstDecl(name=name, value=folded, pos=pos)

    def parse_handler(self) -> HandlerDecl:
        pos = self.pos()
        if self.accept("keyword", "init"):
            event = None
        else:
            self.expect("keyword", "on")
            event = self.expect("ident").text
        body = self.parse_block()
        return HandlerDecl(event=event, body=body, pos=pos)

    def parse_block(self) -> Tuple[Stmt, ...]:
        self.expect("punct", "{")
        statements: List[Stmt] = []
        while not self.check("punct", "}"):
            statements.append(self.parse_stmt())
        self.expect("punct", "}")
        return tuple(statements)

    def parse_stmt(self) -> Stmt:
        pos = self.pos()
        if self.accept("keyword", "var"):
            name = self.expect("ident").text
            self.expect("punct", "=")
            value = self.parse_expr()
            self.expect("punct", ";")
            return VarDecl(name=name, value=value, pos=pos)
        if self.check("keyword", "if"):
            return self.parse_if()
        # Either an assignment or a call statement; both start with ident.
        token = self.expect("ident")
        if self.accept("punct", "="):
            value = self.parse_expr()
            self.expect("punct", ";")
            return Assign(name=token.text, value=value, pos=pos)
        call = self._finish_call(token, pos)
        self.expect("punct", ";")
        return ExprStmt(call=call, pos=pos)

    def parse_if(self) -> If:
        pos = self.pos()
        self.expect("keyword", "if")
        self.expect("punct", "(")
        condition = self.parse_expr()
        self.expect("punct", ")")
        then_body = self.parse_block()
        else_body: Tuple[Stmt, ...] = ()
        if self.accept("keyword", "else"):
            else_body = self.parse_block()
        return If(condition=condition, then_body=then_body, else_body=else_body, pos=pos)

    def _finish_call(self, first: Token, pos: Position) -> Call:
        """Parse the rest of ``name(…)`` or ``obj.method(…)``."""
        if self.accept("punct", "."):
            method = self.expect("ident").text
            args = self._parse_args()
            return Call(obj=first.text, name=method, args=args, pos=pos)
        args = self._parse_args()
        return Call(obj=None, name=first.text, args=args, pos=pos)

    def _parse_args(self) -> Tuple[Expr, ...]:
        self.expect("punct", "(")
        args: List[Expr] = []
        if not self.check("punct", ")"):
            args.append(self.parse_expr())
            while self.accept("punct", ","):
                args.append(self.parse_expr())
        self.expect("punct", ")")
        return tuple(args)

    # -- expressions (precedence climbing) -------------------------------
    _LEVELS = (
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_expr(self, level: int = 0) -> Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        while True:
            token = self.peek()
            if token.kind == "punct" and token.text in self._LEVELS[level]:
                self.advance()
                right = self.parse_expr(level + 1)
                left = BinOp(
                    op=token.text,
                    left=left,
                    right=right,
                    pos=Position(token.line, token.column),
                )
            else:
                return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "punct" and token.text in ("!", "-"):
            self.advance()
            operand = self.parse_unary()
            return UnaryOp(
                op=token.text, operand=operand, pos=Position(token.line, token.column)
            )
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        pos = Position(token.line, token.column)
        if token.kind == "number":
            self.advance()
            return Number(value=int(token.text.replace("_", ""), 0), pos=pos)
        if token.kind == "string":
            self.advance()
            return String(value=token.text, pos=pos)
        if self.accept("punct", "("):
            inner = self.parse_expr()
            self.expect("punct", ")")
            return inner
        if token.kind == "ident":
            self.advance()
            if self.check("punct", "("):
                return self._finish_call(token, pos)
            if self.accept("punct", "."):
                member = self.expect("ident").text
                if self.check("punct", "("):
                    args = self._parse_args()
                    return Call(obj=token.text, name=member, args=args, pos=pos)
                return Field(obj=token.text, field=member, pos=pos)
            return Name(ident=token.text, pos=pos)
        raise LangSyntaxError(
            f"unexpected token {token.text or token.kind!r}", token.line, token.column
        )

    def _int_token(self) -> int:
        token = self.expect("number")
        return int(token.text.replace("_", ""), 0)


def _fold_const(expr: Expr) -> Optional[int]:
    """Evaluate a constant expression at parse time, or None."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, UnaryOp):
        inner = _fold_const(expr.operand)
        if inner is None:
            return None
        return -inner if expr.op == "-" else int(not inner)
    if isinstance(expr, BinOp):
        left = _fold_const(expr.left)
        right = _fold_const(expr.right)
        if left is None or right is None:
            return None
        return _apply_binop(expr.op, left, right)
    return None


def _apply_binop(op: str, left: int, right: int) -> int:
    """Shared integer semantics for binary operators."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ZeroDivisionError("division by zero")
        return left // right
    if op == "%":
        if right == 0:
            raise ZeroDivisionError("modulo by zero")
        return left % right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise ValueError(f"unknown operator {op!r}")


def parse(source: str) -> ProgramAst:
    """Parse source text into a :class:`ProgramAst`."""
    return _Parser(tokenize(source)).parse_program()
