"""Tokenizer for the event-driven P4-like language.

Token kinds: identifiers/keywords, integer literals (decimal and
``0x…``), string literals (double-quoted, for metadata keys), and
punctuation.  Comments: ``//`` to end of line and ``/* … */`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.lang.errors import LangSyntaxError

KEYWORDS = frozenset(
    {
        "program",
        "on",
        "init",
        "if",
        "else",
        "var",
        "const",
        "register",
        "shared_register",
    }
)

#: Multi-character punctuation, longest first so matching is greedy.
MULTI_PUNCT = ("==", "!=", "<=", ">=", "&&", "||")
SINGLE_PUNCT = "{}()<>;,.=+-*/%!\""


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident' | 'keyword' | 'number' | 'string' | 'punct' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LangSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message: str) -> LangSyntaxError:
        return LangSyntaxError(message, line, column)

    while i < n:
        ch = source[i]
        # Whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        # Comments ---------------------------------------------------------
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            for c in source[i : end + 2]:
                if c == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
            i = end + 2
            continue
        # Numbers ------------------------------------------------------
        if ch.isdigit():
            start = i
            start_col = column
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and (source[i] in "0123456789abcdefABCDEF_"):
                    i += 1
            else:
                while i < n and (source[i].isdigit() or source[i] == "_"):
                    i += 1
            text = source[start:i]
            column = start_col + (i - start)
            tokens.append(Token("number", text, line, start_col))
            continue
        # Identifiers / keywords ----------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            start_col = column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            column = start_col + (i - start)
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            continue
        # Strings --------------------------------------------------------
        if ch == '"':
            start_col = column
            end = source.find('"', i + 1)
            if end < 0 or "\n" in source[i + 1 : end]:
                raise error("unterminated string literal")
            text = source[i + 1 : end]
            column = start_col + (end - i + 1)
            i = end + 1
            tokens.append(Token("string", text, line, start_col))
            continue
        # Punctuation -----------------------------------------------------
        matched = False
        for punct in MULTI_PUNCT:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line, column))
                i += len(punct)
                column += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_PUNCT:
            tokens.append(Token("punct", ch, line, column))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
