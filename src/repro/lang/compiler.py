"""Compiler + interpreter: AST → a loadable :class:`P4Program`.

Compilation validates the program against the language's static rules —
known events, declared registers, known builtins with correct arity,
assign-before-use locals, and placement rules (packet actions only in
packet-event handlers, ``configure_timer`` only in ``init``) — then
produces a :class:`CompiledProgram` whose handlers interpret the AST.

Builtins
--------

Expressions:

========================  ====================================================
``hash(v…, buckets)``     CRC-32 of the concatenated values, folded to buckets
``flow_hash(buckets)``    five-tuple hash (packet handlers only)
``now()``                 current simulated time in picoseconds
``queue_depth(port)``     egress queue depth in bytes
========================  ====================================================

Actions (packet-event handlers only unless noted):

==============================  ==============================================
``forward(port)``               set the egress port
``forward_by_ip()``             destination-IP route lookup
``drop()`` / ``to_cpu()``       drop / punt the packet
``recirculate()``               recirculate to ingress
``set_priority(p)``             scheduling priority
``set_queue(q)``                egress queue id
``set_enq_meta(key, v)``        user metadata for the enqueue event
``set_deq_meta(key, v)``        user metadata for the dequeue event
``configure_timer(id, period)`` arm a periodic timer (``init`` only)
``mark(v…)``                    record a detection (any handler)
``log(v…)``                     record a debug tuple (any handler)
``notify(code)``                digest to the control plane (any handler)
==============================  ==============================================

Register methods (any handler): ``read(i)``, ``write(i, v)``,
``add(i, v)``, ``sub(i, v)``, ``clear()``.

Field objects: ``pkt.len`` / ``pkt.ingress_port``, ``eth.*``, ``ip.*``,
``udp.*``, ``tcp.*`` (packet handlers); ``event.<key>`` (non-packet
handlers, reading the event's metadata).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType, PIPELINE_PACKET_EVENTS
from repro.arch.program import ProgramContext
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    Expr,
    ExprStmt,
    Field,
    HandlerDecl,
    If,
    Name,
    Number,
    ProgramAst,
    Stmt,
    String,
    UnaryOp,
    VarDecl,
)
from repro.lang.errors import LangRuntimeError, LangSemanticError
from repro.lang.parser import _apply_binop, parse
from repro.packet.hashing import crc32, fold_hash, flow_hash
from repro.packet.headers import Ethernet, Ipv4, Tcp, Udp
from repro.packet.packet import Packet
from repro.pisa.externs.register import Register, SharedRegister
from repro.pisa.metadata import StandardMetadata

#: builtin name -> (min arity, max arity, packet_only, init_only, is_expr)
BUILTINS: Dict[str, Tuple[int, Optional[int], bool, bool, bool]] = {
    "hash": (2, None, False, False, True),
    "flow_hash": (1, 1, True, False, True),
    "now": (0, 0, False, False, True),
    "queue_depth": (1, 1, False, False, True),
    "forward": (1, 1, True, False, False),
    "forward_by_ip": (0, 0, True, False, False),
    "drop": (0, 0, True, False, False),
    "to_cpu": (0, 0, True, False, False),
    "recirculate": (0, 0, True, False, False),
    "set_priority": (1, 1, True, False, False),
    "set_queue": (1, 1, True, False, False),
    "set_enq_meta": (2, 2, True, False, False),
    "set_deq_meta": (2, 2, True, False, False),
    "configure_timer": (2, 2, False, True, False),
    "mark": (1, None, False, False, False),
    "log": (1, None, False, False, False),
    "notify": (1, 1, False, False, False),
}

REGISTER_METHODS: Dict[str, Tuple[int, int, bool]] = {
    # name -> (arity, returns value, writes)
    "read": (1, True, False),
    "write": (2, False, True),
    "add": (2, True, True),
    "sub": (2, True, True),
    "clear": (0, False, True),
}

HEADER_OBJECTS = {"eth": Ethernet, "ip": Ipv4, "udp": Udp, "tcp": Tcp}

EVENT_NAMES = {kind.value: kind for kind in EventType}
PACKET_EVENT_NAMES = {kind.value for kind in PIPELINE_PACKET_EVENTS}


class CompiledProgram(ForwardingProgram):
    """A program compiled from source text.

    ``marks`` collects every ``mark(...)`` tuple and ``logs`` every
    ``log(...)`` tuple, so experiments can read detections out of a
    source-level program exactly as they would from a native one.
    """

    def __init__(self, ast: ProgramAst) -> None:
        super().__init__()
        self.name = ast.name
        self.ast = ast
        self.consts: Dict[str, int] = {c.name: c.value for c in ast.consts}
        self.registers: Dict[str, Register] = {}
        for decl in ast.registers:
            cls = SharedRegister if decl.shared else Register
            register = cls(decl.size, width_bits=decl.width_bits, name=decl.name)
            self.registers[decl.name] = register
            setattr(self, f"reg_{decl.name}", register)  # extern discovery
        self.marks: List[Tuple[int, ...]] = []
        self.logs: List[Tuple[int, ...]] = []
        self._init_body: Tuple[Stmt, ...] = ()
        for handler_decl in ast.handlers:
            if handler_decl.event is None:
                self._init_body = handler_decl.body
                continue
            kind = EVENT_NAMES[handler_decl.event]
            if kind in PIPELINE_PACKET_EVENTS:
                self._handlers[kind] = self._make_packet_handler(handler_decl)
            else:
                self._handlers[kind] = self._make_event_handler(handler_decl)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_load(self, ctx: ProgramContext) -> None:
        if self._init_body:
            env = _Env(self, ctx, pkt=None, meta=None, event=None)
            for stmt in self._init_body:
                env.execute(stmt)

    # ------------------------------------------------------------------
    # Handler factories
    # ------------------------------------------------------------------
    def _make_packet_handler(self, decl: HandlerDecl):
        def run(ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
            env = _Env(self, ctx, pkt=pkt, meta=meta, event=None)
            for stmt in decl.body:
                env.execute(stmt)

        return run

    def _make_event_handler(self, decl: HandlerDecl):
        def run(ctx: ProgramContext, event: Event) -> None:
            env = _Env(self, ctx, pkt=None, meta=None, event=event)
            for stmt in decl.body:
                env.execute(stmt)

        return run

    def marked_values(self) -> List[int]:
        """First element of every mark tuple (the common single-value case)."""
        return [mark[0] for mark in self.marks]

    def __repr__(self) -> str:
        events = ", ".join(sorted(k.value for k in self._handlers))
        return f"CompiledProgram({self.name!r}, handles: {events})"


class _Env:
    """One handler invocation's execution environment."""

    def __init__(self, program, ctx, pkt, meta, event) -> None:
        self.program = program
        self.ctx = ctx
        self.pkt = pkt
        self.meta = meta
        self.event = event
        self.locals: Dict[str, int] = {}

    # -- statements -----------------------------------------------------
    def execute(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            self.locals[stmt.name] = self.eval(stmt.value)
        elif isinstance(stmt, Assign):
            if stmt.name not in self.locals:
                raise LangRuntimeError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.pos.line,
                    stmt.pos.column,
                )
            self.locals[stmt.name] = self.eval(stmt.value)
        elif isinstance(stmt, If):
            branch = stmt.then_body if self.eval(stmt.condition) else stmt.else_body
            for inner in branch:
                self.execute(inner)
        elif isinstance(stmt, ExprStmt):
            self.eval(stmt.call)
        else:  # pragma: no cover - parser produces no other kinds
            raise LangRuntimeError(f"unknown statement {stmt!r}")

    # -- expressions ------------------------------------------------------
    def eval(self, expr: Expr):
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, String):
            return expr.value
        if isinstance(expr, Name):
            return self._name(expr)
        if isinstance(expr, Field):
            return self._field(expr)
        if isinstance(expr, BinOp):
            return _apply_binop(expr.op, self.eval(expr.left), self.eval(expr.right))
        if isinstance(expr, UnaryOp):
            value = self.eval(expr.operand)
            return -value if expr.op == "-" else int(not value)
        if isinstance(expr, Call):
            return self._call(expr)
        raise LangRuntimeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _name(self, expr: Name):
        if expr.ident in self.locals:
            return self.locals[expr.ident]
        if expr.ident in self.program.consts:
            return self.program.consts[expr.ident]
        raise LangRuntimeError(
            f"unknown name {expr.ident!r}", expr.pos.line, expr.pos.column
        )

    def _field(self, expr: Field):
        if expr.obj == "event":
            if self.event is None:
                raise LangRuntimeError(
                    "event.* is only available in event handlers",
                    expr.pos.line,
                    expr.pos.column,
                )
            try:
                return self.event.meta[expr.field]
            except KeyError:
                raise LangRuntimeError(
                    f"event metadata has no key {expr.field!r}",
                    expr.pos.line,
                    expr.pos.column,
                )
        if self.pkt is None:
            raise LangRuntimeError(
                f"{expr.obj}.* is only available in packet handlers",
                expr.pos.line,
                expr.pos.column,
            )
        if expr.obj == "pkt":
            if expr.field == "len":
                return self.pkt.total_len
            if expr.field == "ingress_port":
                return self.meta.ingress_port
            raise LangRuntimeError(
                f"pkt has no field {expr.field!r}", expr.pos.line, expr.pos.column
            )
        header_cls = HEADER_OBJECTS[expr.obj]
        header = self.pkt.get(header_cls)
        if header is None:
            raise LangRuntimeError(
                f"packet carries no {expr.obj} header",
                expr.pos.line,
                expr.pos.column,
            )
        try:
            return getattr(header, expr.field)
        except AttributeError:
            raise LangRuntimeError(
                f"{expr.obj} has no field {expr.field!r}",
                expr.pos.line,
                expr.pos.column,
            )

    # -- calls ------------------------------------------------------------
    def _call(self, call: Call):
        args = [self.eval(arg) for arg in call.args]
        if call.obj is not None:
            register = self.program.registers[call.obj]
            return getattr(register, call.name)(*args)
        return self._builtin(call, args)

    def _builtin(self, call: Call, args: List[int]):
        name = call.name
        program = self.program
        if name == "hash":
            *values, buckets = args
            data = b"".join(_hash_encode(int(v)) for v in values)
            return fold_hash(crc32(data), buckets)
        if name == "flow_hash":
            result = flow_hash(self.pkt, args[0])
            if result is None:
                raise LangRuntimeError(
                    "flow_hash on a non-IP packet", call.pos.line, call.pos.column
                )
            return result
        if name == "now":
            return self.ctx.now_ps
        if name == "queue_depth":
            return self.ctx.queue_depth_bytes(args[0])
        if name == "forward":
            self.meta.send_to_port(args[0])
            return None
        if name == "forward_by_ip":
            program.forward_by_ip(self.pkt, self.meta)
            return None
        if name == "drop":
            self.meta.drop()
            return None
        if name == "to_cpu":
            self.meta.send_to_cpu()
            return None
        if name == "recirculate":
            self.meta.request_recirculation()
            return None
        if name == "set_priority":
            self.meta.priority = args[0]
            return None
        if name == "set_queue":
            self.meta.queue_id = args[0]
            return None
        if name == "set_enq_meta":
            self.meta.enq_meta[args[0]] = args[1]
            return None
        if name == "set_deq_meta":
            self.meta.deq_meta[args[0]] = args[1]
            return None
        if name == "configure_timer":
            self.ctx.configure_timer(args[0], args[1])
            return None
        if name == "mark":
            program.marks.append(tuple(args))
            return None
        if name == "log":
            program.logs.append(tuple(args))
            return None
        if name == "notify":
            self.ctx.notify_control_plane({"code": args[0]})
            return None
        raise LangRuntimeError(  # pragma: no cover - compiler rejects these
            f"unknown builtin {name!r}", call.pos.line, call.pos.column
        )


def _hash_encode(value: int) -> bytes:
    """Field encoding for the ``hash`` builtin.

    32-bit fields (the common case: IPv4 addresses, lengths) are
    encoded in 4 bytes so ``hash(ip.src, ip.dst, n)`` matches the
    library's :func:`~repro.packet.hashing.ip_pair_hash`; wider or
    negative values take 8 bytes.
    """
    if 0 <= value < (1 << 32):
        return value.to_bytes(4, "big")
    return value.to_bytes(8, "big", signed=True)


# ----------------------------------------------------------------------
# Compile-time validation
# ----------------------------------------------------------------------
class _Checker:
    """Static checks over one parsed program."""

    def __init__(self, ast: ProgramAst) -> None:
        self.ast = ast
        self.registers = {decl.name for decl in ast.registers}
        self.consts = {decl.name for decl in ast.consts}

    def check(self) -> None:
        seen_registers = set()
        for decl in self.ast.registers:
            if decl.name in seen_registers:
                raise LangSemanticError(
                    f"duplicate register {decl.name!r}", decl.pos.line, decl.pos.column
                )
            seen_registers.add(decl.name)
            if decl.size <= 0 or decl.width_bits <= 0:
                raise LangSemanticError(
                    f"register {decl.name!r} needs positive size and width",
                    decl.pos.line,
                    decl.pos.column,
                )
        seen_events = set()
        for handler in self.ast.handlers:
            if handler.event is None:
                self._check_body(handler.body, packet=False, init=True, scope=set())
                continue
            if handler.event not in EVENT_NAMES:
                raise LangSemanticError(
                    f"unknown event {handler.event!r}",
                    handler.pos.line,
                    handler.pos.column,
                )
            if handler.event in seen_events:
                raise LangSemanticError(
                    f"duplicate handler for {handler.event!r}",
                    handler.pos.line,
                    handler.pos.column,
                )
            seen_events.add(handler.event)
            packet = handler.event in PACKET_EVENT_NAMES
            self._check_body(handler.body, packet=packet, init=False, scope=set())

    def _check_body(self, body, packet: bool, init: bool, scope: set) -> None:
        for stmt in body:
            if isinstance(stmt, VarDecl):
                self._check_expr(stmt.value, packet, init, scope)
                scope.add(stmt.name)
            elif isinstance(stmt, Assign):
                if stmt.name not in scope:
                    raise LangSemanticError(
                        f"assignment to undeclared variable {stmt.name!r} "
                        f"(use 'var')",
                        stmt.pos.line,
                        stmt.pos.column,
                    )
                self._check_expr(stmt.value, packet, init, scope)
            elif isinstance(stmt, If):
                self._check_expr(stmt.condition, packet, init, scope)
                # Branch-local scopes: names declared inside do not leak.
                self._check_body(stmt.then_body, packet, init, set(scope))
                self._check_body(stmt.else_body, packet, init, set(scope))
            elif isinstance(stmt, ExprStmt):
                self._check_expr(stmt.call, packet, init, scope)

    def _check_expr(self, expr: Expr, packet: bool, init: bool, scope: set) -> None:
        if isinstance(expr, Number) or isinstance(expr, String):
            return
        if isinstance(expr, Name):
            if expr.ident not in scope and expr.ident not in self.consts:
                raise LangSemanticError(
                    f"unknown name {expr.ident!r}", expr.pos.line, expr.pos.column
                )
            return
        if isinstance(expr, Field):
            if expr.obj == "event":
                if packet or init:
                    raise LangSemanticError(
                        "event.* is only available in non-packet event handlers",
                        expr.pos.line,
                        expr.pos.column,
                    )
                return
            if expr.obj in HEADER_OBJECTS or expr.obj == "pkt":
                if not packet:
                    raise LangSemanticError(
                        f"{expr.obj}.* is only available in packet handlers",
                        expr.pos.line,
                        expr.pos.column,
                    )
                if expr.obj == "pkt" and expr.field not in ("len", "ingress_port"):
                    raise LangSemanticError(
                        f"pkt has no field {expr.field!r}",
                        expr.pos.line,
                        expr.pos.column,
                    )
                if expr.obj in HEADER_OBJECTS:
                    fields = {f.name for f in HEADER_OBJECTS[expr.obj].FIELDS}
                    if expr.field not in fields:
                        raise LangSemanticError(
                            f"{expr.obj} has no field {expr.field!r}",
                            expr.pos.line,
                            expr.pos.column,
                        )
                return
            raise LangSemanticError(
                f"unknown object {expr.obj!r}", expr.pos.line, expr.pos.column
            )
        if isinstance(expr, BinOp):
            self._check_expr(expr.left, packet, init, scope)
            self._check_expr(expr.right, packet, init, scope)
            return
        if isinstance(expr, UnaryOp):
            self._check_expr(expr.operand, packet, init, scope)
            return
        if isinstance(expr, Call):
            self._check_call(expr, packet, init, scope)
            return

    def _check_call(self, call: Call, packet: bool, init: bool, scope: set) -> None:
        for arg in call.args:
            self._check_expr(arg, packet, init, scope)
        if call.obj is not None:
            if call.obj not in self.registers:
                raise LangSemanticError(
                    f"unknown register {call.obj!r}", call.pos.line, call.pos.column
                )
            spec = REGISTER_METHODS.get(call.name)
            if spec is None:
                raise LangSemanticError(
                    f"registers have no method {call.name!r}",
                    call.pos.line,
                    call.pos.column,
                )
            arity = spec[0]
            if len(call.args) != arity:
                raise LangSemanticError(
                    f"{call.obj}.{call.name} takes {arity} argument(s), "
                    f"got {len(call.args)}",
                    call.pos.line,
                    call.pos.column,
                )
            return
        spec = BUILTINS.get(call.name)
        if spec is None:
            raise LangSemanticError(
                f"unknown builtin {call.name!r}", call.pos.line, call.pos.column
            )
        minimum, maximum, packet_only, init_only, _is_expr = spec
        if len(call.args) < minimum or (maximum is not None and len(call.args) > maximum):
            raise LangSemanticError(
                f"{call.name} takes "
                + (f"{minimum}" if maximum == minimum else f"{minimum}+")
                + f" argument(s), got {len(call.args)}",
                call.pos.line,
                call.pos.column,
            )
        if packet_only and not packet:
            raise LangSemanticError(
                f"{call.name} is only available in packet-event handlers",
                call.pos.line,
                call.pos.column,
            )
        if init_only and not init:
            raise LangSemanticError(
                f"{call.name} is only available in the init block",
                call.pos.line,
                call.pos.column,
            )


def compile_program(source: str) -> CompiledProgram:
    """Parse, validate, and instantiate a program from source text."""
    ast = parse(source)
    _Checker(ast).check()
    return CompiledProgram(ast)
