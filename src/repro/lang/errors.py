"""Language-frontend error types, all carrying source positions."""

from __future__ import annotations


class LangError(Exception):
    """Base class for language-frontend failures."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LangSyntaxError(LangError):
    """Tokenizer or parser failure."""


class LangSemanticError(LangError):
    """Compile-time validation failure (unknown event, register, …)."""


class LangRuntimeError(LangError):
    """Interpreter failure while executing a handler."""
