"""AST node definitions for the event-driven language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Position:
    """Source position for error reporting."""

    line: int
    column: int


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Number:
    """Integer literal."""

    value: int
    pos: Position


@dataclass(frozen=True)
class String:
    """String literal (metadata keys)."""

    value: str
    pos: Position


@dataclass(frozen=True)
class Name:
    """Bare identifier reference (local, const, or special object field)."""

    ident: str
    pos: Position


@dataclass(frozen=True)
class Field:
    """Dotted access: ``ip.src``, ``meta.flowID``, ``event.pkt_len``."""

    obj: str
    field: str
    pos: Position


@dataclass(frozen=True)
class Call:
    """Builtin call ``hash(a, b, n)`` (obj is None) or register method
    ``reg.read(i)`` (obj is the register name)."""

    obj: Optional[str]
    name: str
    args: Tuple["Expr", ...]
    pos: Position


@dataclass(frozen=True)
class BinOp:
    """Binary operation."""

    op: str
    left: "Expr"
    right: "Expr"
    pos: Position


@dataclass(frozen=True)
class UnaryOp:
    """Unary operation: ``-`` or ``!``."""

    op: str
    operand: "Expr"
    pos: Position


Expr = Union[Number, String, Name, Field, Call, BinOp, UnaryOp]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VarDecl:
    """``var x = expr;`` — declares a handler-local variable."""

    name: str
    value: Expr
    pos: Position


@dataclass(frozen=True)
class Assign:
    """``x = expr;`` — re-assigns an existing local."""

    name: str
    value: Expr
    pos: Position


@dataclass(frozen=True)
class If:
    """``if (cond) { … } else { … }``."""

    condition: Expr
    then_body: Tuple["Stmt", ...]
    else_body: Tuple["Stmt", ...]
    pos: Position


@dataclass(frozen=True)
class ExprStmt:
    """A call used as a statement (builtin action or register write)."""

    call: Call
    pos: Position


Stmt = Union[VarDecl, Assign, If, ExprStmt]


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisterDecl:
    """``shared_register<32>(1024) name;`` or ``register<…>(…) name;``."""

    shared: bool
    width_bits: int
    size: int
    name: str
    pos: Position


@dataclass(frozen=True)
class ConstDecl:
    """``const NAME = 8000;``."""

    name: str
    value: int
    pos: Position


@dataclass(frozen=True)
class HandlerDecl:
    """``on <event> { … }`` or ``init { … }`` (event is None for init)."""

    event: Optional[str]
    body: Tuple[Stmt, ...]
    pos: Position


@dataclass(frozen=True)
class ProgramAst:
    """A complete parsed program."""

    name: str
    registers: Tuple[RegisterDecl, ...]
    consts: Tuple[ConstDecl, ...]
    handlers: Tuple[HandlerDecl, ...]
