"""An event-driven P4-like language frontend.

The paper's thesis is that *the P4 language* should express event
processing: per-event ``control`` blocks plus a ``shared_register``
extern.  This subpackage provides a small textual language in that
style and compiles it onto the reproduction's programming model, so the
paper's ``microburst.p4`` can be written as source text and loaded onto
any architecture::

    from repro.lang import compile_program

    SOURCE = '''
    program microburst;

    shared_register<32>(1024) bufSize_reg;
    const FLOW_THRESH = 8000;

    on ingress_packet {
        var flowID = hash(ip.src, ip.dst, 1024);
        set_enq_meta("flowID", flowID);
        set_enq_meta("pkt_len", pkt.len);
        set_deq_meta("flowID", flowID);
        set_deq_meta("pkt_len", pkt.len);
        var bufSize = bufSize_reg.read(flowID);
        if (bufSize > FLOW_THRESH) {
            mark(flowID);          /* microburst culprit! */
        }
        forward_by_ip();
    }

    on buffer_enqueue {
        bufSize_reg.add(event.flowID, event.pkt_len);
    }

    on buffer_dequeue {
        bufSize_reg.sub(event.flowID, event.pkt_len);
    }
    '''

    program = compile_program(SOURCE)
    switch.load_program(program)

The pipeline: :mod:`repro.lang.lexer` tokenizes,
:mod:`repro.lang.parser` builds the AST, and :mod:`repro.lang.compiler`
validates declarations/events/builtins and produces a
:class:`~repro.lang.compiler.CompiledProgram` (a
:class:`~repro.arch.program.P4Program`) whose handlers interpret the
AST.
"""

from repro.lang.errors import LangError, LangSyntaxError, LangSemanticError
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse
from repro.lang.compiler import CompiledProgram, compile_program
from repro.lang.printer import pretty

__all__ = [
    "LangError",
    "LangSyntaxError",
    "LangSemanticError",
    "Token",
    "tokenize",
    "parse",
    "compile_program",
    "CompiledProgram",
    "pretty",
]
