"""Pretty-printer: AST → canonical source text.

``parse(pretty(ast))`` reproduces an equivalent AST (the round-trip
property the language tests verify), which makes compiled programs
serializable and diffable.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Call,
    Expr,
    ExprStmt,
    Field,
    If,
    Name,
    Number,
    ProgramAst,
    String,
    UnaryOp,
    VarDecl,
)

INDENT = "    "


def pretty(ast: ProgramAst) -> str:
    """Render a full program as canonical source text."""
    lines: List[str] = [f"program {ast.name};", ""]
    for decl in ast.registers:
        keyword = "shared_register" if decl.shared else "register"
        lines.append(f"{keyword}<{decl.width_bits}>({decl.size}) {decl.name};")
    for decl in ast.consts:
        lines.append(f"const {decl.name} = {decl.value};")
    if ast.registers or ast.consts:
        lines.append("")
    for handler in ast.handlers:
        header = "init" if handler.event is None else f"on {handler.event}"
        lines.append(f"{header} {{")
        lines.extend(_stmts(handler.body, 1))
        lines.append("}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _stmts(body, depth: int) -> List[str]:
    pad = INDENT * depth
    lines: List[str] = []
    for stmt in body:
        if isinstance(stmt, VarDecl):
            lines.append(f"{pad}var {stmt.name} = {pretty_expr(stmt.value)};")
        elif isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.name} = {pretty_expr(stmt.value)};")
        elif isinstance(stmt, ExprStmt):
            lines.append(f"{pad}{pretty_expr(stmt.call)};")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({pretty_expr(stmt.condition)}) {{")
            lines.extend(_stmts(stmt.then_body, depth + 1))
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                lines.extend(_stmts(stmt.else_body, depth + 1))
            lines.append(f"{pad}}}")
    return lines


def pretty_expr(expr: Expr) -> str:
    """Render one expression (fully parenthesized where nested)."""
    if isinstance(expr, Number):
        return str(expr.value)
    if isinstance(expr, String):
        return f'"{expr.value}"'
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, Field):
        return f"{expr.obj}.{expr.field}"
    if isinstance(expr, Call):
        args = ", ".join(pretty_expr(arg) for arg in expr.args)
        prefix = f"{expr.obj}." if expr.obj else ""
        return f"{prefix}{expr.name}({args})"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{_maybe_paren(expr.operand)}"
    if isinstance(expr, BinOp):
        return f"{_maybe_paren(expr.left)} {expr.op} {_maybe_paren(expr.right)}"
    raise TypeError(f"cannot print {expr!r}")  # pragma: no cover


def _maybe_paren(expr: Expr) -> str:
    if isinstance(expr, (BinOp, UnaryOp)):
        return f"({pretty_expr(expr)})"
    return pretty_expr(expr)
