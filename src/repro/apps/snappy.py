"""Snappy-style microburst detection on a baseline PISA architecture.

The comparison point for the paper's §2 claim: without enqueue/dequeue
events, per-flow buffer occupancy must be *approximated* from packet
arrivals alone (Chen et al., "Catching the Microburst Culprits with
Snappy", 2018).  Snappy keeps **multiple snapshot register arrays**:
time is sliced into windows sized to the queue drain time, each window
accumulates per-flow arrival bytes, and a flow's occupancy estimate is
the sum of its counters over the snapshots that plausibly still sit in
the buffer.

Costs relative to the event-driven detector:

* **State**: ``snapshot_count`` arrays instead of one — the "at least
  four-fold" the paper cites — plus rotation bookkeeping.
* **Placement**: estimation uses the egress queue depth, so detection
  happens in the egress pipeline, *after* the culprit's packets already
  sat in (and possibly overflowed) the buffer.
* **Accuracy**: the estimate is an approximation; bursts shorter than a
  window or straddling rotations are missed or misattributed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.common import ForwardingProgram
from repro.apps.microburst import Detection
from repro.arch.events import EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import ip_pair_hash
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.externs.register import Register
from repro.pisa.metadata import StandardMetadata


class SnappyDetector(ForwardingProgram):
    """Baseline-PISA microburst detection with snapshot registers.

    ``window_ps`` should approximate the time the buffer takes to drain
    ``flow_thresh_bytes`` at line rate; ``snapshot_count`` windows are
    kept (Snappy's k), so the estimate covers the last
    ``snapshot_count × window_ps`` of arrivals.
    """

    name = "snappy"

    def __init__(
        self,
        num_regs: int = 1024,
        flow_thresh_bytes: int = 8_000,
        snapshot_count: int = 4,
        window_ps: int = 50_000_000,  # 50 µs
        line_rate_gbps: float = 10.0,
    ) -> None:
        super().__init__()
        if snapshot_count < 2:
            raise ValueError(
                f"Snappy needs at least 2 snapshots, got {snapshot_count}"
            )
        if window_ps <= 0:
            raise ValueError(f"window must be positive, got {window_ps}")
        if line_rate_gbps <= 0:
            raise ValueError(f"line rate must be positive, got {line_rate_gbps}")
        self.num_regs = num_regs
        self.flow_thresh_bytes = flow_thresh_bytes
        self.snapshot_count = snapshot_count
        self.window_ps = window_ps
        self.line_rate_gbps = line_rate_gbps
        # The snapshot arrays: the ≥4× state the paper talks about.
        self.snapshots: List[Register] = [
            Register(num_regs, width_bits=32, name=f"snapshot{i}")
            for i in range(snapshot_count)
        ]
        # Rotation bookkeeping (further state the event-driven version
        # does not need).
        self.window_meta = Register(2, width_bits=64, name="window_meta")
        self.detections: List[Detection] = []
        self.packets_seen = 0

    # The Register externs live in a list, which the generic extern
    # discovery does not traverse; expose them explicitly.
    def externs(self):
        yield "window_meta", self.window_meta
        for i, snapshot in enumerate(self.snapshots):
            yield f"snapshot{i}", snapshot

    # ------------------------------------------------------------------
    # Ingress: plain forwarding (all the work happens at egress)
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.packets_seen += 1
        if pkt.get(Ipv4) is None:
            meta.drop()
            return
        self.forward_by_ip(pkt, meta)

    # ------------------------------------------------------------------
    # Egress: snapshot update + occupancy estimation
    # ------------------------------------------------------------------
    @handler(EventType.EGRESS_PACKET)
    def egress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        ip = pkt.get(Ipv4)
        if ip is None:
            return
        self._rotate_if_needed(ctx.now_ps)
        flow_id = ip_pair_hash(ip.src, ip.dst, self.num_regs)
        current = int(self.window_meta.read(0))
        self.snapshots[current].add(flow_id, pkt.total_len)
        # Snappy's estimator: only arrivals still plausibly buffered
        # count, i.e. the snapshots covering the queue's drain time.
        drain_ps = meta.deq_qdepth_bytes * 8 * 1_000 / self.line_rate_gbps
        windows_in_buffer = min(
            self.snapshot_count, 1 + int(drain_ps // self.window_ps)
        )
        estimate = 0
        for age in range(windows_in_buffer):
            index = (current - age) % self.snapshot_count
            estimate += self.snapshots[index].read(flow_id)
        if estimate > self.flow_thresh_bytes and meta.deq_qdepth_bytes > 0:
            self.detections.append(Detection(ctx.now_ps, flow_id, estimate))

    def _rotate_if_needed(self, now_ps: int) -> None:
        last_rotation = self.window_meta.read(1)
        if now_ps - last_rotation < self.window_ps:
            return
        # Advance (possibly several windows if traffic was quiet).
        windows_passed = (now_ps - last_rotation) // self.window_ps
        current = int(self.window_meta.read(0))
        for step in range(min(int(windows_passed), self.snapshot_count)):
            current = (current + 1) % self.snapshot_count
            self.snapshots[current].clear()
        self.window_meta.write(0, current)
        self.window_meta.write(1, now_ps)

    # ------------------------------------------------------------------
    # Analysis helpers (mirror MicroburstDetector's)
    # ------------------------------------------------------------------
    def detected_flows(self) -> List[int]:
        """Distinct flow ids flagged, in first-seen order."""
        seen: List[int] = []
        for detection in self.detections:
            if detection.flow_id not in seen:
                seen.append(detection.flow_id)
        return seen

    def first_detection_ps(self, flow_id: int) -> Optional[int]:
        """Time of the first detection of ``flow_id``, or None."""
        for detection in self.detections:
            if detection.flow_id == flow_id:
                return detection.time_ps
        return None
