"""Data-plane state migration on re-route (paper §3, swing state).

"re-routing traffic when links fail usually requires the control plane
to detect the failure, re-route the affected flows, and potentially
migrate data-plane state from a flow's old path to its new one.  By
introducing link status change events, the data plane can immediately
respond to link failures, autonomously re-route affected flows and
migrate data-plane state.  This makes it much easier to implement Fast
Re-Route and swing-state."

The scenario: transit switches police each flow with a per-flow byte
budget.  When the primary path fails, the head-end switch re-routes
*and* ships each flow's consumed-budget counter to the backup path in a
state-transfer packet it generates from the LINK_STATUS handler.
Without migration the backup switch starts every flow at zero and
over-admits traffic that already spent its budget.

* :class:`BudgetTransitProgram` — a transit switch that enforces the
  per-flow budget and accepts incoming state-transfer packets.
* :class:`SwingStateHeadProgram` — FRR plus state migration via
  generated packets.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.frr import FastRerouteProgram
from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import flow_hash
from repro.packet.headers import EtherType, Ethernet, Ipv4, Udp
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.metadata import StandardMetadata

#: UDP destination port carrying state-transfer records.
MIGRATION_PORT = 9901


def make_state_transfer(flow_index: int, consumed_bytes: int, ts_ps: int = 0) -> Packet:
    """A state-transfer packet carrying one flow's consumed budget.

    The record rides the UDP sport/ipv4 identification fields (a compact
    fixed-format header, as a real P4 program would define).
    """
    udp = Udp(sport=flow_index, dport=MIGRATION_PORT, length=8)
    ip = Ipv4(
        src=0x7F000001,
        dst=0x7F000002,
        protocol=17,
        total_len=28,
        identification=consumed_bytes & 0xFFFF,
        frag_offset=(consumed_bytes >> 16) & 0x1FFF,
    )
    eth = Ethernet(src=0, dst=0, ethertype=int(EtherType.IPV4))
    pkt = Packet(headers=[eth, ip, udp], payload_len=22, ts_created_ps=ts_ps)
    pkt.generated = True
    return pkt


def read_state_transfer(pkt: Packet) -> Optional[Dict[str, int]]:
    """Decode a state-transfer packet, or None if it is not one."""
    udp = pkt.get(Udp)
    ip = pkt.get(Ipv4)
    if udp is None or ip is None or udp.dport != MIGRATION_PORT:
        return None
    return {
        "flow_index": udp.sport,
        "consumed_bytes": (ip.frag_offset << 16) | ip.identification,
    }


class BudgetTransitProgram(ForwardingProgram):
    """A transit switch enforcing a per-flow byte budget.

    Flows that exhaust ``budget_bytes`` are dropped.  Incoming
    state-transfer packets pre-load a flow's consumed counter — the
    migration receive side.
    """

    name = "budget-transit"

    def __init__(self, budget_bytes: int = 50_000, num_flows: int = 256) -> None:
        super().__init__()
        if budget_bytes <= 0:
            raise ValueError(f"budget must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.consumed = SharedRegister(num_flows, width_bits=32, name="consumed")
        self.over_budget_drops = 0
        self.admitted_bytes = 0
        self.transfers_received = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        record = read_state_transfer(pkt)
        if record is not None:
            self.consumed.write(
                record["flow_index"] % self.consumed.size, record["consumed_bytes"]
            )
            self.transfers_received += 1
            meta.drop()  # consumed by this switch
            return
        flow_id = flow_hash(pkt, self.consumed.size)
        if flow_id is None:
            meta.drop()
            return
        used = self.consumed.read(flow_id)
        if used + pkt.total_len > self.budget_bytes:
            self.over_budget_drops += 1
            meta.drop()
            return
        self.consumed.add(flow_id, pkt.total_len)
        self.admitted_bytes += pkt.total_len
        self.forward_by_ip(pkt, meta)


class SwingStateHeadProgram(FastRerouteProgram):
    """FRR plus swing-state migration from the LINK_STATUS handler.

    The head-end mirrors the transit budget accounting (it sees every
    flow's packets), so on failover it can generate one state-transfer
    packet per active flow toward the backup path.
    """

    name = "swing-state"

    def __init__(self, num_flows: int = 256, migrate: bool = True) -> None:
        super().__init__()
        self.migrate = migrate
        self.mirror = SharedRegister(num_flows, width_bits=32, name="mirror")
        self.transfers_sent = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.mirror.size)
        if flow_id is not None:
            self.mirror.add(flow_id, pkt.total_len)
        self.forward_by_ip(pkt, meta)

    @handler(EventType.LINK_STATUS)
    def on_link_status(self, ctx: ProgramContext, event: Event) -> None:
        super().on_link_status(ctx, event)
        if event.meta["up"] or not self.migrate:
            return
        port = event.meta["port"]
        backup_ports = {
            self.backup[dst]
            for dst, primary in self.primary.items()
            if primary == port and dst in self.backup
        }
        for backup_port in backup_ports:
            for flow_index in range(self.mirror.size):
                consumed = self.mirror.read(flow_index)
                if consumed == 0:
                    continue
                transfer = make_state_transfer(flow_index, consumed, ctx.now_ps)
                transfer.meta["probe_out_port"] = backup_port
                ctx.generate_packet(transfer)
                self.transfers_sent += 1

    @handler(EventType.GENERATED_PACKET)
    def on_generated(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        meta.send_to_port(pkt.meta["probe_out_port"])
