"""NetCache-style in-network key-value caching (paper §3).

NetCache (Jin et al. 2017) caches hot items in the switch to absorb
skewed key-value load.  The paper adds two event-driven improvements:
"Timer events allow the programmer to write more sophisticated cache
replacement policies, such as approximate least-recently-used (LRU),
entirely in the data plane.  Timer events can also be used to quickly
clear all NetCache statistics, which ... would allow the cache to more
rapidly react to workload changes."

:class:`NetCacheProgram` implements GET/PUT handling with a bounded
cache, per-slot hit counters, a miss count-min sketch for admission,
and a timer that (a) decays hit counters — approximate LRU — and
(b) clears the miss statistics each window.  Setting
``timer_enabled=False`` yields the baseline whose statistics only the
control plane could clear (so the cache adapts slowly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.builder import make_kv_request
from repro.packet.headers import Ipv4, KeyValue
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.externs.sketch import CountMinSketch
from repro.pisa.metadata import StandardMetadata

CACHE_TIMER = 6


@dataclass
class CacheSlot:
    """One cache entry."""

    key: int
    value: int


class NetCacheProgram(ForwardingProgram):
    """A switch KV cache with timer-driven approximate LRU."""

    name = "netcache"

    def __init__(
        self,
        cache_slots: int = 64,
        admit_threshold: int = 4,
        decay_period_ps: int = 1_000_000_000,  # 1 ms stat windows
        timer_enabled: bool = True,
    ) -> None:
        super().__init__()
        if cache_slots <= 0:
            raise ValueError(f"cache size must be positive, got {cache_slots}")
        if admit_threshold <= 0:
            raise ValueError(f"admit threshold must be positive, got {admit_threshold}")
        self.cache_slots = cache_slots
        self.admit_threshold = admit_threshold
        self.decay_period_ps = decay_period_ps
        self.timer_enabled = timer_enabled
        self._cache: Dict[int, CacheSlot] = {}  # key -> slot
        self.hit_counters = SharedRegister(cache_slots, width_bits=32, name="hits")
        self._slot_of_key: Dict[int, int] = {}
        self._key_of_slot: Dict[int, int] = {}
        self.miss_sketch = CountMinSketch(512, 2, name="miss_cms")
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.evictions = 0
        self.decay_ticks = 0

    def on_load(self, ctx: ProgramContext) -> None:
        if self.timer_enabled:
            ctx.configure_timer(CACHE_TIMER, self.decay_period_ps)

    # ------------------------------------------------------------------
    # Timer: approximate LRU decay + miss-stat clearing
    # ------------------------------------------------------------------
    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        self.decay_ticks += 1
        for slot in range(self.hit_counters.size):
            self.hit_counters.write(slot, self.hit_counters.read(slot) // 2)
        self.miss_sketch.clear()

    # ------------------------------------------------------------------
    # Ingress: GET/PUT handling
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        kv = pkt.get(KeyValue)
        if kv is None:
            self.forward_by_ip(pkt, meta)
            return
        if kv.op == KeyValue.OP_GET:
            self._handle_get(ctx, pkt, kv, meta)
        elif kv.op == KeyValue.OP_PUT:
            self._handle_put(pkt, kv, meta)
        else:
            # Replies from the server pass through toward the client.
            self.forward_by_ip(pkt, meta)

    def _handle_get(
        self, ctx: ProgramContext, pkt: Packet, kv: KeyValue, meta: StandardMetadata
    ) -> None:
        slot_index = self._slot_of_key.get(kv.key)
        if slot_index is not None:
            self.hits += 1
            self.hit_counters.add(slot_index, 1)
            # Reply directly from the switch: turn the request around.
            kv.set(op=KeyValue.OP_REPLY_HIT, value=self._cache[kv.key].value)
            ip = pkt.get(Ipv4)
            if ip is not None:
                src, dst = ip.src, ip.dst
                ip.set(src=dst, dst=src)
            meta.send_to_port(meta.ingress_port)
            return
        self.misses += 1
        key_bytes = kv.key.to_bytes(8, "big")
        self.miss_sketch.update(key_bytes)
        if self.miss_sketch.query(key_bytes) >= self.admit_threshold:
            pkt.meta["netcache_admit"] = 1  # admit on the reply path
        self.forward_by_ip(pkt, meta)

    def _handle_put(self, pkt: Packet, kv: KeyValue, meta: StandardMetadata) -> None:
        if kv.key in self._cache:
            self._cache[kv.key].value = kv.value
        self.forward_by_ip(pkt, meta)

    # ------------------------------------------------------------------
    # Admission (invoked when a server reply transits back)
    # ------------------------------------------------------------------
    def observe_reply(self, key: int, value: int) -> None:
        """Cache-admission hook for replies to flagged misses."""
        if key in self._cache:
            self._cache[key].value = value
            return
        if self.miss_sketch.query(key.to_bytes(8, "big")) < self.admit_threshold:
            return
        self.admissions += 1
        if len(self._cache) >= self.cache_slots:
            self._evict_coldest()
        slot = self._free_slot()
        self._cache[key] = CacheSlot(key, value)
        self._slot_of_key[key] = slot
        self._key_of_slot[slot] = key
        self.hit_counters.write(slot, 1)

    def _free_slot(self) -> int:
        for slot in range(self.cache_slots):
            if slot not in self._key_of_slot:
                return slot
        raise RuntimeError("no free slot after eviction")

    def _evict_coldest(self) -> None:
        coldest = min(
            self._key_of_slot, key=lambda slot: self.hit_counters.read(slot)
        )
        key = self._key_of_slot.pop(coldest)
        del self._slot_of_key[key]
        del self._cache[key]
        self.hit_counters.write(coldest, 0)
        self.evictions += 1

    @property
    def hit_ratio(self) -> float:
        """GET hit ratio so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def cached_keys(self) -> List[int]:
        """Currently cached keys."""
        return sorted(self._cache)


class KvServerApp:
    """A host-side key-value server.

    Attach to a :class:`~repro.net.host.Host` as a sink; it answers
    GETs from its store, applies PUTs, and (for GETs the switch flagged
    for admission) tells the switch program to cache the reply —
    modeling NetCache's reply-path admission.
    """

    def __init__(self, host, store: Dict[int, int], cache: Optional[NetCacheProgram] = None) -> None:
        self.host = host
        self.store = dict(store)
        self.cache = cache
        self.requests_served = 0
        host.add_sink(self._on_packet)

    def _on_packet(self, pkt: Packet) -> None:
        kv = pkt.get(KeyValue)
        if kv is None:
            return
        if kv.op == KeyValue.OP_PUT:
            self.store[kv.key] = kv.value
            return
        if kv.op != KeyValue.OP_GET:
            return
        self.requests_served += 1
        value = self.store.get(kv.key, 0)
        hit = kv.key in self.store
        ip = pkt.get(Ipv4)
        reply = make_kv_request(
            op=KeyValue.OP_REPLY_HIT if hit else KeyValue.OP_REPLY_MISS,
            key=kv.key,
            value=value,
            src_ip=ip.dst if ip else 0,
            dst_ip=ip.src if ip else 0,
            ts_ps=self.host.sim.now_ps,
        )
        if self.cache is not None and pkt.meta.get("netcache_admit"):
            self.cache.observe_reply(kv.key, value)
        self.host.send(reply)
