"""Heavy-hitter detection with a periodically reset count-min sketch.

The paper's §1 motivating example of control-plane overhead: "the
Count-Min Sketch is a commonly used data-plane primitive that must be
periodically reset.  When a CMS is used in a baseline PISA
architecture, the control plane must be responsible for performing the
reset operation.  This can lead to significant overhead for the control
plane, especially if the data structure must be frequently reset."

:class:`HeavyHitterDetector` supports three reset modes:

* ``"timer"`` — a TIMER event clears the sketch in the data plane
  (zero control-plane involvement, exact window boundaries),
* ``"control"`` — the experiment wires a
  :class:`~repro.control.plane.ControlPlane` that clears the sketch
  over the PCIe path (latency → late/blurred windows, busy controller),
* ``"none"`` — never reset (estimates blur across the whole run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.packet import Packet
from repro.pisa.externs.sketch import CountMinSketch
from repro.pisa.metadata import StandardMetadata

HH_TIMER = 5


@dataclass
class HeavyHitterReport:
    """One flow flagged as a heavy hitter."""

    time_ps: int
    flow_key: Tuple
    estimate: int


class HeavyHitterDetector(ForwardingProgram):
    """CMS-based heavy-hitter detection with selectable reset mode."""

    name = "heavy-hitters"

    RESET_MODES = ("timer", "control", "none")

    def __init__(
        self,
        width: int = 2048,
        depth: int = 3,
        threshold_packets: int = 200,
        window_ps: int = 1_000_000_000,  # 1 ms windows
        reset_mode: str = "timer",
    ) -> None:
        super().__init__()
        if reset_mode not in self.RESET_MODES:
            raise ValueError(f"unknown reset mode {reset_mode!r}")
        if threshold_packets <= 0:
            raise ValueError(f"threshold must be positive, got {threshold_packets}")
        self.sketch = CountMinSketch(width, depth, name="hh_cms")
        self.threshold_packets = threshold_packets
        self.window_ps = window_ps
        self.reset_mode = reset_mode
        self.reports: List[HeavyHitterReport] = []
        self._reported_this_window: Set[Tuple] = set()
        self.windows_elapsed = 0
        self.resets_performed = 0

    def on_load(self, ctx: ProgramContext) -> None:
        if self.reset_mode == "timer":
            ctx.configure_timer(HH_TIMER, self.window_ps)

    # ------------------------------------------------------------------
    # Timer: the data-plane reset
    # ------------------------------------------------------------------
    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        self.sketch.clear()
        self._reported_this_window.clear()
        self.windows_elapsed += 1
        self.resets_performed += 1

    # ------------------------------------------------------------------
    # Control-plane reset entry point (called by the ControlPlane model)
    # ------------------------------------------------------------------
    def control_reset(self) -> None:
        """What a control-plane clear does when it finally lands."""
        self.sketch.clear()
        self._reported_this_window.clear()
        self.resets_performed += 1

    # ------------------------------------------------------------------
    # Ingress: update + threshold test
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        ftuple = pkt.five_tuple()
        if ftuple is None:
            meta.drop()
            return
        key = ftuple.as_bytes()
        self.sketch.update(key)
        estimate = self.sketch.query(key)
        flow_key = (ftuple.src_ip, ftuple.dst_ip, ftuple.sport, ftuple.dport)
        if estimate >= self.threshold_packets and flow_key not in self._reported_this_window:
            self._reported_this_window.add(flow_key)
            self.reports.append(HeavyHitterReport(ctx.now_ps, flow_key, estimate))
        self.forward_by_ip(pkt, meta)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def reported_flow_keys(self) -> Set[Tuple]:
        """All distinct flows ever reported."""
        return {report.flow_key for report in self.reports}
