"""Shared application plumbing.

Most programs need plain destination-IP forwarding underneath their
interesting logic.  :class:`ForwardingProgram` provides it: a
dict-backed route table (dst IP → output port), an installation helper
the experiments call after route computation, and a default ingress
handler subclasses invoke.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch.program import P4Program
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.flowcache import VersionedDict
from repro.pisa.metadata import StandardMetadata


class ForwardingProgram(P4Program):
    """A program with destination-IP forwarding state.

    ``routes`` maps destination IP to output port.  Unroutable packets
    are dropped (and counted), which keeps experiments honest about
    missing table entries.  When ``ttl_handling`` is on (the default),
    forwarding decrements the IPv4 TTL and drops expired packets — the
    guard that contains forwarding loops in any experiment topology.
    """

    def __init__(self, ttl_handling: bool = True) -> None:
        super().__init__()
        # A VersionedDict, not a plain dict: route flips from non-packet
        # handlers (FRR rewires on LINK_STATUS) bump its generation, so
        # the flow-decision cache evicts every forwarding decision that
        # was recorded against the old routes before the next packet.
        self.routes: Dict[int, int] = VersionedDict()
        self.ttl_handling = ttl_handling
        self.unrouted_drops = 0
        self.ttl_drops = 0

    def install_route(self, dst_ip: int, port: int) -> None:
        """Install (or replace) one forwarding entry."""
        if port < 0:
            raise ValueError(f"port must be non-negative, got {port}")
        self.routes[dst_ip] = port

    def install_routes(self, routes: Dict[int, int]) -> None:
        """Bulk route installation."""
        for dst_ip, port in routes.items():
            self.install_route(dst_ip, port)

    def forward_by_ip(self, pkt: Packet, meta: StandardMetadata) -> Optional[int]:
        """Set ``egress_spec`` from the route table.

        Returns the chosen port, or None when the packet was dropped
        (non-IP or unrouted).
        """
        ip = pkt.get(Ipv4)
        if ip is None:
            self.unrouted_drops += 1
            meta.drop()
            return None
        port = self.routes.get(ip.dst)
        if port is None:
            self.unrouted_drops += 1
            meta.drop()
            return None
        if self.ttl_handling:
            if ip.ttl <= 1:
                self.ttl_drops += 1
                meta.drop()
                return None
            ip.set(ttl=ip.ttl - 1)
        meta.send_to_port(port)
        return port
