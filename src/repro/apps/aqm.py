"""Active queue management from events (paper §3, §5).

AQM "was one of the motivating applications for our work": RED needs
the average queue occupancy, FRED needs per-active-flow occupancy and
the active flow count — congestion signals that enqueue and dequeue
events provide directly in the ingress pipeline, where the drop
decision must be made.

* :class:`RedAqm` — Random Early Detection: an EWMA of the queue depth
  maintained by enqueue events; the ingress control drops
  probabilistically between two thresholds.
* :class:`FredAqm` — FRED-like flow fairness (the §5 student project):
  per-active-flow occupancy and active flow count from enqueue/dequeue
  events; flows above their fair share are dropped at ingress.  A timer
  event samples the buffer occupancy into a time series for a monitor.
* :class:`DropTailProgram` — the baseline: no AQM, queues overflow.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import flow_hash
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.metadata import StandardMetadata
from repro.sim.rng import SeededRng

AQM_TIMER = 2


class RedAqm(ForwardingProgram):
    """Random Early Detection with event-maintained average occupancy.

    The EWMA updates on every enqueue and dequeue event:
    ``avg ← avg + w·(instant − avg)`` with ``w = 1/2**weight_shift``
    (shift-friendly, as hardware RED implementations use).
    """

    name = "red"

    def __init__(
        self,
        min_thresh_bytes: int = 15_000,
        max_thresh_bytes: int = 45_000,
        max_drop_prob: float = 0.1,
        weight_shift: int = 4,
        seed: int = 7,
    ) -> None:
        super().__init__()
        if min_thresh_bytes >= max_thresh_bytes:
            raise ValueError("min threshold must be below max threshold")
        if not 0 < max_drop_prob <= 1:
            raise ValueError(f"max drop prob must be in (0, 1], got {max_drop_prob}")
        self.min_thresh_bytes = min_thresh_bytes
        self.max_thresh_bytes = max_thresh_bytes
        self.max_drop_prob = max_drop_prob
        self.weight_shift = weight_shift
        # avg_qdepth[0] holds the EWMA, scaled by 2**weight_shift for
        # integer arithmetic.
        self.avg_qdepth = SharedRegister(1, width_bits=32, name="avg_qdepth")
        self.early_drops = 0
        self.admitted = 0
        self._rng = SeededRng(seed, "red")

    def _avg(self) -> int:
        return self.avg_qdepth.read(0) >> self.weight_shift

    def _update_avg(self, instant_bytes: int) -> None:
        scaled = self.avg_qdepth.read(0)
        avg = scaled >> self.weight_shift
        scaled += instant_bytes - avg
        self.avg_qdepth.write(0, max(0, scaled))

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        self._update_avg(event.meta["buffer_bytes"])

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self._update_avg(event.meta["buffer_bytes"])

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        avg = self._avg()
        if avg >= self.max_thresh_bytes:
            self.early_drops += 1
            meta.drop()
            return
        if avg > self.min_thresh_bytes:
            span = self.max_thresh_bytes - self.min_thresh_bytes
            prob = self.max_drop_prob * (avg - self.min_thresh_bytes) / span
            if self._rng.random() < prob:
                self.early_drops += 1
                meta.drop()
                return
        self.admitted += 1
        self.forward_by_ip(pkt, meta)


class FredAqm(ForwardingProgram):
    """FRED-like per-flow fairness from enqueue/dequeue events.

    Congestion signals (total occupancy, per-active-flow occupancy,
    active flow count) are exactly the three the §5 student project
    computed.  A flow whose buffered bytes exceed
    ``fairness_factor × total / active_flows`` is dropped at ingress
    once the buffer passes ``min_buffer_bytes``.
    """

    name = "fred"

    def __init__(
        self,
        num_regs: int = 1024,
        fairness_factor: float = 2.0,
        min_buffer_bytes: int = 10_000,
        sample_period_ps: int = 100_000_000,  # 100 µs buffer samples
    ) -> None:
        super().__init__()
        if fairness_factor <= 0:
            raise ValueError(f"fairness factor must be positive, got {fairness_factor}")
        self.fairness_factor = fairness_factor
        self.min_buffer_bytes = min_buffer_bytes
        self.sample_period_ps = sample_period_ps
        self.flow_bytes = SharedRegister(num_regs, width_bits=32, name="flow_bytes")
        # totals[0] = buffered bytes, totals[1] = active flow count.
        self.totals = SharedRegister(2, width_bits=32, name="totals")
        self.unfair_drops = 0
        self.admitted = 0
        #: (time_ps, buffer_bytes, active_flows) samples from the timer.
        self.occupancy_series: List[Tuple[int, int, int]] = []

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(AQM_TIMER, self.sample_period_ps)

    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        self.occupancy_series.append(
            (ctx.now_ps, self.totals.read(0), self.totals.read(1))
        )

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.flow_bytes.size)
        if flow_id is None:
            meta.drop()
            return
        total = self.totals.read(0)
        if total > self.min_buffer_bytes:
            active = max(1, self.totals.read(1))
            fair_share = self.fairness_factor * total / active
            if self.flow_bytes.read(flow_id) > fair_share:
                self.unfair_drops += 1
                meta.drop()
                return
        self.admitted += 1
        meta.enq_meta["flowID"] = flow_id
        meta.enq_meta["pkt_len"] = pkt.total_len
        meta.deq_meta["flowID"] = flow_id
        meta.deq_meta["pkt_len"] = pkt.total_len
        self.forward_by_ip(pkt, meta)

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        flow_id = event.meta["flowID"]
        before = self.flow_bytes.read(flow_id)
        self.flow_bytes.write(flow_id, before + event.meta["pkt_len"])
        self.totals.add(0, event.meta["pkt_len"])
        if before == 0:
            self.totals.add(1, 1)  # flow became active

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        flow_id = event.meta["flowID"]
        after = self.flow_bytes.sub(flow_id, event.meta["pkt_len"])
        self.totals.sub(0, event.meta["pkt_len"])
        if after == 0:
            self.totals.sub(1, 1)  # flow drained out


class PieAqm(ForwardingProgram):
    """PIE (Proportional Integral controller Enhanced, RFC 8033 shape).

    PIE is the AQM whose core *requires* periodic work: every update
    interval a controller recomputes the drop probability from the
    queueing latency and its trend::

        p += alpha * (latency - target) + beta * (latency - latency_old)

    On a baseline PISA device that control loop must live in the
    control plane; with timer events it runs in the data plane.  The
    queueing latency comes from the buffer occupancy (enqueue/dequeue
    events) divided by the drain rate.
    """

    name = "pie"

    #: Fixed-point scale for the drop probability register.
    PROB_SCALE = 1 << 20

    def __init__(
        self,
        target_delay_ps: int = 20 * 1_000_000,  # 20 µs target latency
        update_period_ps: int = 100 * 1_000_000,  # 100 µs control interval
        drain_rate_gbps: float = 10.0,
        alpha: float = 0.25,
        beta: float = 2.5,
        seed: int = 19,
    ) -> None:
        super().__init__()
        if target_delay_ps <= 0 or update_period_ps <= 0:
            raise ValueError("target delay and update period must be positive")
        if drain_rate_gbps <= 0:
            raise ValueError("drain rate must be positive")
        self.target_delay_ps = target_delay_ps
        self.update_period_ps = update_period_ps
        self.drain_rate_gbps = drain_rate_gbps
        self.alpha = alpha
        self.beta = beta
        # state[0] = drop probability (fixed point), state[1] = buffered
        # bytes, state[2] = previous latency sample (ps).
        self.state = SharedRegister(3, width_bits=64, name="pie_state")
        self.early_drops = 0
        self.admitted = 0
        self.updates = 0
        self._rng = SeededRng(seed, "pie")

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(AQM_TIMER, self.update_period_ps)

    def _latency_ps(self) -> int:
        buffered = self.state.read(1)
        return int(buffered * 8 * 1_000 / self.drain_rate_gbps)

    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        self.updates += 1
        latency = self._latency_ps()
        previous = self.state.read(2)
        error = (latency - self.target_delay_ps) / self.target_delay_ps
        trend = (latency - previous) / self.target_delay_ps
        prob = self.state.read(0) / self.PROB_SCALE
        prob += self.alpha * error * 0.01 + self.beta * trend * 0.01
        prob = min(1.0, max(0.0, prob))
        self.state.write(0, int(prob * self.PROB_SCALE))
        self.state.write(2, latency)

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        self.state.write(1, event.meta["buffer_bytes"])

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self.state.write(1, event.meta["buffer_bytes"])

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        prob = self.state.read(0) / self.PROB_SCALE
        if prob > 0 and self._rng.random() < prob:
            self.early_drops += 1
            meta.drop()
            return
        self.admitted += 1
        self.forward_by_ip(pkt, meta)

    def drop_probability(self) -> float:
        """The controller's current drop probability."""
        return self.state.read(0) / self.PROB_SCALE


class DropTailProgram(ForwardingProgram):
    """No AQM at all: forward and let the buffer tail-drop."""

    name = "drop-tail"

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.forward_by_ip(pkt, meta)
