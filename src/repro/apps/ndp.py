"""NDP-style trimming and priority forwarding (paper §3).

NDP (Handley et al. 2017) keeps switch queues tiny and, when a queue
overflows, *trims* the packet to its headers and forwards the header at
high priority so the receiver learns exactly what was lost.  On a
baseline PISA device there is no way to act on the drop; with a
BUFFER_OVERFLOW event the program regenerates the dropped packet's
headers and sends them through the priority queue.

Deploy on an architecture with two queues per port and a strict
priority scheduler: queue 0 carries (high-priority) trimmed headers and
control, queue 1 carries data.
"""

from __future__ import annotations


from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata

#: Queue indices under the strict-priority scheduler.
CONTROL_QUEUE = 0
DATA_QUEUE = 1


class NdpProgram(ForwardingProgram):
    """Trim-on-overflow with priority forwarding of headers."""

    name = "ndp"

    def __init__(self) -> None:
        super().__init__()
        self.trimmed = 0
        self.trim_failures = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        port = self.forward_by_ip(pkt, meta)
        if port is None:
            return
        if pkt.meta.get("ndp_trimmed"):
            meta.queue_id = CONTROL_QUEUE
        else:
            meta.queue_id = DATA_QUEUE

    # ------------------------------------------------------------------
    # Buffer overflow: trim and resend the header
    # ------------------------------------------------------------------
    @handler(EventType.BUFFER_OVERFLOW)
    def on_overflow(self, ctx: ProgramContext, event: Event) -> None:
        dropped = event.pkt
        if dropped is None or dropped.meta.get("ndp_trimmed"):
            # Never trim a trim: if even the control queue overflows,
            # the notification is simply lost (as in NDP).
            self.trim_failures += 1
            return
        header_only = dropped.clone()
        header_only.payload_len = 0
        ip = header_only.get(Ipv4)
        if ip is not None:
            ip.set(total_len=header_only.header_len - 14)
        header_only.meta["ndp_trimmed"] = 1
        header_only.meta["probe_out_port"] = event.meta["port"]
        self.trimmed += 1
        ctx.generate_packet(header_only)

    @handler(EventType.GENERATED_PACKET)
    def on_generated(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        meta.send_to_port(pkt.meta["probe_out_port"])
        meta.queue_id = CONTROL_QUEUE


class TailDropProgram(ForwardingProgram):
    """The baseline: overflow means silent loss."""

    name = "tail-drop"

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        port = self.forward_by_ip(pkt, meta)
        if port is not None:
            meta.queue_id = DATA_QUEUE
