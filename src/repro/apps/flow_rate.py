"""Time-windowed flow-rate measurement (paper §5, student project).

"One student group demonstrated how to use timer events in conjunction
with a simple shift register to accurately measure flow rates in the
data plane."

* :class:`FlowRateMonitor` — the event-driven version: per-flow sliding
  windows (:class:`~repro.pisa.externs.window.SlidingWindow`) advanced
  by timer events; a flow's rate is its window byte total divided by
  the window duration.
* :class:`EwmaRateEstimator` — the best a baseline architecture can do
  with packet events alone: a per-flow EWMA over inter-arrival gaps,
  which over- and under-shoots on bursty traffic (the comparison the
  flow-rate bench draws).
"""

from __future__ import annotations


from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import flow_hash
from repro.packet.packet import Packet
from repro.pisa.externs.window import SlidingWindow
from repro.pisa.externs.register import Register
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import SECONDS

RATE_TIMER = 4


class FlowRateMonitor(ForwardingProgram):
    """Timer + shift-register flow rates (the event-driven design)."""

    name = "flow-rate"

    def __init__(
        self,
        num_flows: int = 256,
        slots: int = 8,
        slot_period_ps: int = 100_000_000,  # 100 µs slots → 800 µs window
    ) -> None:
        super().__init__()
        if slot_period_ps <= 0:
            raise ValueError(f"slot period must be positive, got {slot_period_ps}")
        self.windows = SlidingWindow(num_flows, slots, name="rate_windows")
        self.slot_period_ps = slot_period_ps
        self.shifts = 0

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(RATE_TIMER, self.slot_period_ps)

    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        self.windows.shift_all()
        self.shifts += 1

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.windows.size)
        if flow_id is None:
            meta.drop()
            return
        self.windows.accumulate(flow_id, pkt.total_len)
        self.forward_by_ip(pkt, meta)

    def rate_bps(self, flow_id: int) -> float:
        """The measured rate of ``flow_id`` over the sliding window."""
        return self.windows.rate_bps(flow_id, self.slot_period_ps)


class EwmaRateEstimator(ForwardingProgram):
    """Packet-events-only rate estimation (the baseline).

    Classic rate estimation without timers: on each packet, decay the
    estimate by the elapsed gap and add the packet's contribution —
    ``rate ← rate·exp(−gap/τ) + bytes/τ`` approximated linearly.  The
    estimate only updates when packets arrive, so it cannot decay
    during silences (a stopped flow appears to keep its last rate) —
    the qualitative failure the bench exposes.
    """

    name = "ewma-rate"

    def __init__(self, num_flows: int = 256, tau_ps: int = 800_000_000) -> None:
        super().__init__()
        if tau_ps <= 0:
            raise ValueError(f"time constant must be positive, got {tau_ps}")
        self.tau_ps = tau_ps
        self.last_seen = Register(num_flows, width_bits=64, name="last_seen")
        # Rates stored in bytes/second for register-friendly integers.
        self.rate_reg = Register(num_flows, width_bits=32, name="ewma_rate")

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.rate_reg.size)
        if flow_id is None:
            meta.drop()
            return
        now = ctx.now_ps
        last = self.last_seen.read(flow_id)
        self.last_seen.write(flow_id, now)
        gap = now - last if last else self.tau_ps
        # Linearized exponential decay, clamped to full decay.
        decay_num = max(0, self.tau_ps - gap)
        old_rate = self.rate_reg.read(flow_id)
        decayed = old_rate * decay_num // self.tau_ps
        contribution = pkt.total_len * SECONDS // self.tau_ps
        self.rate_reg.write(flow_id, min((1 << 32) - 1, decayed + contribution))
        self.forward_by_ip(pkt, meta)

    def rate_bps(self, flow_id: int) -> float:
        """The estimated rate of ``flow_id`` in bits per second."""
        return self.rate_reg.read(flow_id) * 8.0
