"""Programmable packet scheduling: PIFO + event-driven state (paper §3).

"Taking this one step further, we can construct a complete,
programmable packet scheduler using our event-driven model in
combination with the recently proposed Push-In-First-Out (PIFO)
queue."

:class:`WfqSchedulerProgram` implements start-time fair queueing
(STFQ), the canonical PIFO program:

* the ingress thread computes each packet's **rank** — the flow's
  virtual start time ``max(V, finish[flow])`` — and advances the flow's
  finish tag by ``pkt_len / weight``,
* the **dequeue event thread** advances the virtual time ``V`` to the
  rank of the packet just served — the state update that baseline PISA
  architectures cannot express, because the scheduler's state must
  change when the buffer *releases* a packet, not when one arrives.

The architecture is built with a :class:`~repro.tm.scheduler.PifoScheduler`
whose rank function reads the rank the program stamped into the packet.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import flow_hash
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.metadata import StandardMetadata

#: Key under which the ingress thread stamps the PIFO rank.
RANK_KEY = "pifo_rank"


def rank_of(pkt: Packet) -> int:
    """The rank function handed to :class:`PifoScheduler`."""
    return pkt.meta.get(RANK_KEY, 0)


class WfqSchedulerProgram(ForwardingProgram):
    """Start-time fair queueing over a PIFO, with event-driven V.

    ``weights`` maps flow index (hash bucket) to its weight; unlisted
    flows get weight 1.  Ranks are kept integral by scaling virtual
    time in units of bytes-per-unit-weight.
    """

    name = "wfq"

    def __init__(self, num_flows: int = 256, weights: Optional[Dict[int, int]] = None) -> None:
        super().__init__()
        self.num_flows = num_flows
        self.weights = dict(weights or {})
        for flow, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for flow {flow} must be positive")
        # virtual_time[0] holds V; finish_tags[i] the per-flow finish tag.
        self.virtual_time = SharedRegister(1, width_bits=64, name="virtual_time")
        self.finish_tags = SharedRegister(num_flows, width_bits=64, name="finish_tags")
        self.ranks_assigned = 0

    def weight_of(self, flow_id: int) -> int:
        """The configured weight of ``flow_id`` (default 1)."""
        return self.weights.get(flow_id, 1)

    # ------------------------------------------------------------------
    # Ingress: compute the packet's rank (STFQ start tag)
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.num_flows)
        if flow_id is None:
            meta.drop()
            return
        v_now = self.virtual_time.read(0)
        start = max(v_now, self.finish_tags.read(flow_id))
        self.finish_tags.write(
            flow_id, start + pkt.total_len // self.weight_of(flow_id)
        )
        pkt.meta[RANK_KEY] = start
        meta.deq_meta["rank"] = start
        self.ranks_assigned += 1
        self.forward_by_ip(pkt, meta)

    # ------------------------------------------------------------------
    # Dequeue event: advance virtual time (the event-driven piece)
    # ------------------------------------------------------------------
    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        rank = event.meta.get("rank", 0)
        if rank > self.virtual_time.read(0):
            self.virtual_time.write(0, rank)


class FifoSchedulerProgram(ForwardingProgram):
    """The baseline: no ranks, plain FIFO service."""

    name = "fifo-sched"

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.forward_by_ip(pkt, meta)
