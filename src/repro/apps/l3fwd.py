"""A classic multi-table L3 router — the flow cache's showcase program.

Three match-action tables chained the way production L3 pipelines chain
them:

* ``acl`` — a ternary permit/deny filter on (src, dst, protocol),
* ``routes`` — longest-prefix match on the destination address,
  selecting a next-hop id,
* ``nexthops`` — an exact table mapping next-hop id to the egress
  rewrite (output port, DSCP remark, TTL decrement).

A per-next-hop :class:`~repro.pisa.externs.counter.Counter` records
traffic; ``Counter.count`` is a blind write, so the flow-decision cache
replays it on every cached packet and the counters stay exact.

Every decision lives in versioned tables, so the whole walk is pure:
after the first packet of a flow records the pipeline's net effect,
later packets replay it without re-running the three lookups — until a
control-plane mutation bumps a table generation and evicts the flow.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.arch.events import EventType
from repro.arch.program import P4Program, ProgramContext, handler
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.action import Action
from repro.pisa.compile import (
    PipelineSpec,
    register_const_fold,
    register_value_fold,
)
from repro.pisa.externs.counter import Counter
from repro.pisa.metadata import DROP_PORT, StandardMetadata
from repro.pisa.table import ExactTable, LpmTable, TernaryTable


def _permit(pkt: Packet, meta: StandardMetadata) -> None:
    return None


def _deny(pkt: Packet, meta: StandardMetadata) -> None:
    meta.drop()


def _route_to(pkt: Packet, meta: StandardMetadata, nh: int = 0) -> None:
    pkt.meta["l3_nh"] = nh


def _forward(
    pkt: Packet, meta: StandardMetadata, port: int = 0, dscp: int = 0
) -> None:
    ip = pkt.get(Ipv4)
    ip.set(ttl=ip.ttl - 1, dscp=dscp)
    meta.send_to_port(port)


PERMIT = Action("permit", _permit)
DENY = Action("deny", _deny)
ROUTE_TO = Action("route_to", _route_to, ("nh",))
FORWARD = Action("forward", _forward, ("port", "dscp"))


# ----------------------------------------------------------------------
# Specialization folds (repro.pisa.compile)
#
# The fused bodies below are written against this program's ingress
# spec: FORWARD's fold reads the spec's ``ip`` local and skips the
# range checks ``Header.set`` would run, which is exact because the
# spec guards ``ttl > 1`` before any next-hop rewrite and the dscp is
# range-validated here at fold time.
# ----------------------------------------------------------------------
_DSCP_BITS = next(f.width_bits for f in Ipv4.FIELDS if f.name == "dscp")


def _fold_route_to(params):
    nh = params.get("nh")
    return nh if isinstance(nh, int) and nh >= 0 else None


def _fold_forward(params):
    port, dscp = params.get("port"), params.get("dscp")
    if (
        isinstance(port, int)
        and port >= 0
        and isinstance(dscp, int)
        and 0 <= dscp < (1 << _DSCP_BITS)
    ):
        return (port, dscp)
    return None


def _forward_body(v: str):
    return [
        f"_fp, _fd = {v}",
        "ip.ttl = ip.ttl - 1",
        "ip.dscp = _fd",
        "meta.egress_spec = _fp",
    ]


register_const_fold(PERMIT, lambda params: [])
register_const_fold(DENY, lambda params: [f"meta.egress_spec = {DROP_PORT}"])
register_value_fold(ROUTE_TO, _fold_route_to, lambda v: [f"pkt.meta['l3_nh'] = {v}"])
register_value_fold(FORWARD, _fold_forward, _forward_body)


class L3Router(P4Program):
    """ACL → LPM → next-hop rewrite, all table-driven and cacheable."""

    name = "l3fwd"

    # Sized for one /32 next hop per host on the largest stock fabric
    # (k=8 fat tree → 128 hosts); the counter is a flat array, so the
    # headroom costs a few hundred ints per switch.
    MAX_NEXT_HOPS = 256

    def __init__(self) -> None:
        super().__init__()
        self.acl = TernaryTable("l3fwd.acl")
        self.routes = LpmTable("l3fwd.routes")
        self.nexthops = ExactTable("l3fwd.nexthops")
        self.acl.set_default(PERMIT.bind())
        self.tx_counter = Counter(self.MAX_NEXT_HOPS, name="l3fwd.tx")
        self.non_ip_drops = 0
        self.acl_drops = 0
        self.unrouted_drops = 0
        self.ttl_drops = 0

    # ------------------------------------------------------------------
    # Control-plane helpers
    # ------------------------------------------------------------------
    def add_route(self, prefix: int, prefix_len: int, nh: int) -> None:
        """Point ``prefix/prefix_len`` at next-hop ``nh``."""
        self.routes.insert(prefix, prefix_len, ROUTE_TO.bind(nh=nh))

    def add_next_hop(self, nh: int, port: int, dscp: int = 0) -> None:
        """Define next-hop ``nh``: egress port plus a DSCP remark."""
        self.nexthops.insert((nh,), FORWARD.bind(port=port, dscp=dscp))

    def deny_flow(
        self,
        src: int = 0,
        src_mask: int = 0,
        dst: int = 0,
        dst_mask: int = 0,
        proto: int = 0,
        proto_mask: int = 0,
        priority: int = 10,
    ) -> None:
        """Install a ternary deny entry (masks of 0 wildcard a field)."""
        self.acl.insert(
            (src, dst, proto),
            (src_mask, dst_mask, proto_mask),
            priority,
            DENY.bind(),
        )

    def install_host_routes(self, host_ports: Dict[int, int]) -> None:
        """One /32 route + next-hop per (host IP → port) pair."""
        for nh, (dst_ip, port) in enumerate(sorted(host_ports.items())):
            self.add_next_hop(nh, port)
            self.add_route(dst_ip, 32, nh)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        ip = pkt.get(Ipv4)
        if ip is None:
            self.non_ip_drops += 1
            meta.drop()
            return
        self.acl.apply((ip.src, ip.dst, ip.protocol)).execute(pkt, meta)
        if meta.dropped:
            self.acl_drops += 1
            return
        route = self.routes.lookup_value(ip.dst)
        if route is None:
            self.unrouted_drops += 1
            meta.drop()
            return
        if ip.ttl <= 1:
            self.ttl_drops += 1
            meta.drop()
            return
        route.execute(pkt, meta)
        nh = pkt.meta["l3_nh"]
        self.nexthops.apply((nh,)).execute(pkt, meta)
        self.tx_counter.count(nh, pkt.total_len)

    # ------------------------------------------------------------------
    # Specialization (repro.pisa.compile)
    # ------------------------------------------------------------------
    #: The ingress control as a compilable spec: the same walk as
    #: :meth:`ingress`, with the three table applications written as
    #: directives the specializer inlines against the live entries.
    _INGRESS_SPEC = """\
ip = None
for _h in pkt.headers:
    if _h.__class__ is Ipv4:
        ip = _h
        break
if ip is None:
    prog.non_ip_drops += 1
    meta.egress_spec = DROP
    return
%apply acl ip.src, ip.dst, ip.protocol
if meta.egress_spec == DROP:
    prog.acl_drops += 1
    return
%lpm routes ip.dst -> nh
if nh is None:
    prog.unrouted_drops += 1
    meta.egress_spec = DROP
    return
if ip.ttl <= 1:
    prog.ttl_drops += 1
    meta.egress_spec = DROP
    return
pkt.meta["l3_nh"] = nh
%apply nexthops nh
tx_count(nh, pkt.total_len)
"""

    def pipeline_spec(self, kind: EventType):
        """The compilable ingress description for the specializer."""
        if kind is not EventType.INGRESS_PACKET:
            return None
        return PipelineSpec(
            source=self._INGRESS_SPEC,
            tables={
                "acl": self.acl,
                "routes": self.routes,
                "nexthops": self.nexthops,
            },
            names={
                "Ipv4": Ipv4,
                "prog": self,
                "tx_count": self.tx_counter.count,
                "DROP": DROP_PORT,
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def next_hop_stats(self) -> Iterable[Tuple[int, int, int]]:
        """(next-hop id, packets, bytes) rows for populated next hops."""
        for nh, (packets, nbytes) in enumerate(self.tx_counter.read_all()):
            if packets or nbytes:
                yield nh, packets, nbytes
