"""A classic multi-table L3 router — the flow cache's showcase program.

Three match-action tables chained the way production L3 pipelines chain
them:

* ``acl`` — a ternary permit/deny filter on (src, dst, protocol),
* ``routes`` — longest-prefix match on the destination address,
  selecting a next-hop id,
* ``nexthops`` — an exact table mapping next-hop id to the egress
  rewrite (output port, DSCP remark, TTL decrement).

A per-next-hop :class:`~repro.pisa.externs.counter.Counter` records
traffic; ``Counter.count`` is a blind write, so the flow-decision cache
replays it on every cached packet and the counters stay exact.

Every decision lives in versioned tables, so the whole walk is pure:
after the first packet of a flow records the pipeline's net effect,
later packets replay it without re-running the three lookups — until a
control-plane mutation bumps a table generation and evicts the flow.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.arch.events import EventType
from repro.arch.program import P4Program, ProgramContext, handler
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.action import Action
from repro.pisa.externs.counter import Counter
from repro.pisa.metadata import StandardMetadata
from repro.pisa.table import ExactTable, LpmTable, TernaryTable


def _permit(pkt: Packet, meta: StandardMetadata) -> None:
    return None


def _deny(pkt: Packet, meta: StandardMetadata) -> None:
    meta.drop()


def _route_to(pkt: Packet, meta: StandardMetadata, nh: int = 0) -> None:
    pkt.meta["l3_nh"] = nh


def _forward(
    pkt: Packet, meta: StandardMetadata, port: int = 0, dscp: int = 0
) -> None:
    ip = pkt.get(Ipv4)
    ip.set(ttl=ip.ttl - 1, dscp=dscp)
    meta.send_to_port(port)


PERMIT = Action("permit", _permit)
DENY = Action("deny", _deny)
ROUTE_TO = Action("route_to", _route_to, ("nh",))
FORWARD = Action("forward", _forward, ("port", "dscp"))


class L3Router(P4Program):
    """ACL → LPM → next-hop rewrite, all table-driven and cacheable."""

    name = "l3fwd"

    # Sized for one /32 next hop per host on the largest stock fabric
    # (k=8 fat tree → 128 hosts); the counter is a flat array, so the
    # headroom costs a few hundred ints per switch.
    MAX_NEXT_HOPS = 256

    def __init__(self) -> None:
        super().__init__()
        self.acl = TernaryTable("l3fwd.acl")
        self.routes = LpmTable("l3fwd.routes")
        self.nexthops = ExactTable("l3fwd.nexthops")
        self.acl.set_default(PERMIT.bind())
        self.tx_counter = Counter(self.MAX_NEXT_HOPS, name="l3fwd.tx")
        self.non_ip_drops = 0
        self.acl_drops = 0
        self.unrouted_drops = 0
        self.ttl_drops = 0

    # ------------------------------------------------------------------
    # Control-plane helpers
    # ------------------------------------------------------------------
    def add_route(self, prefix: int, prefix_len: int, nh: int) -> None:
        """Point ``prefix/prefix_len`` at next-hop ``nh``."""
        self.routes.insert(prefix, prefix_len, ROUTE_TO.bind(nh=nh))

    def add_next_hop(self, nh: int, port: int, dscp: int = 0) -> None:
        """Define next-hop ``nh``: egress port plus a DSCP remark."""
        self.nexthops.insert((nh,), FORWARD.bind(port=port, dscp=dscp))

    def deny_flow(
        self,
        src: int = 0,
        src_mask: int = 0,
        dst: int = 0,
        dst_mask: int = 0,
        proto: int = 0,
        proto_mask: int = 0,
        priority: int = 10,
    ) -> None:
        """Install a ternary deny entry (masks of 0 wildcard a field)."""
        self.acl.insert(
            (src, dst, proto),
            (src_mask, dst_mask, proto_mask),
            priority,
            DENY.bind(),
        )

    def install_host_routes(self, host_ports: Dict[int, int]) -> None:
        """One /32 route + next-hop per (host IP → port) pair."""
        for nh, (dst_ip, port) in enumerate(sorted(host_ports.items())):
            self.add_next_hop(nh, port)
            self.add_route(dst_ip, 32, nh)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        ip = pkt.get(Ipv4)
        if ip is None:
            self.non_ip_drops += 1
            meta.drop()
            return
        self.acl.apply((ip.src, ip.dst, ip.protocol)).execute(pkt, meta)
        if meta.dropped:
            self.acl_drops += 1
            return
        route = self.routes.lookup_value(ip.dst)
        if route is None:
            self.unrouted_drops += 1
            meta.drop()
            return
        if ip.ttl <= 1:
            self.ttl_drops += 1
            meta.drop()
            return
        route.execute(pkt, meta)
        nh = pkt.meta["l3_nh"]
        self.nexthops.apply((nh,)).execute(pkt, meta)
        self.tx_counter.count(nh, pkt.total_len)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def next_hop_stats(self) -> Iterable[Tuple[int, int, int]]:
        """(next-hop id, packets, bytes) rows for populated next hops."""
        for nh, (packets, nbytes) in enumerate(self.tx_counter.read_all()):
            if packets or nbytes:
                yield nh, packets, nbytes
