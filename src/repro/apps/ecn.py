"""Multi-bit ECN marking from enqueue/dequeue events (paper §3).

"This allows for variants of ECN marking, with packets carrying
multiple bits rather than just one, to communicate queue occupancy
along the path, or just the maximum queue occupancy at the
bottleneck."

* :class:`MultiBitEcnProgram` — enqueue/dequeue events maintain the
  true buffer occupancy; the ingress thread quantizes it into the
  6-bit DSCP field, keeping the *maximum* along the path (so the
  receiver learns the bottleneck's occupancy).
* :class:`SingleBitEcnProgram` — classic ECN: one bit, set when the
  occupancy exceeds a threshold.  The receiver can only infer
  "above/below K".

Receivers decode with :func:`decode_multi_bit` / :func:`decode_single_bit`;
the experiment scores both decoders against the true occupancy recorded
at marking time.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.metadata import StandardMetadata

#: DSCP is 6 bits: 64 quantization levels.
DSCP_LEVELS = 64


class _OccupancyBase(ForwardingProgram):
    """Shared enqueue/dequeue occupancy accounting."""

    def __init__(self) -> None:
        super().__init__()
        # occupancy[0]: current buffered bytes on this switch.
        self.occupancy = SharedRegister(1, width_bits=32, name="occupancy")

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        self.occupancy.write(0, event.meta["buffer_bytes"])

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self.occupancy.write(0, event.meta["buffer_bytes"])


class MultiBitEcnProgram(_OccupancyBase):
    """Quantized occupancy in DSCP, max along the path."""

    name = "ecn-multibit"

    def __init__(self, buffer_capacity_bytes: int) -> None:
        super().__init__()
        if buffer_capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.buffer_capacity_bytes = buffer_capacity_bytes
        self.quantum = max(1, buffer_capacity_bytes // DSCP_LEVELS)

    def level_of(self, occupancy_bytes: int) -> int:
        """Quantize an occupancy into a DSCP level."""
        return min(DSCP_LEVELS - 1, occupancy_bytes // self.quantum)

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        ip = pkt.get(Ipv4)
        if ip is None:
            meta.drop()
            return
        occupancy = self.occupancy.read(0)
        level = self.level_of(occupancy)
        if level > ip.dscp:
            ip.set(dscp=level)  # max along the path
        # Ground truth for the experiment's decoder scoring.
        pkt.meta["true_bottleneck_occ"] = max(
            pkt.meta.get("true_bottleneck_occ", 0), occupancy
        )
        self.forward_by_ip(pkt, meta)


class SingleBitEcnProgram(_OccupancyBase):
    """Classic one-bit ECN above a fixed threshold."""

    name = "ecn-singlebit"

    def __init__(self, mark_threshold_bytes: int) -> None:
        super().__init__()
        if mark_threshold_bytes <= 0:
            raise ValueError("mark threshold must be positive")
        self.mark_threshold_bytes = mark_threshold_bytes
        self.marks = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        ip = pkt.get(Ipv4)
        if ip is None:
            meta.drop()
            return
        occupancy = self.occupancy.read(0)
        if occupancy > self.mark_threshold_bytes and ip.ecn != 3:
            ip.set(ecn=3)  # CE mark
            self.marks += 1
        pkt.meta["true_bottleneck_occ"] = max(
            pkt.meta.get("true_bottleneck_occ", 0), occupancy
        )
        self.forward_by_ip(pkt, meta)


def decode_multi_bit(pkt: Packet, quantum: int) -> Optional[int]:
    """Receiver-side decoding of the multi-bit signal (midpoint of bin)."""
    ip = pkt.get(Ipv4)
    if ip is None:
        return None
    return ip.dscp * quantum + quantum // 2


def decode_single_bit(pkt: Packet, mark_threshold_bytes: int) -> Optional[int]:
    """Receiver-side decoding of classic ECN.

    The best an endpoint can do with one bit: assume the queue sat at
    the marking threshold when marked, and at half of it when not.
    """
    ip = pkt.get(Ipv4)
    if ip is None:
        return None
    if ip.ecn == 3:
        return mark_threshold_bytes
    return mark_threshold_bytes // 2
