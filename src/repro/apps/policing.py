"""Token-bucket policing built from registers and timer events (paper §3).

"While baseline PISA architectures might expose fixed-function meters
to P4 programmers as primitive elements, if we use timer events, token
bucket meters can be constructed from simple registers.  This approach
allows data-plane developers to build and customize their own policing
algorithms."

* :class:`TimerTokenBucketPolicer` — tokens live in a plain register
  array; a timer event refills them; ingress conforms or drops.  Being
  self-built, it is trivially customizable (the ``borrowing`` flag
  demonstrates one such customization: unused budget can be borrowed
  from a shared pool — something a fixed-function meter cannot do).
* :class:`FixedFunctionPolicer` — the baseline using the
  :class:`~repro.pisa.externs.meter.Meter` extern.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import flow_hash
from repro.packet.packet import Packet
from repro.pisa.externs.meter import Meter, MeterColor
from repro.pisa.externs.register import SharedRegister
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import SECONDS

POLICER_TIMER = 3


class TimerTokenBucketPolicer(ForwardingProgram):
    """A register + timer token bucket, one bucket per flow index."""

    name = "timer-policer"

    def __init__(
        self,
        num_flows: int = 64,
        rate_bps: float = 1e9,
        burst_bytes: int = 15_000,
        refill_period_ps: int = 100_000_000,  # 100 µs refill tick
        borrowing: bool = False,
    ) -> None:
        super().__init__()
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.refill_period_ps = refill_period_ps
        self.borrowing = borrowing
        self.tokens = SharedRegister(num_flows, width_bits=32, name="tokens")
        self.shared_pool = SharedRegister(1, width_bits=32, name="shared_pool")
        for flow in range(num_flows):
            self.tokens.write(flow, burst_bytes)
        self.refill_bytes = max(
            1, int(rate_bps * refill_period_ps / (8 * SECONDS))
        )
        self.conformed: Dict[int, int] = {}
        self.dropped: Dict[int, int] = {}

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(POLICER_TIMER, self.refill_period_ps)

    # ------------------------------------------------------------------
    # Timer: refill every bucket
    # ------------------------------------------------------------------
    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        for flow in range(self.tokens.size):
            level = self.tokens.read(flow)
            refill = self.refill_bytes
            new_level = level + refill
            if new_level > self.burst_bytes:
                if self.borrowing:
                    # Customization: spill unused budget into a shared
                    # pool other flows may borrow from.
                    self.shared_pool.add(0, new_level - self.burst_bytes)
                new_level = self.burst_bytes
            self.tokens.write(flow, new_level)
        if self.borrowing and self.shared_pool.read(0) > 4 * self.burst_bytes:
            self.shared_pool.write(0, 4 * self.burst_bytes)

    # ------------------------------------------------------------------
    # Ingress: conform or drop
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.tokens.size)
        if flow_id is None:
            meta.drop()
            return
        nbytes = pkt.total_len
        level = self.tokens.read(flow_id)
        if level >= nbytes:
            self.tokens.write(flow_id, level - nbytes)
            self._conform(pkt, meta, flow_id)
            return
        if self.borrowing and self.shared_pool.read(0) >= nbytes:
            self.shared_pool.sub(0, nbytes)
            self._conform(pkt, meta, flow_id)
            return
        self.dropped[flow_id] = self.dropped.get(flow_id, 0) + 1
        meta.drop()

    def _conform(self, pkt: Packet, meta: StandardMetadata, flow_id: int) -> None:
        self.conformed[flow_id] = self.conformed.get(flow_id, 0) + 1
        self.forward_by_ip(pkt, meta)


class FixedFunctionPolicer(ForwardingProgram):
    """The baseline: a fixed-function srTCM meter extern."""

    name = "meter-policer"

    def __init__(
        self,
        num_flows: int = 64,
        rate_bps: float = 1e9,
        burst_bytes: int = 15_000,
    ) -> None:
        super().__init__()
        self.meter = Meter(
            num_flows, cir_bps=rate_bps, cbs_bytes=burst_bytes, name="policer_meter"
        )
        self.conformed: Dict[int, int] = {}
        self.dropped: Dict[int, int] = {}

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        flow_id = flow_hash(pkt, self.meter.size)
        if flow_id is None:
            meta.drop()
            return
        color = self.meter.execute(flow_id, pkt.total_len, ctx.now_ps)
        if color is MeterColor.RED:
            self.dropped[flow_id] = self.dropped.get(flow_id, 0) + 1
            meta.drop()
            return
        self.conformed[flow_id] = self.conformed.get(flow_id, 0) + 1
        self.forward_by_ip(pkt, meta)
