"""INT-style telemetry aggregation and filtering (paper §3).

"One challenge with INT is the potentially huge volume of measurement
data ... data planes can use timer events to aggregate congestion
information (e.g. queue size, packet loss, or active flow count) and
only report anomalous events to the monitoring system periodically."

* :class:`IntAggregator` — the event-driven design: enqueue/dequeue/
  overflow events feed per-window aggregates (max queue depth, drop
  count, distinct-flow estimate via a Bloom filter); a timer event
  flushes one report per window — and only when the window was
  anomalous, if filtering is on.
* :class:`PostcardTelemetry` — the baseline: one postcard report per
  data packet, the volume INT is notorious for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.builder import make_int_report
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.externs.sketch import BloomFilter
from repro.pisa.metadata import StandardMetadata

INT_TIMER = 7


@dataclass
class WindowStats:
    """One flushed telemetry window."""

    window_id: int
    time_ps: int
    max_queue_bytes: int
    drops: int
    active_flows: int
    reported: bool


class IntAggregator(ForwardingProgram):
    """Windowed, filtered telemetry from buffer events and timers."""

    name = "int-aggregator"

    def __init__(
        self,
        switch_id: int,
        monitor_port: int,
        window_ps: int = 1_000_000_000,  # 1 ms windows
        anomaly_queue_bytes: int = 30_000,
        filter_reports: bool = True,
    ) -> None:
        super().__init__()
        self.switch_id = switch_id
        self.monitor_port = monitor_port
        self.window_ps = window_ps
        self.anomaly_queue_bytes = anomaly_queue_bytes
        self.filter_reports = filter_reports
        # window_state: [0]=max queue bytes, [1]=drops this window.
        self.window_state = SharedRegister(2, width_bits=32, name="int_window")
        self.flow_filter = BloomFilter(bits=4096, hashes=3, name="int_flows")
        self.flows_this_window = 0
        self.window_id = 0
        self.windows: List[WindowStats] = []
        self.reports_sent = 0
        self.packets_seen = 0

    def on_load(self, ctx: ProgramContext) -> None:
        ctx.configure_timer(INT_TIMER, self.window_ps)

    # ------------------------------------------------------------------
    # Buffer events: aggregate congestion signals
    # ------------------------------------------------------------------
    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        depth = event.meta["buffer_bytes"]
        if depth > self.window_state.read(0):
            self.window_state.write(0, depth)

    @handler(EventType.BUFFER_OVERFLOW)
    def on_overflow(self, ctx: ProgramContext, event: Event) -> None:
        self.window_state.add(1, 1)

    # ------------------------------------------------------------------
    # Timer: flush one (filtered) report per window
    # ------------------------------------------------------------------
    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        max_queue = self.window_state.read(0)
        drops = self.window_state.read(1)
        anomalous = max_queue > self.anomaly_queue_bytes or drops > 0
        should_report = anomalous or not self.filter_reports
        if should_report:
            report = make_int_report(
                switch_id=self.switch_id,
                window_id=self.window_id,
                max_queue_bytes=max_queue,
                drops=drops,
                active_flows=self.flows_this_window,
                ts_ps=ctx.now_ps,
            )
            report.meta["probe_out_port"] = self.monitor_port
            ctx.generate_packet(report)
            self.reports_sent += 1
        self.windows.append(
            WindowStats(
                window_id=self.window_id,
                time_ps=ctx.now_ps,
                max_queue_bytes=max_queue,
                drops=drops,
                active_flows=self.flows_this_window,
                reported=should_report,
            )
        )
        self.window_id += 1
        self.window_state.write(0, 0)
        self.window_state.write(1, 0)
        self.flow_filter.clear()
        self.flows_this_window = 0

    @handler(EventType.GENERATED_PACKET)
    def on_generated(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        meta.send_to_port(pkt.meta["probe_out_port"])

    # ------------------------------------------------------------------
    # Ingress: count flows, forward
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.packets_seen += 1
        ftuple = pkt.five_tuple()
        if ftuple is not None:
            key = ftuple.as_bytes()
            if not self.flow_filter.contains(key):
                self.flow_filter.insert(key)
                self.flows_this_window += 1
        self.forward_by_ip(pkt, meta)

    def report_reduction(self) -> float:
        """Reports per data packet (lower is better; postcards = 1.0)."""
        if self.packets_seen == 0:
            return 0.0
        return self.reports_sent / self.packets_seen


class PostcardTelemetry(ForwardingProgram):
    """The baseline: one report per packet (INT postcards)."""

    name = "postcards"

    def __init__(self, switch_id: int, monitor_port: int) -> None:
        super().__init__()
        self.switch_id = switch_id
        self.monitor_port = monitor_port
        self.reports_sent = 0
        self.packets_seen = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.packets_seen += 1
        postcard = make_int_report(
            switch_id=self.switch_id,
            window_id=self.packets_seen,
            max_queue_bytes=0,
            drops=0,
            active_flows=1,
            ts_ps=ctx.now_ps,
        )
        postcard.meta["probe_out_port"] = self.monitor_port
        ctx.generate_packet(postcard)
        self.reports_sent += 1
        self.forward_by_ip(pkt, meta)

    @handler(EventType.GENERATED_PACKET)
    def on_generated(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        meta.send_to_port(pkt.meta["probe_out_port"])

    def report_reduction(self) -> float:
        """Reports per data packet (always ≈ 1.0 for postcards)."""
        if self.packets_seen == 0:
            return 0.0
        return self.reports_sent / self.packets_seen
