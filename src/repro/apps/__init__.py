"""Applications (paper Table 2).

One module per application, each built on the event-driven programming
model of :mod:`repro.arch`:

======================  ====================================================
Module                  Paper application (events used)
======================  ====================================================
``microburst``          §2's worked example: microburst culprit detection
                        (ingress, enqueue, dequeue)
``snappy``              Baseline-PISA competitor (ingress/egress only),
                        for the ≥4× state-reduction comparison
``hula``                HULA load balancing (timer-generated probes)
``ndp``                 NDP-style trimming/priority (buffer overflow)
``frr``                 Fast re-route (link status)
``liveness``            Neighbor liveness monitoring (timer)
``flow_rate``           Time-windowed flow-rate measurement (timer)
``aqm``                 RED / FRED-like fair AQM (enqueue, dequeue, timer)
``policing``            Token-bucket policing from registers + timers
``heavy_hitters``       Count-min sketch with data-plane reset (timer)
``netcache``            NetCache-style KV cache (timer)
``netchain``            NetChain-style chain replication (link status)
``int_telemetry``       INT aggregation and filtering (timer, buffer events)
``scheduling``          Programmable WFQ over a PIFO (dequeue events)
``ecn``                 Multi-bit / single-bit ECN marking (buffer events)
``state_migration``     Swing-state migration on failover (link status)
======================  ====================================================
"""
