"""NetChain-style in-network coordination (paper §3, Table 2).

NetChain (Jin et al. 2018) stores coordination state (locks, leases,
configuration) in a chain of switches: writes traverse the chain
head→tail and are acknowledged by the tail; reads go to the tail.  Its
weak spot is failure handling — the original relies on a controller to
repair the chain.  The paper's point: "Link status change events enable
coordination services, such as NetChain, to quickly react to network
failures."

:class:`ChainNodeProgram` is a chain node built on the fast-re-route
machinery: chain forwarding uses protected routes (primary = next chain
hop, backup = the hop after it), so a LINK_STATUS event repairs the
chain in the data plane within the event-handling latency.  Built on a
baseline architecture instead (``StaticRouteProgram``-style, no link
handler), writes blackhole until the control plane repairs the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.frr import FastRerouteProgram
from repro.arch.events import EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.builder import make_kv_request
from repro.packet.headers import Ipv4, KeyValue
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata


class _ChainLogicMixin:
    """The chain datapath shared by both node variants.

    Writes (``PUT`` addressed to the chain's service IP) are applied to
    the local store and forwarded along the chain; the tail turns them
    into acknowledgements back to the client.  Reads (``GET`` to the
    service IP) are answered by the tail.  Non-KV traffic follows the
    node's routes.
    """

    def _init_chain(self, node_id: int, service_ip: int, is_tail: bool) -> None:
        self.node_id = node_id
        self.service_ip = service_ip
        self.is_tail = is_tail
        self.store: Dict[int, int] = {}
        self.writes_applied = 0
        self.reads_served = 0
        self.acks_sent = 0

    def _chain_ingress(self, pkt: Packet, meta: StandardMetadata) -> None:
        kv = pkt.get(KeyValue)
        ip = pkt.get(Ipv4)
        if kv is None or ip is None or ip.dst != self.service_ip:
            self.forward_by_ip(pkt, meta)
            return
        if kv.op == KeyValue.OP_PUT:
            self.store[kv.key] = kv.value
            self.writes_applied += 1
            if self.is_tail:
                self._acknowledge(pkt, kv, ip, meta)
                return
            self.forward_by_ip(pkt, meta)  # down the chain
            return
        if kv.op == KeyValue.OP_GET:
            if self.is_tail:
                self.reads_served += 1
                kv.set(
                    op=(
                        KeyValue.OP_REPLY_HIT
                        if kv.key in self.store
                        else KeyValue.OP_REPLY_MISS
                    ),
                    value=self.store.get(kv.key, 0),
                )
                self._turn_around(pkt, ip, meta)
                return
            self.forward_by_ip(pkt, meta)  # toward the tail
            return
        # Replies/acks transiting back toward the client.
        self.forward_by_ip(pkt, meta)

    def _acknowledge(self, pkt: Packet, kv: KeyValue, ip: Ipv4, meta: StandardMetadata) -> None:
        self.acks_sent += 1
        kv.set(op=KeyValue.OP_WRITE_ACK)
        self._turn_around(pkt, ip, meta)

    def _turn_around(self, pkt: Packet, ip: Ipv4, meta: StandardMetadata) -> None:
        client = ip.src
        ip.set(src=self.service_ip, dst=client)
        self.forward_by_ip(pkt, meta)


class ChainNodeProgram(_ChainLogicMixin, FastRerouteProgram):
    """An event-driven chain node: LINK_STATUS splices the chain.

    Chain repair is inherited from the fast-re-route base: a link-down
    event flips the protected route for the service IP to the
    pre-provisioned bypass within the event-handling latency.
    """

    name = "netchain-node"

    def __init__(self, node_id: int, service_ip: int, is_tail: bool) -> None:
        super().__init__()
        self._init_chain(node_id, service_ip, is_tail)

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self._chain_ingress(pkt, meta)


class StaticChainNodeProgram(_ChainLogicMixin, FastRerouteProgram):
    """The baseline chain node: no link-status handler.

    Identical datapath, but the chain can only be repaired by the
    control plane rewriting its routes — the NetChain failure story the
    paper improves on.
    """

    name = "netchain-node-static"

    def __init__(self, node_id: int, service_ip: int, is_tail: bool) -> None:
        super().__init__()
        self._init_chain(node_id, service_ip, is_tail)
        # Drop the inherited LINK_STATUS handler: this node is blind to
        # link transitions (as on a baseline architecture).
        self._handlers.pop(EventType.LINK_STATUS, None)

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self._chain_ingress(pkt, meta)


@dataclass
class ChainClientStats:
    """Client-side accounting for one run."""

    writes_sent: int = 0
    acks_received: int = 0
    reads_sent: int = 0
    read_replies: int = 0
    last_acked_value: int = 0
    last_read_value: int = 0
    ack_times_ps: Optional[List[int]] = None

    @property
    def writes_lost(self) -> int:
        """Writes never acknowledged."""
        return self.writes_sent - self.acks_received


class ChainClient:
    """A host-side client issuing sequential writes and final reads."""

    def __init__(self, host, service_ip: int, key: int = 1) -> None:
        self.host = host
        self.service_ip = service_ip
        self.key = key
        self.stats = ChainClientStats(ack_times_ps=[])
        self._sequence = 0
        host.add_sink(self._on_packet)

    def write_next(self) -> None:
        """Issue the next sequential write (value = sequence number)."""
        self._sequence += 1
        self.stats.writes_sent += 1
        request = make_kv_request(
            op=KeyValue.OP_PUT,
            key=self.key,
            value=self._sequence,
            src_ip=self.host.ip,
            dst_ip=self.service_ip,
            ts_ps=self.host.sim.now_ps,
        )
        self.host.send(request)

    def read(self) -> None:
        """Issue a read of the key."""
        self.stats.reads_sent += 1
        request = make_kv_request(
            op=KeyValue.OP_GET,
            key=self.key,
            src_ip=self.host.ip,
            dst_ip=self.service_ip,
            ts_ps=self.host.sim.now_ps,
        )
        self.host.send(request)

    def _on_packet(self, pkt: Packet) -> None:
        kv = pkt.get(KeyValue)
        if kv is None or kv.key != self.key:
            return
        if kv.op == KeyValue.OP_WRITE_ACK:
            self.stats.acks_received += 1
            self.stats.last_acked_value = max(self.stats.last_acked_value, kv.value)
            self.stats.ack_times_ps.append(self.host.sim.now_ps)
        elif kv.op in (KeyValue.OP_REPLY_HIT, KeyValue.OP_REPLY_MISS):
            self.stats.read_replies += 1
            self.stats.last_read_value = kv.value
