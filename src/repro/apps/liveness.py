"""Liveness monitoring in the data plane (paper §5, student project).

"The event-driven programming model was used to implement a protocol in
the data plane that periodically checks the liveness of neighboring
network devices by transmitting echo request packets and waiting for
replies.  Upon detecting failure of a neighbor, the data plane
transmits notifications to a central monitor, with no intervention by
the control plane."

:class:`LivenessMonitor` implements exactly that: a timer event sends
an echo request out each monitored port and checks reply deadlines; the
ingress handler answers requests and timestamps replies; a missed
deadline emits a notification packet toward the monitor port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.builder import make_liveness_echo
from repro.packet.headers import LivenessEcho
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.metadata import StandardMetadata

LIVENESS_TIMER = 1


@dataclass
class NeighborFailure:
    """One detected neighbor failure."""

    time_ps: int
    port: int


class LivenessMonitor(ForwardingProgram):
    """Data-plane neighbor liveness with echo requests and deadlines."""

    name = "liveness"

    def __init__(
        self,
        switch_id: int,
        neighbor_ports: List[int],
        period_ps: int = 10_000_000,  # 10 µs probing interval
        misses_allowed: int = 3,
        monitor_port: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not neighbor_ports:
            raise ValueError("need at least one monitored port")
        if misses_allowed < 1:
            raise ValueError(f"misses allowed must be >= 1, got {misses_allowed}")
        self.switch_id = switch_id
        self.neighbor_ports = list(neighbor_ports)
        self.period_ps = period_ps
        self.misses_allowed = misses_allowed
        self.monitor_port = monitor_port
        size = max(neighbor_ports) + 1
        self.last_reply = SharedRegister(size, width_bits=64, name="last_reply")
        self.alive = SharedRegister(size, width_bits=1, name="alive")
        for port in neighbor_ports:
            self.alive.write(port, 1)
        self.nonce = 0
        self.failures: List[NeighborFailure] = []
        self.recoveries: List[NeighborFailure] = []
        self.requests_sent = 0
        self.replies_sent = 0
        self.notifications_sent = 0

    def on_load(self, ctx: ProgramContext) -> None:
        # Treat load time as the last-heard time so startup isn't a
        # spurious failure.
        for port in self.neighbor_ports:
            self.last_reply.write(port, ctx.now_ps)
        ctx.configure_timer(LIVENESS_TIMER, self.period_ps)

    # ------------------------------------------------------------------
    # Timer: probe and check deadlines
    # ------------------------------------------------------------------
    @handler(EventType.TIMER)
    def on_timer(self, ctx: ProgramContext, event: Event) -> None:
        deadline = self.misses_allowed * self.period_ps
        for port in self.neighbor_ports:
            self.nonce += 1
            request = make_liveness_echo(
                kind=LivenessEcho.KIND_REQUEST,
                origin=self.switch_id,
                target=port,
                nonce=self.nonce & 0xFFFFFFFF,
                ts_ps=ctx.now_ps,
            )
            request.meta["probe_out_port"] = port
            ctx.generate_packet(request)
            self.requests_sent += 1
            silent_for = ctx.now_ps - self.last_reply.read(port)
            if self.alive.read(port) and silent_for > deadline:
                self.alive.write(port, 0)
                self.failures.append(NeighborFailure(ctx.now_ps, port))
                self._notify(ctx, port)

    def _notify(self, ctx: ProgramContext, port: int) -> None:
        if self.monitor_port is None:
            ctx.notify_control_plane({"failed_port": port, "switch": self.switch_id})
            return
        notification = make_liveness_echo(
            kind=LivenessEcho.KIND_NOTIFY,
            origin=self.switch_id,
            target=port,
            nonce=0,
            ts_ps=ctx.now_ps,
        )
        notification.meta["probe_out_port"] = self.monitor_port
        ctx.generate_packet(notification)
        self.notifications_sent += 1

    @handler(EventType.GENERATED_PACKET)
    def on_generated(
        self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata
    ) -> None:
        meta.send_to_port(pkt.meta["probe_out_port"])

    # ------------------------------------------------------------------
    # Ingress: answer requests, timestamp replies
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        echo = pkt.get(LivenessEcho)
        if echo is None:
            self.forward_by_ip(pkt, meta)
            return
        if echo.kind == LivenessEcho.KIND_REQUEST:
            # Bounce a reply back out of the arrival port.
            echo.set(kind=LivenessEcho.KIND_REPLY, target=echo.origin, origin=self.switch_id)
            meta.send_to_port(meta.ingress_port)
            self.replies_sent += 1
            return
        if echo.kind == LivenessEcho.KIND_REPLY:
            port = meta.ingress_port
            if port < self.last_reply.size:
                self.last_reply.write(port, ctx.now_ps)
                if not self.alive.read(port):
                    self.alive.write(port, 1)
                    self.recoveries.append(NeighborFailure(ctx.now_ps, port))
            meta.drop()
            return
        # Notifications transit toward the monitor via normal forwarding
        # if this switch is not their origin.
        if self.monitor_port is not None:
            meta.send_to_port(self.monitor_port)
        else:
            meta.drop()

    def detection_delay_ps(self, failure_at_ps: int) -> Optional[int]:
        """Delay from an actual failure to its first detection."""
        for failure in self.failures:
            if failure.time_ps >= failure_at_ps:
                return failure.time_ps - failure_at_ps
        return None
