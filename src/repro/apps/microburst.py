"""Microburst culprit detection — the paper's §2 worked example.

A faithful port of ``microburst.p4``:

* one ``shared_register`` (``flowBufSize_reg``) tracks per-flow buffer
  occupancy,
* the **ingress** control hashes ``ip.src ++ ip.dst`` into a flow id,
  initializes the enqueue/dequeue metadata the packet carries, reads the
  flow's occupancy, and flags a *microburst culprit* when it exceeds
  ``FLOW_THRESH``,
* the **enqueue** handler increments the flow's occupancy by the packet
  length; the **dequeue** handler decrements it.

Detection therefore happens *in the ingress pipeline, before the packet
is enqueued* — which is what lets the program take corrective action
(drop, deprioritize, or notify) on the culprit's own packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.hashing import ip_pair_hash
from repro.packet.headers import Ipv4
from repro.packet.packet import Packet
from repro.pisa.externs.register import SharedRegister
from repro.pisa.externs.sketch import CountMinSketch
from repro.pisa.metadata import StandardMetadata


@dataclass
class Detection:
    """One culprit detection: when, which flow id, at what occupancy."""

    time_ps: int
    flow_id: int
    occupancy_bytes: int


class MicroburstDetector(ForwardingProgram):
    """The event-driven microburst detector of ``microburst.p4``.

    ``action`` selects the corrective measure on detection: ``"none"``
    records only, ``"drop"`` drops the culprit's packet, ``"deprioritize"``
    lowers its scheduling priority.
    """

    name = "microburst"

    def __init__(
        self,
        num_regs: int = 1024,
        flow_thresh_bytes: int = 8_000,
        action: str = "none",
    ) -> None:
        super().__init__()
        if num_regs <= 0:
            raise ValueError(f"register count must be positive, got {num_regs}")
        if flow_thresh_bytes <= 0:
            raise ValueError(f"threshold must be positive, got {flow_thresh_bytes}")
        if action not in ("none", "drop", "deprioritize"):
            raise ValueError(f"unknown corrective action {action!r}")
        self.flow_buf_size = SharedRegister(
            num_regs, width_bits=32, name="flowBufSize_reg"
        )
        self.flow_thresh_bytes = flow_thresh_bytes
        self.action = action
        self.detections: List[Detection] = []
        self.packets_seen = 0

    # ------------------------------------------------------------------
    # Ingress packet event (microburst.p4's Ingress control)
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.packets_seen += 1
        ip = pkt.get(Ipv4)
        if ip is None:
            meta.drop()
            return
        # compute flowID = hash(hdr.ip.src ++ hdr.ip.dst)
        flow_id = ip_pair_hash(ip.src, ip.dst, self.flow_buf_size.size)
        # initialize enq & deq metadata for this pkt
        meta.enq_meta["flowID"] = flow_id
        meta.enq_meta["pkt_len"] = pkt.total_len
        meta.deq_meta["flowID"] = flow_id
        meta.deq_meta["pkt_len"] = pkt.total_len
        # read buffer occupancy of this flow
        buf_size = self.flow_buf_size.read(flow_id)
        # detect microburst
        if buf_size > self.flow_thresh_bytes:
            self.detections.append(Detection(ctx.now_ps, flow_id, buf_size))
            if self.action == "drop":
                meta.drop()
                return
            if self.action == "deprioritize":
                meta.priority = 7
                meta.queue_id = 1
        self.forward_by_ip(pkt, meta)

    # ------------------------------------------------------------------
    # Enqueue event (microburst.p4's Enqueue control)
    # ------------------------------------------------------------------
    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        self.flow_buf_size.add(event.meta["flowID"], event.meta["pkt_len"])

    # ------------------------------------------------------------------
    # Dequeue event (the "very similar" Dequeue control)
    # ------------------------------------------------------------------
    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self.flow_buf_size.sub(event.meta["flowID"], event.meta["pkt_len"])

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def detected_flows(self) -> List[int]:
        """Distinct flow ids flagged as culprits, in first-seen order."""
        seen: List[int] = []
        for detection in self.detections:
            if detection.flow_id not in seen:
                seen.append(detection.flow_id)
        return seen

    def first_detection_ps(self, flow_id: int) -> Optional[int]:
        """Time of the first detection of ``flow_id``, or None."""
        for detection in self.detections:
            if detection.flow_id == flow_id:
                return detection.time_ps
        return None


class CmsMicroburstDetector(ForwardingProgram):
    """The paper's §2 footnote: track occupancy in a count-min sketch.

    "If needed, a count-min-sketch data structure can be used to reduce
    state requirements even further."  Enqueue events add the packet
    length under the flow key, dequeue events subtract it (valid
    because per-flow occupancy never goes negative, so the CMS
    never-underestimate guarantee survives — see
    :meth:`~repro.pisa.externs.sketch.CountMinSketch.add_signed`).
    The sketch only needs capacity proportional to the flows
    *concurrently buffered*, not every flow the register version must
    provision for, at the cost of possible overestimates (false
    positives under aliasing).
    """

    name = "microburst-cms"

    def __init__(
        self,
        width: int = 128,
        depth: int = 2,
        flow_thresh_bytes: int = 8_000,
    ) -> None:
        super().__init__()
        if flow_thresh_bytes <= 0:
            raise ValueError(f"threshold must be positive, got {flow_thresh_bytes}")
        self.sketch = CountMinSketch(width, depth, name="occupancy_cms")
        self.flow_thresh_bytes = flow_thresh_bytes
        self.detections: List[Detection] = []
        self.packets_seen = 0

    @staticmethod
    def _key(src: int, dst: int) -> bytes:
        return src.to_bytes(4, "big") + dst.to_bytes(4, "big")

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.packets_seen += 1
        ip = pkt.get(Ipv4)
        if ip is None:
            meta.drop()
            return
        flow_id = ip_pair_hash(ip.src, ip.dst, 1 << 20)  # report identity only
        meta.enq_meta["src"] = ip.src
        meta.enq_meta["dst"] = ip.dst
        meta.enq_meta["pkt_len"] = pkt.total_len
        meta.deq_meta["src"] = ip.src
        meta.deq_meta["dst"] = ip.dst
        meta.deq_meta["pkt_len"] = pkt.total_len
        estimate = self.sketch.query(self._key(ip.src, ip.dst))
        if estimate > self.flow_thresh_bytes:
            self.detections.append(Detection(ctx.now_ps, flow_id, estimate))
        self.forward_by_ip(pkt, meta)

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx: ProgramContext, event: Event) -> None:
        self.sketch.add_signed(
            self._key(event.meta["src"], event.meta["dst"]), event.meta["pkt_len"]
        )

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx: ProgramContext, event: Event) -> None:
        self.sketch.add_signed(
            self._key(event.meta["src"], event.meta["dst"]), -event.meta["pkt_len"]
        )

    def detected_flows(self) -> List[int]:
        """Distinct flow ids flagged, in first-seen order."""
        seen: List[int] = []
        for detection in self.detections:
            if detection.flow_id not in seen:
                seen.append(detection.flow_id)
        return seen

    def first_detection_ps(self, flow_id: int) -> Optional[int]:
        """Time of the first detection of ``flow_id``, or None."""
        for detection in self.detections:
            if detection.flow_id == flow_id:
                return detection.time_ps
        return None
