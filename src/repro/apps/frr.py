"""Fast re-route on link-status events (paper §3, §5).

"By introducing link status change events, the data plane can
immediately respond to link failures, autonomously re-route affected
flows" — versus the baseline where the control plane must detect the
failure, recompute, and push new entries (hundreds of milliseconds).

:class:`FastRerouteProgram` keeps a primary and a backup port per
destination; a LINK_STATUS down event flips every affected destination
to its backup within the event-handling latency of the architecture.
The control-plane comparison is staged by the experiment harness with
:class:`~repro.control.plane.ControlPlane` latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.common import ForwardingProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext, handler
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata


@dataclass
class Failover:
    """One recorded re-route action."""

    time_ps: int
    port_down: int
    rerouted_destinations: int


class FastRerouteProgram(ForwardingProgram):
    """Data-plane fast re-route with per-destination backup ports."""

    name = "fast-reroute"

    def __init__(self) -> None:
        super().__init__()
        self.primary: Dict[int, int] = {}
        self.backup: Dict[int, int] = {}
        self.failovers: List[Failover] = []
        self.reverts: List[Failover] = []

    def install_protected_route(self, dst_ip: int, primary: int, backup: int) -> None:
        """Install a destination with a pre-computed backup port."""
        if primary == backup:
            raise ValueError("backup must differ from primary")
        self.primary[dst_ip] = primary
        self.backup[dst_ip] = backup
        self.install_route(dst_ip, primary)

    # ------------------------------------------------------------------
    # Link status: the fast path
    # ------------------------------------------------------------------
    @handler(EventType.LINK_STATUS)
    def on_link_status(self, ctx: ProgramContext, event: Event) -> None:
        port = event.meta["port"]
        if event.meta["up"]:
            self._revert(ctx, port)
        else:
            self._fail_over(ctx, port)

    def _fail_over(self, ctx: ProgramContext, port: int) -> None:
        moved = 0
        for dst_ip, primary in self.primary.items():
            if primary == port and dst_ip in self.backup:
                self.routes[dst_ip] = self.backup[dst_ip]
                moved += 1
        self.failovers.append(Failover(ctx.now_ps, port, moved))

    def _revert(self, ctx: ProgramContext, port: int) -> None:
        moved = 0
        for dst_ip, primary in self.primary.items():
            if primary == port:
                self.routes[dst_ip] = primary
                moved += 1
        self.reverts.append(Failover(ctx.now_ps, port, moved))

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.forward_by_ip(pkt, meta)


class StaticRouteProgram(ForwardingProgram):
    """The baseline: routes only change when the control plane says so.

    The program ignores link transitions entirely; the experiment
    harness models the control plane noticing the failure (detection
    timeout), recomputing, and installing the backup via
    :meth:`control_update`.
    """

    name = "static-routes"

    def __init__(self) -> None:
        super().__init__()
        self.control_updates = 0

    def control_update(self, dst_ip: int, port: int) -> None:
        """A control-plane table write."""
        self.install_route(dst_ip, port)
        self.control_updates += 1

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx: ProgramContext, pkt: Packet, meta: StandardMetadata) -> None:
        self.forward_by_ip(pkt, meta)
