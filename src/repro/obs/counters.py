"""Per-event-type counters over one or many event buses.

The counter observer is the cheapest possible view of the event path:
four integers per event kind, aggregated across every bus it watches.
Attach it to a single switch's bus (``switch.bus.add_observer``) or to
every bus an experiment creates (:func:`repro.obs.observing`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.bus import BusObserver, EventBus
from repro.arch.events import Event, EventType


class EventCounters(BusObserver):
    """Counts published / suppressed / handled / dropped events per kind."""

    def __init__(self) -> None:
        self.published: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.suppressed: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.handled: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.dropped: Dict[EventType, int] = {kind: 0 for kind in EventType}

    # ------------------------------------------------------------------
    # BusObserver hooks
    # ------------------------------------------------------------------
    def on_publish(self, bus: EventBus, event: Event, admitted: bool) -> None:
        self.published[event.kind] += 1
        if not admitted:
            self.suppressed[event.kind] += 1

    def on_dispatch(
        self, bus: EventBus, event: Event, latency_ps: int, handled: bool
    ) -> None:
        if handled:
            self.handled[event.kind] += 1

    def on_drop(self, bus: EventBus, event: Event) -> None:
        self.dropped[event.kind] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def nonzero_kinds(self) -> List[EventType]:
        """Event kinds that were published at least once."""
        return [kind for kind in EventType if self.published[kind] > 0]

    def total_published(self) -> int:
        """All publishes seen, admitted or not."""
        return sum(self.published.values())

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Nested plain-dict snapshot (kind value → counter name → count)."""
        return {
            kind.value: {
                "published": self.published[kind],
                "suppressed": self.suppressed[kind],
                "handled": self.handled[kind],
                "dropped": self.dropped[kind],
            }
            for kind in EventType
        }

    def summary_rows(self) -> List[str]:
        """One printable row per event kind seen at least once."""
        rows = [
            f"{'event':<26} {'published':>10} {'suppressed':>11} "
            f"{'handled':>8} {'dropped':>8}"
        ]
        for kind in EventType:
            if self.published[kind] == 0 and self.dropped[kind] == 0:
                continue
            rows.append(
                f"{kind.value:<26} {self.published[kind]:>10} "
                f"{self.suppressed[kind]:>11} {self.handled[kind]:>8} "
                f"{self.dropped[kind]:>8}"
            )
        if len(rows) == 1:
            rows.append("(no events observed)")
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventCounters(published={self.total_published()})"
