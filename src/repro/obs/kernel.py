"""Kernel-level observability: where do simulated callbacks go?

The event bus observes the *semantic* event path; this module taps the
simulation kernel itself via
:meth:`~repro.sim.kernel.Simulator.add_execution_observer` and counts
executed callbacks by qualified name — a cheap profile of which
components (pipelines, traffic managers, timers, links) dominate a run.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple

from repro.sim.kernel import ScheduledEvent, Simulator


class CallbackProfiler:
    """Counts kernel callback executions grouped by callback qualname.

    Usage::

        profiler = CallbackProfiler.attach(sim)
        sim.run()
        for name, count in profiler.top(5):
            print(name, count)
    """

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    @classmethod
    def attach(cls, sim: Simulator) -> "CallbackProfiler":
        """Create a profiler and register it on ``sim``."""
        profiler = cls()
        sim.add_execution_observer(profiler)
        return profiler

    def detach(self, sim: Simulator) -> None:
        """Unregister from ``sim``."""
        sim.remove_execution_observer(self)

    def __call__(self, scheduled: ScheduledEvent) -> None:
        callback = scheduled.callback
        name = getattr(callback, "__qualname__", None) or repr(callback)
        self.counts[name] += 1

    def total(self) -> int:
        """All callback executions observed."""
        return sum(self.counts.values())

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` most frequently executed callbacks."""
        return self.counts.most_common(n)

    def summary_rows(self, n: int = 10) -> List[str]:
        """Printable rows for the ``n`` hottest callbacks."""
        total = self.total()
        rows = [f"{'callback':<48} {'count':>10} {'share':>7}"]
        for name, count in self.top(n):
            rows.append(f"{name:<48} {count:>10} {count / total:>6.1%}")
        if len(rows) == 1:
            rows.append("(no callbacks observed)")
        return rows
