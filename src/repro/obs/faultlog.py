"""Fault-injection timeline recording.

:class:`FaultLog` is the observer the
:class:`~repro.faults.injector.FaultInjector` feeds: one record per
executed fault action, stamped with simulated time.  Because every
fault is dispatched through the kernel, the log is totally ordered and
byte-identical across replays of the same seed — the chaos harness
serializes it straight into the JSONL verdict report.
"""

from __future__ import annotations

from typing import Dict, List


class FaultLog:
    """An in-memory, sim-time-ordered record of injected fault actions."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def record(
        self, time_ps: int, plan: str, kind: str, action: str, target: str
    ) -> None:
        """Append one executed fault action."""
        self.records.append(
            {
                "time_ps": time_ps,
                "plan": plan,
                "kind": kind,
                "action": action,
                "target": target,
            }
        )

    def count(self) -> int:
        """Number of recorded fault actions."""
        return len(self.records)

    def last_time_ps(self) -> int:
        """Simulated time of the last action (-1 when nothing fired)."""
        if not self.records:
            return -1
        return int(self.records[-1]["time_ps"])  # type: ignore[arg-type]

    def kinds(self) -> List[str]:
        """Distinct fault kinds that actually fired, sorted."""
        return sorted({str(record["kind"]) for record in self.records})

    def summary_rows(self) -> List[str]:
        """Printable timeline rows."""
        return [
            f"{record['time_ps']:>14}ps {record['kind']:<14} "
            f"{record['action']:<12} target={record['target']}"
            for record in self.records
        ]
