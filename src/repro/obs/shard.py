"""Per-shard counters for the conservative-parallel engine.

Unlike the bus observers, shard counters are not attached to an
:class:`~repro.arch.bus.EventBus` — the coordinator and each worker
fill one :class:`ShardCounters` record per shard as windows execute,
and :class:`ShardStats` aggregates them for the ``repro shard`` CLI
and ``events-stats``.  They are plain picklable data so workers can
ship them back over the pipe at the end of a run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List


@dataclass
class ShardCounters:
    """What one shard did during a sharded run."""

    shard_id: int
    switches: int = 0
    hosts: int = 0
    #: synchronization windows this shard participated in.
    sync_rounds: int = 0
    #: packets this shard sent across / received over boundary links.
    boundary_tx: int = 0
    boundary_rx: int = 0
    #: windows in which the shard executed zero events (lookahead stalls).
    stall_windows: int = 0
    #: simulator callbacks executed inside this shard.
    events_executed: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


@dataclass
class ShardStats:
    """Aggregated view over every shard of a run."""

    lookahead_ps: int = 0
    windows: int = 0
    shards: List[ShardCounters] = field(default_factory=list)

    def total(self, name: str) -> int:
        return sum(getattr(counter, name) for counter in self.shards)

    def as_dict(self) -> Dict[str, object]:
        return {
            "lookahead_ps": self.lookahead_ps,
            "windows": self.windows,
            "boundary_packets": self.total("boundary_tx"),
            "events_executed": self.total("events_executed"),
            "stall_windows": self.total("stall_windows"),
            "shards": [counter.as_dict() for counter in self.shards],
        }

    def summary_rows(self) -> List[str]:
        """One printable row per shard plus an aggregate footer."""
        rows = [
            f"{'shard':<6} {'switches':>8} {'hosts':>6} {'rounds':>7} "
            f"{'bnd tx':>7} {'bnd rx':>7} {'stalls':>7} {'events':>9}"
        ]
        for counter in self.shards:
            rows.append(
                f"{counter.shard_id:<6} {counter.switches:>8} "
                f"{counter.hosts:>6} {counter.sync_rounds:>7} "
                f"{counter.boundary_tx:>7} {counter.boundary_rx:>7} "
                f"{counter.stall_windows:>7} {counter.events_executed:>9}"
            )
        if len(rows) == 1:
            rows.append("(no shards ran)")
        rows.append(
            f"{self.windows} window(s), lookahead {self.lookahead_ps} ps, "
            f"{self.total('boundary_tx')} boundary packet(s), "
            f"{self.total('stall_windows')} stall window(s)"
        )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardStats(shards={len(self.shards)}, windows={self.windows}, "
            f"boundary={self.total('boundary_tx')})"
        )
