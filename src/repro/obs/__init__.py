"""Pluggable observability for the event dispatch path.

Everything a switch does flows through its
:class:`~repro.arch.bus.EventBus`; this subpackage provides the
observers that turn that stream into numbers and artifacts:

* :class:`EventCounters` — per-event-type published / suppressed /
  handled / dropped counters,
* :class:`DispatchLatencyHistogram` — log2-bucketed staleness of every
  handler dispatch, keyed off ``Simulator.now_ps``,
* :class:`JsonlTraceSink` — a JSONL event trace, optionally paired with
  a binary packet capture replayable by
  :class:`~repro.packet.trace.TraceReplayer`,
* :class:`RecordingObserver` — the in-memory equivalent, used by the
  determinism tests,
* :class:`CallbackProfiler` — a kernel-level tap counting executed
  simulator callbacks,
* :class:`FaultLog` — the sim-time-ordered timeline of injected fault
  actions (fed by :class:`~repro.faults.injector.FaultInjector`),
* :class:`ShardCounters` / :class:`ShardStats` — per-shard sync-round,
  boundary-packet, and lookahead-stall counters filled by
  :class:`~repro.sim.shard.ShardedSimulator` rather than by a bus,
* :class:`SearchStats` — trial/build/retry rollup of one
  :mod:`repro.search` artifact.

The :func:`observing` context manager attaches observers to every bus
created inside its block, which is how the ``events-stats`` and
``events-trace`` CLI subcommands instrument whole experiments without
modifying them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

from repro.arch.bus import BusObserver, EventBus
from repro.obs.counters import EventCounters
from repro.obs.faultlog import FaultLog
from repro.obs.kernel import CallbackProfiler
from repro.obs.latency import DispatchLatencyHistogram
from repro.obs.search import SearchStats
from repro.obs.shard import ShardCounters, ShardStats
from repro.obs.tracer import JsonlTraceSink, RecordingObserver, read_events_trace


@contextmanager
def observing(*observers: BusObserver) -> Iterator[Tuple[BusObserver, ...]]:
    """Attach ``observers`` to every :class:`EventBus` created in the block.

    Registration is global but scoped: buses created before the block or
    after it are unaffected, so wrapping an experiment function
    instruments exactly the switches it builds.
    """
    for observer in observers:
        EventBus.register_global_observer(observer)
    try:
        yield observers
    finally:
        for observer in observers:
            EventBus.unregister_global_observer(observer)


__all__ = [
    "BusObserver",
    "CallbackProfiler",
    "DispatchLatencyHistogram",
    "EventCounters",
    "FaultLog",
    "JsonlTraceSink",
    "RecordingObserver",
    "SearchStats",
    "ShardCounters",
    "ShardStats",
    "observing",
    "read_events_trace",
]
