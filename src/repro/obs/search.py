"""Aggregate statistics over one search run.

:class:`SearchStats` is filled by summarizing a finished search
artifact rather than observed live on a bus — per-trial event counters
already arrive through :class:`~repro.obs.counters.EventCounters`
inside each worker; this rolls a whole artifact up into the handful of
numbers a progress line or service telemetry row wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List


@dataclass
class SearchStats:
    """Trial-level rollup of one search artifact."""

    trials: int = 0
    failed: int = 0
    fresh_builds: int = 0
    forked: int = 0
    crash_retries: int = 0

    @classmethod
    def from_artifact(cls, data: Dict[str, Any]) -> "SearchStats":
        """Summarize a ``SEARCH_*.json`` dict (host section optional)."""
        trials = data.get("trials", [])
        host = data.get("host") or {}
        return cls(
            trials=len(trials),
            failed=sum(1 for t in trials if t.get("objective") is None),
            fresh_builds=int(host.get("fresh_builds", 0)),
            forked=int(host.get("forked", 0)),
            crash_retries=int(host.get("crash_retries", 0)),
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "trials": self.trials,
            "failed": self.failed,
            "fresh_builds": self.fresh_builds,
            "forked": self.forked,
            "crash_retries": self.crash_retries,
        }

    def summary_rows(self) -> List[str]:
        """Printable rows matching the other obs summaries."""
        ok = self.trials - self.failed
        rows = [
            f"trials: {self.trials} ({ok} ok, {self.failed} failed)",
        ]
        if self.fresh_builds or self.forked:
            rows.append(
                f"builds: {self.fresh_builds} fresh, {self.forked} forked "
                "(setup cache hits)"
            )
        if self.crash_retries:
            rows.append(f"worker crash retries: {self.crash_retries}")
        return rows
