"""Dispatch-latency (staleness) histograms for the event path.

Every :meth:`EventBus.dispatch` / :meth:`EventBus.delivered` reports the
event's age at handler-run time, keyed off ``Simulator.now_ps``.  The
histogram buckets are powers of two picoseconds, so a bucket index is
one ``int.bit_length()`` — cheap enough to leave attached during long
runs.  Zero staleness (synchronous dispatch, as on the logical
architecture) lands in bucket 0; the SUME merger wait, emulation
recirculation delay, and any future batching show up as mass in the
higher buckets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch.bus import BusObserver, EventBus
from repro.arch.events import Event, EventType

#: Enough buckets for latencies up to 2**63 ps (≈ 107 days).
BUCKETS = 64


class DispatchLatencyHistogram(BusObserver):
    """Log2-bucketed per-kind histogram of event dispatch staleness."""

    def __init__(self) -> None:
        self._buckets: Dict[EventType, List[int]] = {}
        self.count: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.total_ps: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.max_ps: Dict[EventType, int] = {kind: 0 for kind in EventType}

    # ------------------------------------------------------------------
    # BusObserver hook
    # ------------------------------------------------------------------
    def on_dispatch(
        self, bus: EventBus, event: Event, latency_ps: int, handled: bool
    ) -> None:
        kind = event.kind
        buckets = self._buckets.get(kind)
        if buckets is None:
            buckets = self._buckets[kind] = [0] * BUCKETS
        buckets[latency_ps.bit_length()] += 1
        self.count[kind] += 1
        self.total_ps[kind] += latency_ps
        if latency_ps > self.max_ps[kind]:
            self.max_ps[kind] = latency_ps

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def observed_kinds(self) -> List[EventType]:
        """Kinds with at least one recorded dispatch."""
        return [kind for kind in EventType if self.count[kind] > 0]

    def total_count(self) -> int:
        """All recorded dispatches across kinds."""
        return sum(self.count.values())

    def mean_ps(self, kind: Optional[EventType] = None) -> float:
        """Mean dispatch staleness (for one kind, or overall)."""
        if kind is not None:
            n = self.count[kind]
            return self.total_ps[kind] / n if n else 0.0
        n = self.total_count()
        return sum(self.total_ps.values()) / n if n else 0.0

    def percentile_ps(self, p: float, kind: Optional[EventType] = None) -> int:
        """Upper bound of the bucket holding the ``p``-th percentile.

        ``p`` is in [0, 100].  Bucket upper bounds are ``2**i - 1`` ps,
        so the result is exact for zero-latency dispatch and within a
        factor of two otherwise — the right fidelity for a histogram
        meant to stay attached in production runs.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if kind is not None:
            merged = self._buckets.get(kind, [0] * BUCKETS)
            total = self.count[kind]
        else:
            merged = [0] * BUCKETS
            for buckets in self._buckets.values():
                for i, c in enumerate(buckets):
                    merged[i] += c
            total = self.total_count()
        if total == 0:
            return 0
        rank = max(1, int(round(p / 100.0 * total)))
        seen = 0
        for i, c in enumerate(merged):
            seen += c
            if seen >= rank:
                return (1 << i) - 1
        return (1 << BUCKETS) - 1  # pragma: no cover - unreachable

    def summary_rows(self) -> List[str]:
        """One printable row per observed kind: count/mean/p99/max."""
        rows = [
            f"{'event':<26} {'dispatches':>10} {'mean':>12} {'p99':>12} {'max':>12}"
        ]
        for kind in self.observed_kinds():
            rows.append(
                f"{kind.value:<26} {self.count[kind]:>10} "
                f"{self.mean_ps(kind) / 1000:>10.1f}ns "
                f"{self.percentile_ps(99, kind) / 1000:>10.1f}ns "
                f"{self.max_ps[kind] / 1000:>10.1f}ns"
            )
        if len(rows) == 1:
            rows.append("(no dispatches observed)")
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DispatchLatencyHistogram(count={self.total_count()}, "
            f"mean={self.mean_ps():.0f}ps)"
        )
