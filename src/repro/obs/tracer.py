"""Event-trace sinks: JSONL on disk, or in-memory for tests.

:class:`JsonlTraceSink` streams one JSON object per line for every
publish / dispatch / drop the observed buses see — the event-path
analogue of the packet traces in :mod:`repro.packet.trace`.  Give it a
:class:`~repro.packet.trace.TraceWriter` and it additionally captures
the wire bytes of every admitted packet-carrying event publish, so the
packet side of an event trace replays byte-exactly through the existing
:class:`~repro.packet.trace.TraceReplayer` tooling.

:class:`RecordingObserver` keeps the same records in memory, with a
:meth:`~RecordingObserver.normalized` view that erases process-global
identifiers (packet ids, event ids) — two runs of the same seeded
experiment must produce *identical* normalized traces, which is the
determinism contract the test suite enforces.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, TextIO, Tuple

from repro.arch.bus import BusObserver, EventBus
from repro.arch.events import Event
from repro.packet.trace import TraceWriter


class JsonlTraceSink(BusObserver):
    """Writes one JSON record per bus occurrence to a text stream.

    Record shapes (all share ``seq``, ``phase``, ``bus``, ``kind``,
    ``t_ps``, ``pkt``, ``meta``):

    * ``{"phase": "publish", "admitted": true|false, ...}``
    * ``{"phase": "dispatch", "latency_ps": N, "handled": true|false, ...}``
    * ``{"phase": "drop", ...}``
    """

    def __init__(
        self,
        target,
        include_dispatch: bool = True,
        packet_trace: Optional[TraceWriter] = None,
    ) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._stream: TextIO = open(target, "w")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self.include_dispatch = include_dispatch
        self.packet_trace = packet_trace
        self.records_written = 0

    # ------------------------------------------------------------------
    # BusObserver hooks
    # ------------------------------------------------------------------
    def on_publish(self, bus: EventBus, event: Event, admitted: bool) -> None:
        record = event.to_record()
        record.update(phase="publish", admitted=admitted)
        self._write(bus, record)
        if self.packet_trace is not None and admitted and event.pkt is not None:
            self.packet_trace.write_packet(event.time_ps, event.pkt)

    def on_dispatch(
        self, bus: EventBus, event: Event, latency_ps: int, handled: bool
    ) -> None:
        if not self.include_dispatch:
            return
        record = event.to_record()
        record.update(phase="dispatch", latency_ps=latency_ps, handled=handled)
        self._write(bus, record)

    def on_drop(self, bus: EventBus, event: Event) -> None:
        record = event.to_record()
        record.update(phase="drop")
        self._write(bus, record)

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def _write(self, bus: EventBus, record: Dict[str, object]) -> None:
        record["seq"] = self.records_written
        record["bus"] = bus.name
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush and close (closes the file only if we opened it)."""
        self._stream.flush()
        if self._owns:
            self._stream.close()
        if self.packet_trace is not None:
            self.packet_trace.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events_trace(source) -> List[Dict[str, object]]:
    """Load every record of a JSONL event trace (path or text stream)."""
    if isinstance(source, (str, os.PathLike)):
        with open(source) as handle:
            return [json.loads(line) for line in handle if line.strip()]
    return [json.loads(line) for line in source if line.strip()]


class RecordingObserver(BusObserver):
    """Keeps every bus occurrence in memory (tests, determinism checks)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def on_publish(self, bus: EventBus, event: Event, admitted: bool) -> None:
        record = event.to_record()
        record.update(phase="publish", bus=bus.name, admitted=admitted)
        self.records.append(record)

    def on_dispatch(
        self, bus: EventBus, event: Event, latency_ps: int, handled: bool
    ) -> None:
        record = event.to_record()
        record.update(
            phase="dispatch", bus=bus.name, latency_ps=latency_ps, handled=handled
        )
        self.records.append(record)

    def on_drop(self, bus: EventBus, event: Event) -> None:
        record = event.to_record()
        record.update(phase="drop", bus=bus.name)
        self.records.append(record)

    def normalized(self) -> List[Tuple]:
        """The trace with process-global packet ids remapped.

        Packet ids come from a process-wide counter, so two runs of the
        same experiment in one process see different raw ids; mapping
        each id to its first-appearance index makes equal schedules
        compare equal while still distinguishing interleavings.
        """
        id_map: Dict[object, int] = {}
        result: List[Tuple] = []
        for record in self.records:
            pkt = record["pkt"]
            if pkt is not None:
                pkt = id_map.setdefault(pkt, len(id_map))
            result.append(
                (
                    record["phase"],
                    record["bus"],
                    record["kind"],
                    record["t_ps"],
                    pkt,
                    tuple(sorted(record["meta"].items())),
                )
            )
        return result

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self.records.clear()
