"""The multi-tenant job service: admission, scheduling, preemption.

:class:`JobService` owns a pool of
:class:`~repro.experiments.parallel.PersistentWorker` processes (the
PR-6 primitive) and a bounded queue of submitted scenarios.  The
asyncio side never blocks on a worker: pipe receives run in executor
threads, so many clients can submit, poll, and cancel while simulations
run concurrently.

Scheduling model
----------------

* **Admission control** happens at ``submit``: unknown scenario names,
  invalid parameter overrides, and a full queue are refused
  synchronously — nothing invalid ever reaches a worker.
* Jobs run FIFO on the first free worker.  Each worker executes one
  simulation at a time (simulations are single-threaded; concurrency
  comes from the pool, capped by ``workers``).
* **Cancel** dequeues a queued job immediately.  A *running* phased job
  is preempted at its next telemetry window: the worker ships back an
  in-memory PR-3 checkpoint and the job parks in state ``preempted``
  until ``resume`` requeues it — on any worker, since the checkpoint
  carries the whole simulation.
* **Crash isolation**: a worker process dying (``WorkerCrashed``) kills
  neither the service nor the job — the slot respawns a fresh process
  and the job retries once before being marked ``failed``.  Job
  exceptions are not crashes; they come back as tracebacks in state
  ``failed`` without a retry.

Telemetry from workers (window snapshots) is appended to the job record
and pushed to every subscribed client as ``event`` messages.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.parallel import PersistentWorker, WorkerCrashed
from repro.scenarios import (
    ScenarioError,
    UnknownScenario,
    names,
    resolve,
    specs,
)
from repro.scenarios.spec import ScenarioSpec
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    error_reply,
    event_message,
    ok_reply,
)
from repro.serve.worker import DEFAULT_WINDOWS, worker_main

#: Default worker-pool size and queued-job bound.
DEFAULT_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 8

#: Retries a job gets after a worker *process* crash (not a job error).
CRASH_RETRIES = 1


@dataclass
class Job:
    """One submission's full lifecycle record."""

    id: str
    spec: ScenarioSpec
    state: str = "queued"
    attempts: int = 0
    error: str = ""
    result: Optional[Dict[str, Any]] = None
    checkpoint: Optional[bytes] = None
    cancel_requested: bool = False
    telemetry: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: List[asyncio.Queue] = field(default_factory=list)

    def record(self) -> Dict[str, Any]:
        """The JSON-able job record sent in ``status``/``jobs`` replies."""
        return {
            "job": self.id,
            "scenario": self.spec.name,
            "state": self.state,
            "attempts": self.attempts,
            "phased": self.spec.is_phased,
            "telemetry_windows": len(self.telemetry),
            "last_telemetry": self.telemetry[-1] if self.telemetry else None,
            "error": self.error,
            "has_checkpoint": self.checkpoint is not None,
        }


class _Slot:
    """One worker process; respawned in place after a crash."""

    def __init__(self, windows: int) -> None:
        self.windows = windows
        self.worker = PersistentWorker(worker_main, windows)

    def respawn(self) -> None:
        try:
            self.worker.close()
        except Exception:
            pass
        self.worker = PersistentWorker(worker_main, self.windows)

    def close(self) -> None:
        self.worker.close()


class JobService:
    """Admission-controlled scenario execution over a worker pool."""

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        windows: int = DEFAULT_WINDOWS,
        retries: int = CRASH_RETRIES,
    ) -> None:
        self.workers = max(1, int(workers))
        self.queue_limit = max(1, int(queue_limit))
        self.windows = max(1, int(windows))
        self.retries = max(0, int(retries))
        self.closing = False
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._counter = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._slots: List[_Slot] = []
        self._tasks: List[asyncio.Task] = []
        self._running: Dict[int, Optional[Job]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker pool and its pump tasks."""
        self._slots = [_Slot(self.windows) for _ in range(self.workers)]
        self._tasks = [
            asyncio.create_task(self._worker_loop(index))
            for index in range(self.workers)
        ]

    async def close(self) -> None:
        """Stop accepting, cancel queued jobs, shut the pool down."""
        self.closing = True
        for job in self._jobs.values():
            if job.state == "queued":
                job.state = "cancelled"
        for _ in self._tasks:
            self._queue.put_nowait(None)
        for slot, job in list(self._running.items()):
            if job is not None:
                job.cancel_requested = True
                try:
                    self._slots[slot].worker.send(("cancel", job.id))
                except WorkerCrashed:
                    pass
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for slot in self._slots:
            try:
                slot.close()
            except Exception:
                pass
        self._tasks = []
        self._slots = []

    # ------------------------------------------------------------------
    # Worker pump
    # ------------------------------------------------------------------
    def _push(self, job: Job, message: Dict[str, Any]) -> None:
        for queue in job.subscribers:
            queue.put_nowait(message)

    async def _worker_loop(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is None or self.closing:
                return
            if job.state != "queued":  # cancelled while waiting
                continue
            job.state = "running"
            self._running[index] = job
            try:
                await self._drive(loop, index, job)
            finally:
                self._running[index] = None

    async def _drive(self, loop, index: int, job: Job) -> None:
        slot = self._slots[index]
        try:
            if job.checkpoint is not None:
                blob, job.checkpoint = job.checkpoint, None
                slot.worker.send(("resume", job.id, blob))
            else:
                slot.worker.send(("run", job.id, job.spec))
            if job.cancel_requested:
                slot.worker.send(("cancel", job.id))
            while True:
                reply = await loop.run_in_executor(None, slot.worker.recv)
                kind = reply[0]
                if kind == "telemetry":
                    job.telemetry.append(reply[2])
                    self._push(
                        job,
                        event_message("telemetry", job=job.id, telemetry=reply[2]),
                    )
                elif kind == "done":
                    job.state = "done"
                    job.result = reply[2]
                    self._push(job, event_message("done", job=job.id, state="done"))
                    return
                elif kind == "failed":
                    job.state = "failed"
                    job.error = str(reply[2])
                    self._push(
                        job,
                        event_message(
                            "done", job=job.id, state="failed", error=job.error
                        ),
                    )
                    return
                elif kind == "preempted":
                    job.state = "preempted"
                    job.checkpoint = reply[2]
                    job.cancel_requested = False
                    job.telemetry.append(reply[3])
                    self._push(
                        job, event_message("done", job=job.id, state="preempted")
                    )
                    return
        except WorkerCrashed as exc:
            slot.respawn()
            job.attempts += 1
            if job.attempts <= self.retries and not self.closing:
                job.state = "queued"
                self._push(
                    job,
                    event_message(
                        "retry", job=job.id, attempts=job.attempts, error=str(exc)
                    ),
                )
                self._queue.put_nowait(job)
            else:
                job.state = "failed"
                job.error = f"worker crashed: {exc}"
                self._push(
                    job,
                    event_message("done", job=job.id, state="failed", error=job.error),
                )

    # ------------------------------------------------------------------
    # Request handling (shared by every frontend)
    # ------------------------------------------------------------------
    def _queued_count(self) -> int:
        return sum(1 for job in self._jobs.values() if job.state == "queued")

    def _job_or_none(self, request: Dict[str, Any]) -> Optional[Job]:
        return self._jobs.get(str(request.get("job", "")))

    async def handle(
        self,
        request: Dict[str, Any],
        events: Optional[asyncio.Queue] = None,
    ) -> Dict[str, Any]:
        """One request in, one reply out; pushes go to ``events``."""
        op = request.get("op")
        if op == "hello":
            return ok_reply(
                protocol=PROTOCOL_VERSION,
                workers=self.workers,
                queue_limit=self.queue_limit,
                scenarios=len(names()),
            )
        if op == "scenarios":
            tag = request.get("tag") or None
            return ok_reply(scenarios=[spec.describe() for spec in specs(tag)])
        if op == "submit":
            return self._submit(request, events)
        if op == "status":
            job = self._job_or_none(request)
            if job is None:
                return error_reply(f"no such job {request.get('job')!r}")
            return ok_reply(job=job.record())
        if op == "jobs":
            return ok_reply(jobs=[self._jobs[jid].record() for jid in self._order])
        if op == "result":
            job = self._job_or_none(request)
            if job is None:
                return error_reply(f"no such job {request.get('job')!r}")
            if job.state == "done":
                return ok_reply(job=job.record(), result=job.result)
            if job.state == "failed":
                return error_reply(job.error or "job failed", job=job.record())
            return error_reply(f"job is {job.state}, not done", job=job.record())
        if op == "cancel":
            return self._cancel(request)
        if op == "resume":
            return self._resume(request, events)
        if op == "shutdown":
            self.closing = True
            for job in self._jobs.values():
                if job.state == "queued":
                    job.state = "cancelled"
            return ok_reply(shutdown=True)
        return error_reply(f"unknown op {op!r}")

    def _submit(
        self, request: Dict[str, Any], events: Optional[asyncio.Queue]
    ) -> Dict[str, Any]:
        if self.closing:
            return error_reply("service is shutting down")
        name = str(request.get("scenario", ""))
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return error_reply("params must be an object")
        try:
            spec = resolve(name, **params)
        except UnknownScenario as exc:
            return error_reply(str(exc), registered=exc.registered)
        except ScenarioError as exc:
            return error_reply(str(exc))
        if self._queued_count() >= self.queue_limit:
            return error_reply(
                f"queue full ({self.queue_limit} queued jobs)",
                queue_limit=self.queue_limit,
            )
        self._counter += 1
        job = Job(id=f"job-{self._counter}", spec=spec)
        if events is not None:
            job.subscribers.append(events)
        self._jobs[job.id] = job
        self._order.append(job.id)
        self._queue.put_nowait(job)
        return ok_reply(job=job.id, scenario=spec.name, state=job.state)

    def _cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job_or_none(request)
        if job is None:
            return error_reply(f"no such job {request.get('job')!r}")
        if job.state == "queued":
            job.state = "cancelled"
            return ok_reply(job=job.record())
        if job.state == "running":
            job.cancel_requested = True
            for index, running in self._running.items():
                if running is job:
                    try:
                        self._slots[index].worker.send(("cancel", job.id))
                    except WorkerCrashed:
                        pass
            return ok_reply(job=job.record(), cancelling=True)
        return error_reply(f"job is {job.state}; nothing to cancel", job=job.record())

    def _resume(
        self, request: Dict[str, Any], events: Optional[asyncio.Queue]
    ) -> Dict[str, Any]:
        if self.closing:
            return error_reply("service is shutting down")
        job = self._job_or_none(request)
        if job is None:
            return error_reply(f"no such job {request.get('job')!r}")
        if job.state != "preempted" or job.checkpoint is None:
            return error_reply(
                f"job is {job.state}; only preempted jobs resume", job=job.record()
            )
        if self._queued_count() >= self.queue_limit:
            return error_reply(f"queue full ({self.queue_limit} queued jobs)")
        if events is not None and events not in job.subscribers:
            job.subscribers.append(events)
        job.state = "queued"
        self._queue.put_nowait(job)
        return ok_reply(job=job.record())
