"""The service wire protocol: line-delimited JSON.

One request or reply per line, every line one JSON object.  Requests
carry an ``op``; replies carry ``ok`` (with ``error`` when false);
server-initiated pushes carry ``event`` instead of ``ok`` — telemetry
windows and completion notices stream to the submitting client while
other requests interleave.

The protocol is deliberately plain: a shell script with a heredoc, the
:class:`~repro.serve.client.ServiceClient`, and the CI smoke test all
speak it over stdin/stdout or the local socket.  Scenario *names* cross
the wire, never code — the service resolves them against its own
:mod:`repro.scenarios` registry, so a submission is data end to end.

Ops
---

``hello``
    Capability probe; replies with protocol/service versions, the
    worker count, and the queue limit.
``scenarios``
    The registered catalog (``describe()`` of every spec; ``tag``
    filters).
``submit``
    ``{"op": "submit", "scenario": name, "params": {...}}`` — admission
    happens here: unknown names, bad overrides, and a full queue are
    refused synchronously.
``status`` / ``jobs``
    One job's record / every job's record.
``result``
    The result rows + final telemetry of a finished job.
``cancel``
    Dequeue a queued job; preempt a running one into an in-memory
    checkpoint (phased scenarios) or at the next telemetry window.
``resume``
    Requeue a preempted job from its checkpoint.
``shutdown``
    Drain nothing: stop accepting, cancel queued jobs, stop workers.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: Bumped when the message shapes change incompatibly.
PROTOCOL_VERSION = 1

#: Every state a job record can report.
JOB_STATES = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
    "preempted",
)

#: Ops a client may send.
REQUEST_OPS = (
    "hello",
    "scenarios",
    "submit",
    "status",
    "jobs",
    "result",
    "cancel",
    "resume",
    "shutdown",
)


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


def encode(message: Dict[str, Any]) -> str:
    """One message as one newline-terminated JSON line (sorted keys)."""
    return json.dumps(message, sort_keys=True) + "\n"


def decode(line: str) -> Dict[str, Any]:
    """Parse one line into a message dict; raises :class:`ProtocolError`."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def ok_reply(**fields: Any) -> Dict[str, Any]:
    """A success reply."""
    reply = {"ok": True}
    reply.update(fields)
    return reply


def error_reply(message: str, **fields: Any) -> Dict[str, Any]:
    """A refusal/failure reply; ``message`` is human-readable."""
    reply = {"ok": False, "error": message}
    reply.update(fields)
    return reply


def event_message(event: str, **fields: Any) -> Dict[str, Any]:
    """A server-initiated push (telemetry window, job completion)."""
    message = {"event": event}
    message.update(fields)
    return message
