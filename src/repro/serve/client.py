"""Clients for the job service: socket-attached and in-process.

:class:`ServiceClient` is the blocking counterpart of the socket
frontend — it writes request lines, reads reply lines, and buffers the
``event`` pushes (telemetry, completion) that interleave with replies.
The CLI's ``repro submit --socket`` path and the tests use it.

:func:`run_inline` is the zero-daemon mode: it boots a private
:class:`~repro.serve.service.JobService` (real worker processes, real
admission control), submits a batch, waits for completion events, and
tears the pool down.  ``repro submit <name>`` with no ``--socket`` goes
through here, so every registered scenario is runnable through the
service machinery without deploying anything.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serve.protocol import ProtocolError, decode, encode
from repro.serve.service import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    JobService,
)
from repro.serve.worker import DEFAULT_WINDOWS


class ServiceError(RuntimeError):
    """A refused request or a broken service connection."""


class ServiceClient:
    """Blocking line-protocol client over a unix socket."""

    def __init__(self, path: str, timeout: float = 300.0) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")
        #: Pushed events received while waiting for replies, oldest first.
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _read_message(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("service closed the connection")
        try:
            return decode(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad line from service: {exc}") from exc

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; buffer events until the reply arrives."""
        message = {"op": op}
        message.update(fields)
        self._file.write(encode(message))
        self._file.flush()
        while True:
            received = self._read_message()
            if "event" in received:
                self.events.append(received)
                continue
            return received

    def expect(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises on a refused reply."""
        reply = self.request(op, **fields)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request refused"))
        return reply

    def wait(self, job_id: str) -> str:
        """Block until ``job_id`` finishes; returns its final state.

        Consumes the pushed event stream (this client must be the job's
        submitter or resumer to be subscribed); telemetry events stay
        available in :attr:`events`.
        """
        for event in self.events:
            if event.get("event") == "done" and event.get("job") == job_id:
                return str(event.get("state", "done"))
        while True:
            received = self._read_message()
            if "event" not in received:
                raise ServiceError(f"unexpected reply while waiting: {received}")
            self.events.append(received)
            if received["event"] == "done" and received.get("job") == job_id:
                return str(received.get("state", "done"))

    def telemetry(self, job_id: str) -> List[Dict[str, Any]]:
        """Every buffered telemetry snapshot pushed for ``job_id``."""
        return [
            event["telemetry"]
            for event in self.events
            if event.get("event") == "telemetry" and event.get("job") == job_id
        ]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def run_inline(
    submissions: Sequence[Tuple[str, Dict[str, Any]]],
    workers: int = DEFAULT_WORKERS,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    windows: int = DEFAULT_WINDOWS,
) -> List[Dict[str, Any]]:
    """Run ``(scenario, params)`` submissions on a private service.

    Returns one record per submission, in submission order::

        {"job", "scenario", "state", "result", "error", "telemetry"}

    A refused submission (unknown name, bad override, full queue)
    raises :class:`ServiceError` before anything runs.
    """

    async def _run() -> List[Dict[str, Any]]:
        from repro.scenarios import load_all

        load_all()
        service = JobService(
            workers=workers, queue_limit=queue_limit, windows=windows
        )
        await service.start()
        try:
            events: asyncio.Queue = asyncio.Queue()
            job_ids: List[str] = []
            for name, params in submissions:
                reply = await service.handle(
                    {"op": "submit", "scenario": name, "params": params or {}},
                    events=events,
                )
                if not reply.get("ok"):
                    raise ServiceError(reply.get("error", "submission refused"))
                job_ids.append(reply["job"])
            pending = set(job_ids)
            telemetry: Dict[str, List[Dict[str, Any]]] = {
                job_id: [] for job_id in job_ids
            }
            while pending:
                event = await events.get()
                if event.get("event") == "telemetry":
                    telemetry[event["job"]].append(event["telemetry"])
                elif event.get("event") == "done":
                    pending.discard(event.get("job"))
            records = []
            for job_id in job_ids:
                reply = await service.handle({"op": "status", "job": job_id})
                record = reply["job"]
                result = await service.handle({"op": "result", "job": job_id})
                records.append(
                    {
                        "job": job_id,
                        "scenario": record["scenario"],
                        "state": record["state"],
                        "result": result.get("result") if result.get("ok") else None,
                        "error": record["error"],
                        "telemetry": telemetry[job_id],
                    }
                )
            return records
        finally:
            await service.close()

    return asyncio.run(_run())


def submit_inline(
    name: str, params: Optional[Dict[str, Any]] = None, **service_knobs: Any
) -> Dict[str, Any]:
    """One-scenario convenience wrapper over :func:`run_inline`."""
    (record,) = run_inline([(name, params or {})], **service_knobs)
    return record
