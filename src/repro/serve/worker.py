"""The worker side of the job service: one scenario at a time.

``worker_main`` is the module-level entry point a
:class:`~repro.experiments.parallel.PersistentWorker` process runs.  It
receives :class:`~repro.scenarios.spec.ScenarioSpec` objects over the
duplex pipe and executes them:

* **phased** specs run in telemetry windows — build the setup, advance
  the simulation a window at a time, push a
  :class:`~repro.obs.counters.EventCounters` snapshot after each, and
  poll the pipe for a cancel between windows.  A cancelled phased job
  is **preempted**: the whole simulation (kernel + setup + counters)
  is checkpointed to bytes (:func:`~repro.sim.checkpoint.dumps_checkpoint`)
  and shipped back, so ``resume`` continues exactly where the windowed
  run stopped — same format as an on-disk PR-3 checkpoint.
* **single-shot** specs run to completion in one call; telemetry
  arrives once, with the result.

Job exceptions are *jobs failing*, not workers crashing: the worker
catches them and replies ``("failed", job_id, traceback)``.  The
``("error", ...)`` shape — which ``PersistentWorker.recv`` converts to
:class:`~repro.experiments.parallel.WorkerCrashed` — is reserved for
the process actually dying, which is what the service's respawn-and-
retry logic keys on.
"""

from __future__ import annotations

import json
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.obs import EventCounters, observing
from repro.scenarios.spec import ScenarioSpec, result_rows
from repro.sim.checkpoint import dumps_checkpoint, loads_checkpoint

#: Telemetry windows a phased job is sliced into (also the cancel
#: polling granularity).
DEFAULT_WINDOWS = 8


def snapshot(sim, duration_ps: int, counters: EventCounters) -> Dict[str, int]:
    """One JSON-able telemetry record for the current window boundary."""
    duration = max(1, int(duration_ps))
    return {
        "now_ps": sim.now_ps,
        "duration_ps": duration,
        "progress": min(1.0, round(sim.now_ps / duration, 6)),
        "events_executed": sim.events_executed,
        "pending_events": sim.pending_events,
        "published": counters.total_published(),
        "handled": sum(counters.handled.values()),
        "dropped": sum(counters.dropped.values()),
    }


def _result_payload(result: Any, final: Dict[str, int]) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"rows": result_rows(result), "telemetry": final}
    try:
        json.dumps(result)
    except (TypeError, ValueError):
        pass  # non-JSON results still ship as printable rows
    else:
        payload["value"] = result
    return payload


def _cancel_requested(conn, job_id: str) -> bool:
    """Drain pending pipe messages; True if this job was cancelled."""
    cancelled = False
    while conn.poll(0):
        message = conn.recv()
        if (
            isinstance(message, tuple)
            and message
            and message[0] == "cancel"
            and message[1] == job_id
        ):
            cancelled = True
    return cancelled


def _run_windows(
    conn,
    job_id: str,
    spec: ScenarioSpec,
    setup: Any,
    counters: EventCounters,
    windows: int,
) -> Optional[Tuple[str, ...]]:
    """Advance a phased setup window by window; returns the final reply."""
    network = setup.network
    sim = network.sim
    duration_ps = int(setup.duration_ps)
    start_ps = sim.now_ps
    span = max(0, duration_ps - start_ps)
    windows = max(1, int(windows))
    for index in range(1, windows + 1):
        network.run(until_ps=start_ps + span * index // windows)
        conn.send(("telemetry", job_id, snapshot(sim, duration_ps, counters)))
        if _cancel_requested(conn, job_id):
            blob = dumps_checkpoint(
                sim,
                state={"spec": spec, "setup": setup, "counters": counters},
                label=f"preempt:{job_id}",
            )
            return ("preempted", job_id, blob, snapshot(sim, duration_ps, counters))
    result = spec.finish(setup)
    final = snapshot(sim, duration_ps, counters)
    return ("done", job_id, _result_payload(result, final))


def _run_job(conn, job_id: str, spec: ScenarioSpec, windows: int) -> Tuple:
    if spec.is_phased:
        counters = EventCounters()
        with observing(counters):
            setup = spec.build()
        return _run_windows(conn, job_id, spec, setup, counters, windows)
    counters = EventCounters()
    with observing(counters):
        result = spec.run()
    final = {
        "published": counters.total_published(),
        "handled": sum(counters.handled.values()),
        "dropped": sum(counters.dropped.values()),
    }
    conn.send(("telemetry", job_id, final))
    return ("done", job_id, _result_payload(result, final))


def _resume_job(conn, job_id: str, blob: bytes, windows: int) -> Tuple:
    _sim, state, _header = loads_checkpoint(blob)
    return _run_windows(
        conn,
        job_id,
        state["spec"],
        state["setup"],
        state["counters"],
        windows,
    )


def worker_main(conn, windows: int = DEFAULT_WINDOWS) -> None:
    """Pipe loop: run/resume jobs until told to stop or the pipe closes."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(message, tuple) or not message:
            continue
        kind = message[0]
        if kind == "stop":
            return
        try:
            if kind == "run":
                _kind, job_id, spec = message
                reply = _run_job(conn, job_id, spec, windows)
            elif kind == "resume":
                _kind, job_id, blob = message
                reply = _resume_job(conn, job_id, blob, windows)
            elif kind == "cancel":
                # A cancel for a job that already finished; nothing to do.
                continue
            else:
                reply = ("failed", str(message[1:2]), f"unknown request {kind!r}")
        except Exception:
            job_id = message[1] if len(message) > 1 else "?"
            reply = ("failed", job_id, traceback.format_exc())
        if reply is not None:
            conn.send(reply)
