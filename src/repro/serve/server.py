"""Service frontends: stdin/stdout and a local unix socket.

Both frontends speak the same line protocol (:mod:`repro.serve.protocol`)
against one shared :class:`~repro.serve.service.JobService`:

* **stdio** — one client, the process's own stdin/stdout.  The shape a
  shell pipeline or a supervising process uses (and what the CI smoke
  test drives): write request lines, read reply and event lines.
* **socket** — ``asyncio.start_unix_server`` on a filesystem path;
  any number of concurrent local clients, each with its own event
  stream.  Telemetry pushes go only to the clients subscribed to the
  job (its submitter, plus anyone who resumed it).

Replies and pushed events interleave on one output stream; clients
tell them apart by shape (``ok`` vs ``event`` key).  Per connection, a
single writer drains an output queue so a telemetry push never tears a
reply line.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import Any, Dict, Iterable, Optional

from repro.scenarios import load_all
from repro.serve.protocol import ProtocolError, decode, encode, error_reply
from repro.serve.service import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    JobService,
)
from repro.serve.worker import DEFAULT_WINDOWS


async def _pump(queue: "asyncio.Queue", write) -> None:
    """Drain ``queue`` through ``write`` until a ``None`` sentinel."""
    while True:
        message = await queue.get()
        if message is None:
            return
        await write(encode(message))


async def _handle_line(
    service: JobService, line: str, out: "asyncio.Queue"
) -> Optional[Dict[str, Any]]:
    line = line.strip()
    if not line:
        return None
    try:
        request = decode(line)
    except ProtocolError as exc:
        return error_reply(str(exc))
    return await service.handle(request, events=out)


async def serve_stdio(service: JobService) -> None:
    """Serve one client over this process's stdin/stdout."""
    loop = asyncio.get_running_loop()
    out: asyncio.Queue = asyncio.Queue()

    async def write(text: str) -> None:
        sys.stdout.write(text)
        sys.stdout.flush()

    writer = asyncio.create_task(_pump(out, write))
    try:
        while True:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:  # EOF: client hung up
                break
            reply = await _handle_line(service, line, out)
            if reply is not None:
                out.put_nowait(reply)
            if service.closing:
                break
    finally:
        out.put_nowait(None)
        await writer


async def serve_socket(service: JobService, path: str) -> None:
    """Serve concurrent local clients on a unix socket at ``path``."""
    stop = asyncio.Event()

    async def on_connect(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        out: asyncio.Queue = asyncio.Queue()

        async def write(text: str) -> None:
            writer.write(text.encode("utf-8"))
            await writer.drain()

        pump = asyncio.create_task(_pump(out, write))
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await _handle_line(service, line.decode("utf-8"), out)
                if reply is not None:
                    out.put_nowait(reply)
                if service.closing:
                    stop.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            out.put_nowait(None)
            try:
                await pump
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()

    if os.path.exists(path):
        os.unlink(path)
    server = await asyncio.start_unix_server(on_connect, path=path)
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        if os.path.exists(path):
            os.unlink(path)


async def run_service(
    socket_path: Optional[str] = None,
    workers: int = DEFAULT_WORKERS,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    windows: int = DEFAULT_WINDOWS,
) -> None:
    """Boot a service, serve until shutdown, tear the pool down."""
    load_all()
    service = JobService(
        workers=workers, queue_limit=queue_limit, windows=windows
    )
    await service.start()
    try:
        if socket_path:
            await serve_socket(service, socket_path)
        else:
            await serve_stdio(service)
    finally:
        await service.close()


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point for ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the scenario job service (stdio or unix socket).",
    )
    parser.add_argument(
        "--socket",
        default="",
        help="unix socket path to listen on (default: serve stdin/stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help=f"worker processes (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=DEFAULT_QUEUE_LIMIT,
        help=f"max queued jobs before submissions are refused "
        f"(default {DEFAULT_QUEUE_LIMIT})",
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=DEFAULT_WINDOWS,
        help=f"telemetry windows per phased job (default {DEFAULT_WINDOWS})",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    asyncio.run(
        run_service(
            socket_path=args.socket or None,
            workers=args.workers,
            queue_limit=args.queue_limit,
            windows=args.windows,
        )
    )
    return 0
