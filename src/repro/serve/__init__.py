"""The multi-tenant simulation service.

``repro.serve`` turns the scenario registry (:mod:`repro.scenarios`)
into a long-running local service: clients submit registered scenario
names (plus parameter overrides) over a line-delimited JSON protocol,
a pool of :class:`~repro.experiments.parallel.PersistentWorker`
processes runs them concurrently under admission control, and each job
streams :mod:`repro.obs` telemetry windows back while it runs.  Phased
scenarios can be preempted into in-memory PR-3 checkpoints and resumed
on any worker; :meth:`Simulator.fork` gives the chaos grid O(fork)
variants.  See docs/SERVING.md.
"""

from repro.serve.client import ServiceClient, ServiceError, run_inline, submit_inline
from repro.serve.protocol import (
    JOB_STATES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    ProtocolError,
    decode,
    encode,
    error_reply,
    event_message,
    ok_reply,
)
from repro.serve.server import main, run_service, serve_socket, serve_stdio
from repro.serve.service import (
    CRASH_RETRIES,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    Job,
    JobService,
)
from repro.serve.worker import DEFAULT_WINDOWS, snapshot, worker_main

__all__ = [
    "CRASH_RETRIES",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WINDOWS",
    "DEFAULT_WORKERS",
    "JOB_STATES",
    "Job",
    "JobService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_OPS",
    "ServiceClient",
    "ServiceError",
    "decode",
    "encode",
    "error_reply",
    "event_message",
    "main",
    "ok_reply",
    "run_inline",
    "run_service",
    "serve_socket",
    "serve_stdio",
    "snapshot",
    "submit_inline",
    "worker_main",
]
