"""The declarative scenario contract: :class:`ScenarioSpec`.

A spec is the single artifact that stands between "what to simulate"
and "how it runs" — the P4 move applied to this repo's own experiment
surface.  Every entry point (the paper experiments, the chaos grid, the
sharded fabrics, the bench rounds) describes itself as a picklable
``ScenarioSpec`` and registers it in :mod:`repro.scenarios.registry`;
the CLI, the multi-tenant service (:mod:`repro.serve`), and tests all
build simulations exclusively through the spec, so any scenario can be
listed, submitted to a worker process, preempted, or forked without
knowing which module it came from.

Two runner shapes exist:

* **single-shot** — ``runner`` names a module-level callable
  ``fn(**params) -> result`` that builds and runs to completion.
* **phased** — ``builder`` names ``fn(**params) -> setup`` and
  ``finisher`` names ``fn(setup) -> result``.  The setup object must be
  picklable and expose ``network`` (with ``.sim``) and ``duration_ps``;
  phased scenarios are the ones the service can run in telemetry
  windows, preempt into a checkpoint, and resume or fork.

Entry points are dotted strings (``"pkg.mod:callable"``), never live
callables: a spec must survive ``pickle`` across a process boundary and
``json`` into a protocol message without dragging its module graph
along.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Tuple


class ScenarioError(ValueError):
    """An invalid spec: bad entry points, unknown override, etc."""


def _load_entry(entry: str) -> Callable[..., Any]:
    """Resolve ``"pkg.mod:callable"`` into the callable it names."""
    module_name, _, attr = entry.partition(":")
    if not module_name or not attr:
        raise ScenarioError(
            f"entry point {entry!r} is not of the form 'pkg.mod:callable'"
        )
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise ScenarioError(
            f"entry point {entry!r}: {module_name} has no attribute {attr!r}"
        ) from None
    if not callable(fn):
        raise ScenarioError(f"entry point {entry!r} is not callable")
    return fn


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario: entry points, knobs, and metadata.

    ``params`` are the keyword arguments handed to the runner (or
    builder); they must be picklable, and for service submission they
    should also be JSON-representable.  The remaining fields are
    metadata: they describe the scenario for listings and admission
    decisions but are never passed to the entry point.
    """

    name: str
    runner: str = ""
    builder: str = ""
    finisher: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    app: str = ""
    topology: str = ""
    workload: str = ""
    fault_plan: str = ""
    seed: Optional[int] = None
    duration_ps: Optional[int] = None
    tags: Tuple[str, ...] = ()
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        phased = bool(self.builder or self.finisher)
        if phased and not (self.builder and self.finisher):
            raise ScenarioError(
                f"{self.name}: phased scenarios need both builder and finisher"
            )
        if bool(self.runner) == phased:
            raise ScenarioError(f"{self.name}: give either runner or builder+finisher")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_phased(self) -> bool:
        """Whether this scenario splits into build and finish phases."""
        return bool(self.builder)

    def describe(self) -> Dict[str, Any]:
        """A JSON-able summary for listings and protocol replies."""
        return {
            "name": self.name,
            "entry": self.runner or f"{self.builder} -> {self.finisher}",
            "phased": self.is_phased,
            "params": {key: repr(value) for key, value in sorted(self.params.items())},
            "app": self.app,
            "topology": self.topology,
            "workload": self.workload,
            "fault_plan": self.fault_plan,
            "seed": self.seed,
            "duration_ps": self.duration_ps,
            "tags": list(self.tags),
            "summary": self.summary,
        }

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_params(self, **overrides: Any) -> "ScenarioSpec":
        """A new spec with ``overrides`` merged into ``params``.

        Only knobs the scenario already declares may be overridden —
        an unknown key is a spec error, not a silent no-op, so a typo'd
        submission fails at admission instead of mid-run.
        """
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            raise ScenarioError(
                f"{self.name}: unknown override(s) {', '.join(unknown)}; "
                f"declared params: {sorted(self.params) or '(none)'}"
            )
        merged = dict(self.params)
        merged.update(overrides)
        return replace(self, params=merged)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build(self) -> Any:
        """Run the build phase of a phased scenario; returns the setup."""
        if not self.is_phased:
            raise ScenarioError(f"{self.name} is single-shot; call run()")
        return _load_entry(self.builder)(**self.params)

    def finish(self, setup: Any) -> Any:
        """Run a phased scenario's finisher on ``setup``."""
        if not self.is_phased:
            raise ScenarioError(f"{self.name} is single-shot; call run()")
        return _load_entry(self.finisher)(setup)

    def run(self) -> Any:
        """Build and run the scenario to completion; returns its result."""
        if self.is_phased:
            return self.finish(self.build())
        return _load_entry(self.runner)(**self.params)


def result_rows(result: Any) -> Dict[str, list]:
    """Titled, printable row blocks for an arbitrary scenario result.

    Every experiment in the repo returns one of a few shapes — an object
    with ``summary_rows()`` / ``summary_row()``, a list of such objects,
    a dict of titled lists, or plain data.  This normalizes them all to
    ``{title: [row, ...]}`` so the CLI and the service stream the same
    text a direct run would print.
    """
    if result is None:
        return {}
    if isinstance(result, dict):
        blocks: Dict[str, list] = {}
        for key, value in result.items():
            if isinstance(value, list) and all(isinstance(v, str) for v in value):
                blocks[str(key)] = value
            else:
                inner = result_rows(value)
                if inner:
                    for title, rows in inner.items():
                        name = f"{key}" if title == "result" else f"{key}: {title}"
                        blocks[name] = rows
                else:
                    blocks[str(key)] = [repr(value)]
        return blocks
    if hasattr(result, "summary_rows"):
        return {"result": list(result.summary_rows())}
    if hasattr(result, "summary_row"):
        return {"result": [result.summary_row()]}
    if isinstance(result, (list, tuple)):
        rows = []
        for item in result:
            if hasattr(item, "summary_row"):
                rows.append(item.summary_row())
            else:
                rows.append(repr(item))
        return {"result": rows}
    return {"result": [repr(result)]}
