"""The process-wide scenario registry.

Modules declare their scenarios at import time with :func:`register`;
:func:`load_all` imports every contributing module so listings and
name resolution see the full catalog.  Lookup failures raise
:class:`UnknownScenario`, which carries the registered names — callers
print the catalog instead of a bare ``KeyError``.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, List, Optional, Union

from repro.scenarios.spec import ScenarioError, ScenarioSpec

#: Every module that registers scenarios on import, in catalog order.
#: (Kept explicit rather than discovered: the order fixes listing order,
#: and a module that silently fell out of the list would silently fall
#: out of the service's catalog.)
SCENARIO_MODULES = (
    "repro.experiments.microburst_exp",
    "repro.experiments.events_exp",
    "repro.experiments.psa_fig_exp",
    "repro.experiments.staleness_exp",
    "repro.experiments.table2_exp",
    "repro.experiments.frr_exp",
    "repro.experiments.liveness_exp",
    "repro.experiments.hula_exp",
    "repro.experiments.aqm_exp",
    "repro.experiments.ndp_exp",
    "repro.experiments.policing_exp",
    "repro.experiments.flow_rate_exp",
    "repro.experiments.netcache_exp",
    "repro.experiments.netchain_exp",
    "repro.experiments.int_exp",
    "repro.experiments.scheduling_exp",
    "repro.experiments.ecn_exp",
    "repro.experiments.migration_exp",
    "repro.experiments.cms_exp",
    "repro.experiments.emulation_exp",
    "repro.experiments.merger_exp",
    "repro.experiments.reliable_exp",
    "repro.experiments.shard_exp",
    "repro.experiments.bench",
    "repro.faults.chaos",
    "repro.search.runner",
)


class UnknownScenario(KeyError):
    """An unregistered scenario name; knows what *is* registered."""

    def __init__(self, name: str, registered: List[str]) -> None:
        self.name = name
        self.registered = registered
        listing = "\n  ".join(registered) if registered else "(none)"
        super().__init__(
            f"unknown scenario {name!r}; registered scenarios:\n  {listing}"
        )

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0]


_REGISTRY: Dict[str, ScenarioSpec] = {}
_LOADED = False


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the catalog; returns it for chaining.

    Re-registering the identical spec is a no-op (modules may be
    re-imported under different names in tests); registering a
    *different* spec under an existing name is an error — scenario names
    are the service's stable public identifiers.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ScenarioError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def load_all() -> int:
    """Import every contributing module; returns the catalog size."""
    global _LOADED
    if not _LOADED:
        for module in SCENARIO_MODULES:
            importlib.import_module(module)
        _LOADED = True
    return len(_REGISTRY)


def get(name: str, tag: Optional[str] = None) -> ScenarioSpec:
    """Look up a registered spec by name.

    With ``tag``, only scenarios carrying that tag resolve — and the
    :class:`UnknownScenario` listing is limited to them, so e.g. an
    events-stats source typo prints the sources, not the whole catalog.
    """
    load_all()
    spec = _REGISTRY.get(name)
    if spec is None or (tag is not None and tag not in spec.tags):
        raise UnknownScenario(name, names(tag))
    return spec


def names(tag: Optional[str] = None) -> List[str]:
    """Registered names in catalog (registration) order."""
    load_all()
    return [spec.name for spec in _REGISTRY.values() if tag is None or tag in spec.tags]


def specs(tag: Optional[str] = None) -> List[ScenarioSpec]:
    """Registered specs in catalog order."""
    load_all()
    return [spec for spec in _REGISTRY.values() if tag is None or tag in spec.tags]


def resolve(spec_or_name: Union[str, ScenarioSpec], **overrides: Any) -> ScenarioSpec:
    """A runnable spec from a name or spec, with overrides applied."""
    if isinstance(spec_or_name, ScenarioSpec):
        spec = spec_or_name
    else:
        spec = get(spec_or_name)
    if overrides:
        spec = spec.with_params(**overrides)
    return spec


def run(spec_or_name: Union[str, ScenarioSpec], **overrides: Any) -> Any:
    """Resolve and run a scenario to completion; returns its result."""
    return resolve(spec_or_name, **overrides).run()
