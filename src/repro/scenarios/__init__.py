"""Declarative scenario specs and the registry behind every entry point.

``repro.scenarios`` is the spine between scenario *descriptions* and
scenario *execution*: experiments, chaos cells, sharded fabrics, and
bench rounds all register a picklable :class:`ScenarioSpec`, and the
CLI (``repro scenarios --list`` / ``repro submit``) plus the serving
layer (:mod:`repro.serve`) run them exclusively through this registry.
See docs/SERVING.md.
"""

from repro.scenarios.registry import (
    SCENARIO_MODULES,
    UnknownScenario,
    get,
    load_all,
    names,
    register,
    resolve,
    run,
    specs,
)
from repro.scenarios.spec import ScenarioError, ScenarioSpec, result_rows

__all__ = [
    "SCENARIO_MODULES",
    "ScenarioError",
    "ScenarioSpec",
    "UnknownScenario",
    "get",
    "load_all",
    "names",
    "register",
    "resolve",
    "result_rows",
    "run",
    "specs",
]
