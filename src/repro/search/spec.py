"""Declarative search specifications over registered scenarios.

A :class:`SearchSpec` is to scenario *space* what a
:class:`~repro.scenarios.spec.ScenarioSpec` is to one scenario: a
picklable, JSON-able description of *what to explore* — which registered
scenario, which typed parameter domains (:class:`RangeDomain`,
:class:`ChoiceDomain`), what objective expression to optimize over the
result's metrics, which strategy (grid / random / evolve), and a trial
budget plus seed that make the whole search reproducible.

Domains only range over knobs the target scenario *declares* — an
undeclared key is rejected at admission (:meth:`SearchSpec.validate`),
mirroring ``ScenarioSpec.with_params``, so a typo'd sweep fails before
any trial runs.  Everything in a spec round-trips through
:meth:`SearchSpec.to_dict` / :meth:`SearchSpec.from_dict`, which is how
a search crosses the service wire (``repro submit search/run``) and how
``SEARCH_*.json`` artifacts record exactly what produced them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Strategies :mod:`repro.search.strategies` implements.
STRATEGIES = ("grid", "random", "evolve")

#: Objective directions.
MODES = ("max", "min")


class SearchError(ValueError):
    """An invalid search spec: bad domain, unknown knob, bad strategy."""


# ---------------------------------------------------------------------------
# Parameter domains
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChoiceDomain:
    """A finite set of JSON-able values, tried in declaration order."""

    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SearchError("choice domain needs at least one value")

    def grid_points(self) -> List[Any]:
        """Every value, in declaration order."""
        return list(self.values)

    def sample(self, rng) -> Any:
        """One uniformly chosen value."""
        return self.values[rng.randint(0, len(self.values) - 1)]

    def mutate(self, value: Any, rng) -> Any:
        """A fresh uniform draw (choices have no neighbourhood)."""
        return self.sample(rng)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "choice", "values": list(self.values)}


@dataclass(frozen=True)
class RangeDomain:
    """A numeric interval, linear or log-scaled, float or integer.

    ``steps`` is the grid resolution (endpoints included); random
    sampling draws uniformly (in log space when ``log``), and mutation
    perturbs locally by ``MUTATION_SPAN`` of the interval, clamped.
    """

    low: float
    high: float
    steps: int = 5
    log: bool = False
    integer: bool = False

    #: Fraction of the (possibly log) span a mutation may move a value.
    MUTATION_SPAN = 0.25

    def __post_init__(self) -> None:
        if not (self.low < self.high):
            raise SearchError(
                f"range domain needs low < high, got [{self.low}, {self.high}]"
            )
        if self.steps < 2:
            raise SearchError(f"range domain needs steps >= 2, got {self.steps}")
        if self.log and self.low <= 0:
            raise SearchError(f"log-scaled domain needs low > 0, got {self.low}")

    # -- helpers --------------------------------------------------------
    def _cast(self, value: float) -> Any:
        if self.integer:
            return max(int(self.low), min(int(self.high), round(value)))
        return float(value)

    def _lerp(self, t: float) -> float:
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            return math.exp(lo + (hi - lo) * t)
        return self.low + (self.high - self.low) * t

    # -- the domain protocol -------------------------------------------
    def grid_points(self) -> List[Any]:
        """``steps`` evenly spaced points (log-evenly when ``log``).

        Integer domains deduplicate after rounding, preserving order, so
        a 5-step grid over [1, 3] yields ``[1, 2, 3]`` rather than
        repeats.
        """
        points: List[Any] = []
        for index in range(self.steps):
            value = self._cast(self._lerp(index / (self.steps - 1)))
            if value not in points:
                points.append(value)
        return points

    def sample(self, rng) -> Any:
        """One uniform draw from the interval."""
        return self._cast(self._lerp(rng.random()))

    def mutate(self, value: Any, rng) -> Any:
        """A local perturbation of ``value``, clamped to the interval."""
        offset = (rng.random() * 2.0 - 1.0) * self.MUTATION_SPAN
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            at = math.log(max(float(value), self.low)) + offset * (hi - lo)
            moved = math.exp(min(hi, max(lo, at)))
        else:
            moved = min(
                self.high,
                max(self.low, float(value) + offset * (self.high - self.low)),
            )
        return self._cast(moved)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "range",
            "low": self.low,
            "high": self.high,
            "steps": self.steps,
            "log": self.log,
            "integer": self.integer,
        }


def domain_from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild a domain from its :meth:`to_dict` form."""
    kind = data.get("kind")
    if kind == "choice":
        return ChoiceDomain(values=tuple(data.get("values", ())))
    if kind == "range":
        return RangeDomain(
            low=float(data["low"]),
            high=float(data["high"]),
            steps=int(data.get("steps", 5)),
            log=bool(data.get("log", False)),
            integer=bool(data.get("integer", False)),
        )
    raise SearchError(f"unknown domain kind {kind!r}")


def parse_domain(text: str) -> Any:
    """Parse the CLI's compact domain syntax into a domain object.

    Forms (all values JSON-parsed, falling back to strings)::

        choice:a,b,c          # finite set
        range:lo:hi[:steps]   # linear float interval
        irange:lo:hi[:steps]  # integer interval
        log:lo:hi[:steps]     # log-scaled float interval
    """
    import json

    kind, _, rest = text.partition(":")
    if kind == "choice":
        values = []
        for item in rest.split(","):
            try:
                values.append(json.loads(item))
            except json.JSONDecodeError:
                values.append(item)
        return ChoiceDomain(values=tuple(values))
    if kind in ("range", "irange", "log"):
        parts = rest.split(":")
        if len(parts) not in (2, 3):
            raise SearchError(
                f"domain {text!r} needs lo:hi or lo:hi:steps after {kind!r}"
            )
        try:
            low, high = float(parts[0]), float(parts[1])
            steps = int(parts[2]) if len(parts) == 3 else 5
        except ValueError as exc:
            raise SearchError(f"domain {text!r}: {exc}") from None
        return RangeDomain(
            low=low,
            high=high,
            steps=steps,
            log=kind == "log",
            integer=kind == "irange",
        )
    raise SearchError(
        f"domain {text!r}: unknown kind {kind!r} "
        "(choice:…, range:lo:hi[:steps], irange:…, log:…)"
    )


# ---------------------------------------------------------------------------
# The search spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SearchSpec:
    """One declarative search: scenario, domains, objective, strategy.

    ``fixed`` are overrides applied to every trial unchanged (e.g. a
    shortened ``duration_ps``); ``domains`` are the knobs a strategy
    explores.  ``budget`` caps the total trial count for every strategy;
    ``seed`` makes random sampling and the evolutionary loop fully
    deterministic.  The GA knobs (``population`` … ``crossover``) are
    ignored by grid/random.
    """

    scenario: str
    objective: str
    domains: Dict[str, Any] = field(default_factory=dict)
    fixed: Dict[str, Any] = field(default_factory=dict)
    mode: str = "max"
    strategy: str = "grid"
    budget: int = 16
    seed: int = 7
    label: str = "local"
    population: int = 8
    generations: int = 4
    tournament: int = 2
    mutation: float = 0.3
    crossover: float = 0.5

    def __post_init__(self) -> None:
        if not self.scenario:
            raise SearchError("search needs a target scenario name")
        if not self.objective:
            raise SearchError("search needs an objective expression")
        if self.mode not in MODES:
            raise SearchError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.strategy not in STRATEGIES:
            raise SearchError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if not self.domains:
            raise SearchError("search needs at least one parameter domain")
        if self.budget < 1:
            raise SearchError(f"budget must be positive, got {self.budget}")
        if self.population < 2:
            raise SearchError(f"population must be at least 2, got {self.population}")
        if self.generations < 1:
            raise SearchError(f"generations must be positive, got {self.generations}")
        if self.tournament < 1:
            raise SearchError(
                f"tournament size must be positive, got {self.tournament}"
            )
        for name, rate in (("mutation", self.mutation), ("crossover", self.crossover)):
            if not 0.0 <= rate <= 1.0:
                raise SearchError(f"{name} rate must be in [0, 1], got {rate}")
        overlap = sorted(set(self.domains) & set(self.fixed))
        if overlap:
            raise SearchError(
                f"knob(s) {', '.join(overlap)} appear in both domains and fixed"
            )

    # ------------------------------------------------------------------
    def validate(self) -> "SearchSpec":
        """Check the spec against the scenario registry; returns self.

        Raises :class:`~repro.scenarios.registry.UnknownScenario` for an
        unregistered scenario and :class:`SearchError` for knobs the
        scenario does not declare — the same admission contract
        ``ScenarioSpec.with_params`` enforces, applied before any trial
        runs (or crosses the service wire).
        """
        from repro import scenarios

        base = scenarios.get(self.scenario)
        unknown = sorted((set(self.domains) | set(self.fixed)) - set(base.params))
        if unknown:
            raise SearchError(
                f"{self.scenario}: undeclared knob(s) {', '.join(unknown)}; "
                f"declared params: {sorted(base.params)}"
            )
        return self

    def sorted_domains(self) -> List[Tuple[str, Any]]:
        """``(name, domain)`` pairs in name order — the canonical
        iteration order every strategy uses."""
        return sorted(self.domains.items())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able form that :meth:`from_dict` rebuilds exactly."""
        return {
            "scenario": self.scenario,
            "objective": self.objective,
            "domains": {
                name: domain.to_dict() for name, domain in self.sorted_domains()
            },
            "fixed": dict(sorted(self.fixed.items())),
            "mode": self.mode,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "label": self.label,
            "population": self.population,
            "generations": self.generations,
            "tournament": self.tournament,
            "mutation": self.mutation,
            "crossover": self.crossover,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written
        JSON); unknown keys are rejected so typos fail loudly."""
        if not isinstance(data, dict):
            raise SearchError(
                f"search spec must be an object, got {type(data).__name__}"
            )
        known = {
            "scenario",
            "objective",
            "domains",
            "fixed",
            "mode",
            "strategy",
            "budget",
            "seed",
            "label",
            "population",
            "generations",
            "tournament",
            "mutation",
            "crossover",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SearchError(f"unknown search spec key(s): {', '.join(unknown)}")
        domains_raw = data.get("domains") or {}
        if not isinstance(domains_raw, dict):
            raise SearchError("domains must be an object of name -> domain")
        domains = {
            name: domain_from_dict(domain) for name, domain in domains_raw.items()
        }
        kwargs = {key: value for key, value in data.items() if key != "domains"}
        return cls(domains=domains, **kwargs)
