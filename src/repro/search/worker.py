"""The per-trial execution loop run inside a `PersistentWorker`.

One worker process serves many trials over its duplex pipe: the base
:class:`ScenarioSpec` arrives once as a spawn argument, then
``("trial", index, params)`` requests come in, ``("trial-ok", index,
payload)`` or ``("trial-err", index, traceback)`` replies go out, and
``("stop",)`` ends the loop.  The payload carries *raw* metrics
(NaN and all — the parent decides what an invalid objective means),
per-trial event counters, and how the trial was built.

Fork amortization: a phased scenario's build phase depends only on its
parameters, so the worker keeps a small cache of pristine setups keyed
by the canonical parameter JSON and runs every finisher on a
``Simulator.fork`` of the cached setup (the chaos grid proved fork-
then-run byte-identical to fresh-build-then-run).  Crucially the
finisher *always* runs on a fork — first build included — so the
per-trial counters never depend on whether the cache hit, and the
artifact stays deterministic under any trial-to-worker schedule.
"""

from __future__ import annotations

import json
import time
import traceback
from collections import OrderedDict
from typing import Any, Dict

from repro.obs import EventCounters, observing
from repro.scenarios.spec import ScenarioSpec
from repro.search.objective import extract_metrics

#: Pristine setups a worker keeps alive (per distinct parameter set).
SETUP_CACHE_SIZE = 4


def params_key(params: Dict[str, Any]) -> str:
    """The canonical cache key for one trial's parameter assignment."""
    return json.dumps(params, sort_keys=True, default=repr)


def _counter_totals(counters: EventCounters) -> Dict[str, int]:
    return {
        "published": counters.total_published(),
        "handled": sum(counters.handled.values()),
        "dropped": sum(counters.dropped.values()),
    }


def run_trial(
    base: ScenarioSpec,
    params: Dict[str, Any],
    cache: "OrderedDict[str, Any]",
) -> Dict[str, Any]:
    """Execute one trial and return its raw payload.

    Phased scenarios build (or fetch) a pristine setup, fork it, and run
    the finisher on the fork under fresh :class:`EventCounters`; single-
    shot scenarios just run.  ``source`` records which path produced the
    result (``"run"`` / ``"fresh"`` / ``"forked"``) — it lands under the
    artifact's ``host`` section because it depends on worker scheduling.
    """
    spec = base.with_params(**params)
    started = time.perf_counter()
    counters = EventCounters()
    if spec.is_phased:
        key = params_key(params)
        if key in cache:
            pristine = cache[key]
            cache.move_to_end(key)
            source = "forked"
        else:
            pristine = spec.build()
            cache[key] = pristine
            while len(cache) > SETUP_CACHE_SIZE:
                cache.popitem(last=False)
            source = "fresh"
        # Always fork — even right after a fresh build — so the trial's
        # counters are identical whether or not the cache hit.
        sim, setup = pristine.network.sim.fork(state=pristine)
        with observing(counters):
            result = spec.finish(setup)
        events = sim.events_executed
    else:
        with observing(counters):
            result = spec.run()
        events = None
    wall_s = time.perf_counter() - started
    payload: Dict[str, Any] = {
        "metrics": extract_metrics(result),
        "counters": _counter_totals(counters),
        "source": source if spec.is_phased else "run",
        "wall_s": wall_s,
    }
    if events is not None:
        payload["counters"]["events_executed"] = events
    return payload


def search_worker_main(conn, base: ScenarioSpec) -> None:
    """Pipe loop: serve trial requests until told to stop.

    Module-level and picklable so :class:`~repro.experiments.parallel.
    PersistentWorker` can spawn it on platforms without ``fork``.  Trial
    exceptions become ``("trial-err", ...)`` replies — a failed trial,
    not a crashed worker — so one bad parameter point cannot take the
    whole search down.
    """
    cache: "OrderedDict[str, Any]" = OrderedDict()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(message, tuple) or not message:
            continue
        if message[0] == "stop":
            return
        if message[0] == "trial":
            _kind, index, params = message
            try:
                payload = run_trial(base, params, cache)
            except Exception:
                conn.send(("trial-err", index, traceback.format_exc()))
            else:
                conn.send(("trial-ok", index, payload))
