"""Objective evaluation over scenario results.

A scenario returns whatever shape its experiment always returned — a
dataclass (``AqmResult``), a dict of results, a plain number.
:func:`extract_metrics` flattens any of these into a flat
``{name: number}`` dict (dotted paths for nesting, ``.len`` for list
sizes), and :func:`evaluate` runs the :class:`SearchSpec`'s objective
expression over those names with a whitelisted AST — no attribute
access, no subscripts, no arbitrary calls — so a search artifact can
record the exact expression that ranked its trials without ever
``eval``-ing untrusted structure.

Edge cases are explicit, not silent: a name the metrics don't contain
raises :class:`ObjectiveError` listing what *is* available, and a
non-finite result (NaN/inf — e.g. Jain fairness over an empty flow set)
is an invalid trial, never a winning one.
"""

from __future__ import annotations

import ast
import math
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Mapping

#: Functions an objective expression may call.
FUNCTIONS: Dict[str, Any] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "log": math.log,
    "log2": math.log2,
    "log10": math.log10,
    "exp": math.exp,
}

#: How deep :func:`extract_metrics` follows nested containers.
MAX_DEPTH = 4


class ObjectiveError(ValueError):
    """A malformed expression or a metric the result does not carry."""


# ---------------------------------------------------------------------------
# Metric extraction
# ---------------------------------------------------------------------------
def _walk(value: Any, prefix: str, out: Dict[str, float], depth: int) -> None:
    if isinstance(value, bool):
        out[prefix] = int(value)
        return
    if isinstance(value, (int, float)):
        out[prefix] = value
        return
    if depth >= MAX_DEPTH:
        return
    if is_dataclass(value) and not isinstance(value, type):
        for spec in fields(value):
            name = f"{prefix}.{spec.name}" if prefix else spec.name
            _walk(getattr(value, spec.name), name, out, depth + 1)
        return
    if isinstance(value, Mapping):
        for key, item in value.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            _walk(item, name, out, depth + 1)
        return
    if isinstance(value, (list, tuple)):
        if prefix:
            out[f"{prefix}.len"] = len(value)
        return


def extract_metrics(result: Any) -> Dict[str, float]:
    """Flatten a scenario result into ``{dotted.name: number}``.

    Dataclass fields, mapping entries, and nested combinations thereof
    all contribute; lists contribute only their length (``name.len``) —
    per-element metrics would make the namespace depend on run length.
    Non-numeric leaves are skipped.  A bare number becomes ``{"value":
    n}`` so even trivial runners are searchable.
    """
    out: Dict[str, float] = {}
    if isinstance(result, bool) or isinstance(result, (int, float)):
        return {"value": int(result) if isinstance(result, bool) else result}
    _walk(result, "", out, 0)
    return out


def sanitize_metrics(metrics: Dict[str, float]) -> Dict[str, Any]:
    """Metrics with non-finite values replaced by strings.

    ``SEARCH_*.json`` artifacts are strict JSON (``allow_nan=False``);
    a NaN or infinity survives as ``"nan"`` / ``"inf"`` / ``"-inf"`` so
    the trial record still shows *why* its objective was invalid.
    """
    safe: Dict[str, Any] = {}
    for name, value in sorted(metrics.items()):
        if isinstance(value, float) and not math.isfinite(value):
            if math.isnan(value):
                safe[name] = "nan"
            else:
                safe[name] = "inf" if value > 0 else "-inf"
        else:
            safe[name] = value
    return safe


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------
_ALLOWED_NODES = (
    ast.Expression,
    ast.BinOp,
    ast.UnaryOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
    ast.USub,
    ast.UAdd,
    ast.Constant,
    ast.Name,
    ast.Load,
    ast.Call,
    ast.Compare,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.BoolOp,
    ast.And,
    ast.Or,
    ast.IfExp,
)


def compile_objective(expression: str) -> ast.Expression:
    """Parse and whitelist-check an objective expression.

    Raises :class:`ObjectiveError` on syntax errors, non-numeric
    constants, and any construct outside the arithmetic/compare/call
    whitelist — checked once at admission so a bad expression never
    reaches a worker.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ObjectiveError(f"objective {expression!r}: {exc.msg}") from None
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise ObjectiveError(
                f"objective {expression!r}: {type(node).__name__} is not allowed"
            )
        if isinstance(node, ast.Constant) and not isinstance(
            node.value, (int, float, bool)
        ):
            raise ObjectiveError(
                f"objective {expression!r}: only numeric constants are allowed"
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name) or node.func.id not in FUNCTIONS:
                raise ObjectiveError(
                    f"objective {expression!r}: only "
                    f"{sorted(FUNCTIONS)} may be called"
                )
            if node.keywords:
                raise ObjectiveError(
                    f"objective {expression!r}: keyword arguments are not allowed"
                )
    return tree


def _eval_node(node: ast.AST, metrics: Dict[str, float], expression: str) -> Any:
    if isinstance(node, ast.Expression):
        return _eval_node(node.body, metrics, expression)
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in metrics:
            return metrics[node.id]
        if node.id in FUNCTIONS:
            return FUNCTIONS[node.id]
        available = ", ".join(sorted(metrics)) or "(none)"
        raise ObjectiveError(
            f"objective {expression!r}: no metric {node.id!r}; "
            f"available: {available}"
        )
    if isinstance(node, ast.BinOp):
        left = _eval_node(node.left, metrics, expression)
        right = _eval_node(node.right, metrics, expression)
        ops = {
            ast.Add: lambda: left + right,
            ast.Sub: lambda: left - right,
            ast.Mult: lambda: left * right,
            ast.Div: lambda: left / right,
            ast.FloorDiv: lambda: left // right,
            ast.Mod: lambda: left % right,
            ast.Pow: lambda: left**right,
        }
        try:
            return ops[type(node.op)]()
        except ZeroDivisionError:
            raise ObjectiveError(
                f"objective {expression!r}: division by zero"
            ) from None
    if isinstance(node, ast.UnaryOp):
        operand = _eval_node(node.operand, metrics, expression)
        return -operand if isinstance(node.op, ast.USub) else +operand
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, metrics, expression)
        for op, comparator in zip(node.ops, node.comparators):
            right = _eval_node(comparator, metrics, expression)
            checks = {
                ast.Eq: left == right,
                ast.NotEq: left != right,
                ast.Lt: left < right,
                ast.LtE: left <= right,
                ast.Gt: left > right,
                ast.GtE: left >= right,
            }
            if not checks[type(op)]:
                return False
            left = right
        return True
    if isinstance(node, ast.BoolOp):
        values = [_eval_node(item, metrics, expression) for item in node.values]
        return all(values) if isinstance(node.op, ast.And) else any(values)
    if isinstance(node, ast.IfExp):
        test = _eval_node(node.test, metrics, expression)
        branch = node.body if test else node.orelse
        return _eval_node(branch, metrics, expression)
    if isinstance(node, ast.Call):
        fn = _eval_node(node.func, metrics, expression)
        args = [_eval_node(arg, metrics, expression) for arg in node.args]
        try:
            return fn(*args)
        except ValueError as exc:
            raise ObjectiveError(f"objective {expression!r}: {exc}") from None
    raise ObjectiveError(
        f"objective {expression!r}: {type(node).__name__} is not allowed"
    )


def evaluate(expression: str, metrics: Dict[str, float]) -> float:
    """The objective value of one trial's metrics.

    Raises :class:`ObjectiveError` when the expression references a
    metric the trial does not carry or produces a non-finite / non-
    numeric value — callers record the message on the trial instead of
    crashing the search.
    """
    tree = compile_objective(expression)
    value = _eval_node(tree, metrics, expression)
    if isinstance(value, bool):
        value = int(value)
    if not isinstance(value, (int, float)):
        raise ObjectiveError(
            f"objective {expression!r} produced {type(value).__name__}, not a number"
        )
    if not math.isfinite(value):
        raise ObjectiveError(
            f"objective {expression!r} produced a non-finite value ({value!r})"
        )
    return float(value)
