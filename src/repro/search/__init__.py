"""Parameter search & sweep harness over registered scenarios.

The what-if layer the paper's cheap event-driven model earns: a
declarative :class:`SearchSpec` names a registered scenario, typed
parameter domains, and an objective expression; three strategies (grid,
random, evolutionary) explore it on the persistent worker pool with
``Simulator.fork`` amortization, and the result lands as a schema'd,
deterministic ``SEARCH_<label>.json`` artifact.  See ``docs/SEARCH.md``.
"""

from repro.search.objective import (
    ObjectiveError,
    evaluate,
    extract_metrics,
    sanitize_metrics,
)
from repro.search.report import ascii_frontier, compare, leaderboard
from repro.search.runner import (
    read_artifact,
    run_search,
    run_search_job,
    trial_fingerprint,
    write_artifact,
)
from repro.search.spec import (
    ChoiceDomain,
    RangeDomain,
    SearchError,
    SearchSpec,
    domain_from_dict,
    parse_domain,
)
from repro.search.strategies import (
    EvolveStrategy,
    GridStrategy,
    RandomStrategy,
    make_strategy,
)

__all__ = [
    "ChoiceDomain",
    "EvolveStrategy",
    "GridStrategy",
    "ObjectiveError",
    "RandomStrategy",
    "RangeDomain",
    "SearchError",
    "SearchSpec",
    "ascii_frontier",
    "compare",
    "domain_from_dict",
    "evaluate",
    "extract_metrics",
    "leaderboard",
    "make_strategy",
    "parse_domain",
    "read_artifact",
    "run_search",
    "run_search_job",
    "sanitize_metrics",
    "trial_fingerprint",
    "write_artifact",
]
