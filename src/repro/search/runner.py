"""Search execution: strategies x worker pool -> ``SEARCH_*.json``.

:func:`run_search` drives a strategy's ask/tell loop over a pool of
:class:`~repro.experiments.parallel.PersistentWorker` processes (one
:func:`~repro.search.worker.search_worker_main` loop each), multiplexed
with :func:`~repro.experiments.parallel.wait_any`.  A crashed worker is
respawned and its in-flight trial retried once; a trial that merely
*raises* is a failed trial, recorded with its error and never a winner.

Determinism is split structurally, not promised by discipline: the
artifact's top level — trial order, params, metrics, objectives,
fingerprints, best, frontier — depends only on the spec (strategies
draw from seeded streams; workers return identical payloads regardless
of scheduling because phased trials always run on a fork of a pristine
build).  Everything measured rather than derived — wall times, the
host-speed calibration, fresh/forked build counts, crash retries —
lives under the single top-level ``"host"`` key, which ``repro search
--omit-host`` drops so CI can ``cmp`` two runs byte-for-byte.

Schema (version 1)::

    {
      "schema": 1,
      "kind": "search",
      "label": "nightly",
      "python": "3.12.3",
      "search": { ...SearchSpec.to_dict()... },
      "trials": [
        {
          "index": 0,
          "generation": 0,           # ask/tell batch number
          "params": {"blaster_gbps": 6.0},
          "metrics": {"fairness": 0.93, ...},   # sanitized (NaN -> "nan")
          "objective": 0.93,         # null when error is set
          "error": null,             # ObjectiveError / worker traceback
          "fingerprint": "3f2a...",  # sha256 over scenario+params+metrics
          "counters": {"published": 1234, "handled": 1200, "dropped": 0}
        }, ...
      ],
      "best": { ...the winning trial, same shape... },   # null if none
      "frontier": [ {"index": 0, "objective": 0.93}, ...],  # running best
      "truncated": false,            # strategy hit the budget early
      "host": { ... }                # measured, non-deterministic; optional
    }
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    PersistentWorker,
    WorkerCrashed,
    default_workers,
    wait_any,
)
from repro.scenarios.spec import ScenarioSpec
from repro.search.objective import ObjectiveError, evaluate, sanitize_metrics
from repro.search.spec import SearchError, SearchSpec
from repro.search.strategies import Scored, best_scored, make_strategy
from repro.search.worker import run_trial, search_worker_main

SCHEMA_VERSION = 1

#: How often a trial whose *worker* crashed is re-run before giving up.
CRASH_RETRIES = 1


def trial_fingerprint(scenario: str, params: Dict[str, Any], metrics: Dict) -> str:
    """A stable hash of what a trial ran and what it measured.

    Computed over the canonical JSON of scenario name, parameters, and
    sanitized metrics — so an inline run and a service-submitted run of
    the same trial agree, and two artifacts can be diffed by fingerprint
    without caring about wall clocks.
    """
    blob = json.dumps(
        {"scenario": scenario, "params": params, "metrics": metrics},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Trial evaluation (parent side)
# ---------------------------------------------------------------------------
def _finish_trial(
    spec: SearchSpec,
    index: int,
    generation: int,
    params: Dict[str, Any],
    payload: Optional[Dict[str, Any]],
    error: Optional[str],
) -> Dict[str, Any]:
    """Fold a worker payload (or failure) into one artifact trial record."""
    trial: Dict[str, Any] = {
        "index": index,
        "generation": generation,
        "params": dict(sorted(params.items())),
        "metrics": None,
        "objective": None,
        "error": None,
        "fingerprint": None,
        "counters": None,
    }
    if error is not None:
        trial["error"] = error
        return trial
    assert payload is not None
    metrics = payload["metrics"]
    sanitized = sanitize_metrics(metrics)
    trial["metrics"] = sanitized
    trial["counters"] = dict(sorted(payload["counters"].items()))
    trial["fingerprint"] = trial_fingerprint(spec.scenario, trial["params"], sanitized)
    try:
        trial["objective"] = evaluate(spec.objective, metrics)
    except ObjectiveError as exc:
        trial["error"] = str(exc)
    return trial


class _Pool:
    """The worker pool: dispatch trials, collect replies, survive crashes."""

    def __init__(self, base: ScenarioSpec, size: int) -> None:
        self.base = base
        self.workers = [PersistentWorker(search_worker_main, base) for _ in range(size)]
        self.busy: Dict[int, Tuple[int, Dict[str, Any], int]] = {}
        self.crash_retries = 0

    def idle_slots(self) -> List[int]:
        return [i for i in range(len(self.workers)) if i not in self.busy]

    def dispatch(self, slot: int, index: int, params: Dict[str, Any], tries: int):
        self.busy[slot] = (index, params, tries)
        self.workers[slot].send(("trial", index, params))

    def collect(self) -> List[Tuple[int, Optional[Dict], Optional[str]]]:
        """Block for >=1 reply; returns ``(index, payload, error)`` rows.

        A crashed worker is replaced in its slot and the trial it held
        re-dispatched (up to :data:`CRASH_RETRIES` times) — beyond that
        the crash traceback becomes the trial's error.
        """
        results: List[Tuple[int, Optional[Dict], Optional[str]]] = []
        busy_slots = sorted(self.busy)
        ready = wait_any([self.workers[slot] for slot in busy_slots])
        ready_ids = {id(worker) for worker in ready}
        for slot in busy_slots:
            worker = self.workers[slot]
            if id(worker) not in ready_ids:
                continue
            index, params, tries = self.busy.pop(slot)
            try:
                reply = worker.recv()
            except WorkerCrashed as exc:
                worker.close()
                self.workers[slot] = PersistentWorker(search_worker_main, self.base)
                if tries < CRASH_RETRIES:
                    self.crash_retries += 1
                    self.dispatch(slot, index, params, tries + 1)
                else:
                    results.append((index, None, f"worker crashed: {exc}"))
                continue
            kind = reply[0]
            if kind == "trial-ok":
                results.append((reply[1], reply[2], None))
            elif kind == "trial-err":
                results.append((reply[1], None, reply[2]))
            else:  # pragma: no cover - protocol safety net
                results.append((index, None, f"unexpected reply {kind!r}"))
        return results

    def close(self) -> None:
        for worker in self.workers:
            worker.close()


def _run_batch(
    spec: SearchSpec,
    base: ScenarioSpec,
    batch: List[Dict[str, Any]],
    start_index: int,
    generation: int,
    pool: Optional[_Pool],
    inline_cache,
    walls: List[float],
    sources: List[str],
) -> List[Dict[str, Any]]:
    """Evaluate one strategy batch; returns trial records in batch order."""
    raw: Dict[int, Tuple[Optional[Dict], Optional[str]]] = {}
    if pool is None:
        for offset, params in enumerate(batch):
            index = start_index + offset
            try:
                payload = run_trial(base, params, inline_cache)
            except Exception as exc:
                raw[index] = (None, f"{type(exc).__name__}: {exc}")
            else:
                raw[index] = (payload, None)
    else:
        pending = list(enumerate(batch))
        while pending or pool.busy:
            for slot in pool.idle_slots():
                if not pending:
                    break
                offset, params = pending.pop(0)
                pool.dispatch(slot, start_index + offset, params, 0)
            if pool.busy:
                for index, payload, error in pool.collect():
                    raw[index] = (payload, error)
    trials = []
    for offset, params in enumerate(batch):
        index = start_index + offset
        payload, error = raw[index]
        if payload is not None:
            walls.append(payload["wall_s"])
            sources.append(payload["source"])
        trials.append(_finish_trial(spec, index, generation, params, payload, error))
    return trials


def _pool_size(spec: SearchSpec, workers: Optional[int]) -> int:
    """How many worker processes to spawn (0 = run trials inline).

    Daemonic processes (the serve pool's workers) cannot spawn children,
    so a service-submitted search always degrades to the inline loop —
    which produces the identical artifact, just serially.
    """
    if multiprocessing.current_process().daemon:
        return 0
    if workers is None:
        workers = min(default_workers(), 4)
    if workers <= 1:
        return 0
    return min(workers, spec.budget)


# ---------------------------------------------------------------------------
# The search loop
# ---------------------------------------------------------------------------
def run_search(
    spec: SearchSpec,
    workers: Optional[int] = None,
    host: bool = True,
) -> Dict[str, Any]:
    """Run one :class:`SearchSpec` to completion; returns the artifact.

    ``workers`` sizes the trial pool (``None`` = up to 4, bounded by the
    host; ``0``/``1`` = inline).  ``host=False`` omits the measured
    ``"host"`` section entirely, making the artifact a pure function of
    the spec — that is the form CI byte-compares.
    """
    spec.validate()
    from repro import scenarios

    base = scenarios.get(spec.scenario).with_params(**spec.fixed)
    strategy = make_strategy(spec)
    started = time.perf_counter()

    size = _pool_size(spec, workers)
    pool = _Pool(base, size) if size > 0 else None
    inline_cache: Any = None
    if pool is None:
        from collections import OrderedDict

        inline_cache = OrderedDict()

    trials: List[Dict[str, Any]] = []
    walls: List[float] = []
    sources: List[str] = []
    generation = 0
    try:
        while True:
            batch = strategy.ask()
            if not batch:
                break
            batch_trials = _run_batch(
                spec,
                base,
                batch,
                len(trials),
                generation,
                pool,
                inline_cache,
                walls,
                sources,
            )
            trials.extend(batch_trials)
            scored: List[Scored] = [
                (trial["params"], trial["objective"], trial["index"])
                for trial in batch_trials
            ]
            strategy.tell(scored)
            generation += 1
    finally:
        if pool is not None:
            pool.close()

    all_scored: List[Scored] = [
        (trial["params"], trial["objective"], trial["index"]) for trial in trials
    ]
    winner = best_scored(
        [entry for entry in all_scored if entry[1] is not None], spec.mode
    )
    best = trials[winner[2]] if winner is not None else None

    frontier: List[Dict[str, Any]] = []
    running: Optional[Scored] = None
    for entry in all_scored:
        if entry[1] is None:
            continue
        contender = best_scored(
            ([running] if running is not None else []) + [entry], spec.mode
        )
        if contender is not running:
            running = contender
            frontier.append({"index": entry[2], "objective": entry[1]})

    artifact: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": "search",
        "label": spec.label,
        "python": sys.version.split()[0],
        "search": spec.to_dict(),
        "trials": trials,
        "best": best,
        "frontier": frontier,
        "truncated": bool(strategy.truncated),
    }
    if host:
        from repro.experiments.bench import host_speed_score

        artifact["host"] = {
            "host_speed": host_speed_score(),
            "wall_s_total": time.perf_counter() - started,
            "wall_s_trials": walls,
            "fresh_builds": sources.count("fresh"),
            "forked": sources.count("forked"),
            "crash_retries": pool.crash_retries if pool is not None else 0,
            "workers": size,
        }
    return artifact


# ---------------------------------------------------------------------------
# Artifact I/O
# ---------------------------------------------------------------------------
def write_artifact(data: Dict[str, Any], path: str) -> None:
    """Write a search artifact as stable, strict, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")


def read_artifact(path: str) -> Dict[str, Any]:
    """Read an artifact written by :func:`write_artifact`."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA_VERSION or data.get("kind") != "search":
        raise SearchError(
            f"{path}: not a schema-{SCHEMA_VERSION} search artifact "
            f"(schema={data.get('schema')!r}, kind={data.get('kind')!r})"
        )
    return data


# ---------------------------------------------------------------------------
# Service entry point
# ---------------------------------------------------------------------------
def run_search_job(search: Dict[str, Any]) -> Dict[str, Any]:
    """The ``search/run`` scenario runner: a whole search as one job.

    ``search`` is a :meth:`SearchSpec.to_dict` payload (that is how a
    spec crosses the service wire).  Runs inline — service workers are
    daemonic and cannot spawn a pool — and returns the artifact without
    the ``host`` section, so a service-submitted search is comparable
    (same trials, same best fingerprint) to ``run_search`` in-process.
    """
    spec = SearchSpec.from_dict(search)
    return run_search(spec, workers=0, host=False)


def _register_scenarios() -> None:
    from repro import scenarios

    scenarios.register(
        ScenarioSpec(
            name="search/run",
            runner="repro.search.runner:run_search_job",
            params={"search": {}},
            tags=("search", "service"),
            summary="Run a declarative SearchSpec (grid/random/evolve) "
            "over a registered scenario and return the SEARCH artifact",
        )
    )


_register_scenarios()
