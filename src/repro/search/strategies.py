"""Search strategies: exhaustive grid, seeded random, evolutionary.

Every strategy speaks the same ask/tell protocol the runner drives:
:meth:`ask` proposes the next batch of parameter assignments (empty
when the strategy is done or the budget is spent), the runner evaluates
them — in parallel, in proposal order — and :meth:`tell` feeds the
scored batch back.  Grid and random propose everything in one batch;
the evolutionary loop proposes one generation at a time, selecting,
crossing, and mutating from the previous generation's scores (the
psim ``ga.py`` shape).

Determinism is the contract: every random draw comes from a
:class:`~repro.sim.rng.SeededRng` stream derived from the spec's seed
and a *structural* name (generation, slot, gene), never from iteration
timing or dict order — so the same :class:`SearchSpec` always proposes
the identical trial sequence, and ties always break toward the earlier
trial.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.search.spec import SearchError, SearchSpec
from repro.sim.rng import SeededRng

#: ``(params, objective, trial_index)`` — what the runner tells back.
Scored = Tuple[Dict[str, Any], Optional[float], int]


def _score_key(objective: Optional[float], order: int, mode: str) -> Tuple:
    """A sort key where *larger is better* and ties prefer lower order.

    Invalid trials (``objective is None``) lose to every valid one; among
    themselves they also tie-break by order, so even a fully failed
    search ranks deterministically.
    """
    if objective is None:
        return (0, 0.0, -order)
    value = objective if mode == "max" else -objective
    return (1, value, -order)


def best_scored(scored: List[Scored], mode: str) -> Optional[Scored]:
    """The winning entry of a scored list (None when empty)."""
    if not scored:
        return None
    return max(scored, key=lambda item: _score_key(item[1], item[2], mode))


class GridStrategy:
    """Exhaustive cartesian product of every domain's grid points.

    Domains iterate in name order with the last name varying fastest
    (``itertools.product``); the product is truncated to the budget,
    and :attr:`truncated` records that the grid did not fit.
    """

    def __init__(self, spec: SearchSpec) -> None:
        self.spec = spec
        self.truncated = False
        self._asked = False

    def ask(self) -> List[Dict[str, Any]]:
        if self._asked:
            return []
        self._asked = True
        names = [name for name, _domain in self.spec.sorted_domains()]
        axes = [domain.grid_points() for _name, domain in self.spec.sorted_domains()]
        batch: List[Dict[str, Any]] = []
        for combo in itertools.product(*axes):
            if len(batch) >= self.spec.budget:
                self.truncated = True
                break
            batch.append(dict(zip(names, combo)))
        return batch

    def tell(self, scored: List[Scored]) -> None:
        pass


class RandomStrategy:
    """``budget`` independent uniform samples from the domains."""

    def __init__(self, spec: SearchSpec) -> None:
        self.spec = spec
        self.truncated = False
        self._asked = False
        self._rng = SeededRng(spec.seed, f"search/{spec.scenario}/random")

    def ask(self) -> List[Dict[str, Any]]:
        if self._asked:
            return []
        self._asked = True
        batch: List[Dict[str, Any]] = []
        for index in range(self.spec.budget):
            rng = self._rng.child(f"trial/{index}")
            batch.append(
                {
                    name: domain.sample(rng.child(name))
                    for name, domain in self.spec.sorted_domains()
                }
            )
        return batch

    def tell(self, scored: List[Scored]) -> None:
        pass


class EvolveStrategy:
    """Generational GA: tournament select, uniform crossover, mutate.

    Generation 0 is a random sample.  Each later generation keeps the
    best-so-far individual unchanged (elitism, slot 0) and fills the
    remaining slots from tournament winners of the *previous*
    generation — crossed with probability ``crossover``, then each gene
    mutated with probability ``mutation`` via the domain's local
    ``mutate``.  Invalid trials lose every tournament; equal scores
    prefer the earlier trial.  Stops after ``generations`` rounds or
    when the budget is spent, whichever comes first.
    """

    def __init__(self, spec: SearchSpec) -> None:
        self.spec = spec
        self.truncated = False
        self.generation = 0
        self._spent = 0
        self._previous: List[Scored] = []
        self._best: Optional[Scored] = None
        self._rng = SeededRng(spec.seed, f"search/{spec.scenario}/evolve")

    # -- internals ------------------------------------------------------
    def _population_size(self) -> int:
        return min(self.spec.population, self.spec.budget)

    def _tournament(self, rng: SeededRng) -> Dict[str, Any]:
        size = len(self._previous)
        picks = [rng.randint(0, size - 1) for _ in range(self.spec.tournament)]
        winner = max(
            picks,
            key=lambda i: _score_key(
                self._previous[i][1], self._previous[i][2], self.spec.mode
            ),
        )
        return dict(self._previous[winner][0])

    def _offspring(self, rng: SeededRng) -> Dict[str, Any]:
        if rng.random() < self.spec.crossover:
            left = self._tournament(rng.child("t1"))
            right = self._tournament(rng.child("t2"))
            mix = rng.child("mix")
            child = {
                name: left[name] if mix.random() < 0.5 else right[name]
                for name, _domain in self.spec.sorted_domains()
            }
        else:
            child = self._tournament(rng.child("t1"))
        for name, domain in self.spec.sorted_domains():
            gene = rng.child(f"gene/{name}")
            if gene.random() < self.spec.mutation:
                child[name] = domain.mutate(child[name], gene)
        return child

    # -- ask/tell -------------------------------------------------------
    def ask(self) -> List[Dict[str, Any]]:
        remaining = self.spec.budget - self._spent
        if remaining <= 0 or self.generation >= self.spec.generations:
            if remaining <= 0 and self.generation < self.spec.generations:
                self.truncated = True
            return []
        size = min(self._population_size(), remaining)
        batch: List[Dict[str, Any]] = []
        if self.generation == 0:
            for slot in range(size):
                rng = self._rng.child(f"g0/s{slot}")
                batch.append(
                    {
                        name: domain.sample(rng.child(name))
                        for name, domain in self.spec.sorted_domains()
                    }
                )
        else:
            if self._best is not None:
                batch.append(dict(self._best[0]))
            while len(batch) < size:
                rng = self._rng.child(f"g{self.generation}/s{len(batch)}")
                batch.append(self._offspring(rng))
        self._spent += len(batch)
        return batch

    def tell(self, scored: List[Scored]) -> None:
        if not scored:
            return
        self._previous = list(scored)
        contender = best_scored(
            ([self._best] if self._best is not None else []) + list(scored),
            self.spec.mode,
        )
        self._best = contender
        self.generation += 1


def make_strategy(spec: SearchSpec):
    """The strategy object for ``spec.strategy``."""
    strategies = {
        "grid": GridStrategy,
        "random": RandomStrategy,
        "evolve": EvolveStrategy,
    }
    try:
        return strategies[spec.strategy](spec)
    except KeyError:
        raise SearchError(f"unknown strategy {spec.strategy!r}") from None
