"""Text reports over ``SEARCH_*.json`` artifacts.

Everything here is pure formatting over the artifact dict — no
simulation, no file I/O — so the CLI, CI step summaries, and tests all
render the same rows.  Three views:

* :func:`leaderboard` — the top trials ranked by objective (mode-aware,
  ties to the earlier trial, failed trials listed last),
* :func:`ascii_frontier` — the running-best objective over trial index
  as a fixed-size ASCII chart,
* :func:`compare` — old-vs-new artifact diff: best-objective delta with
  a relative regression gate, frontier length, and best-params changes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Denominator floor for relative deltas (an old best of exactly 0.0
#: must not turn every change into an infinite regression).
SCALE_FLOOR = 1e-12


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def _rank_key(trial: Dict[str, Any], mode: str) -> Tuple:
    objective = trial.get("objective")
    if objective is None:
        return (1, 0.0, trial["index"])
    value = -objective if mode == "max" else objective
    return (0, value, trial["index"])


def leaderboard(data: Dict[str, Any], top: int = 10) -> List[str]:
    """The ``top`` trials of an artifact, best first, as printable rows."""
    mode = data.get("search", {}).get("mode", "max")
    trials = sorted(data.get("trials", []), key=lambda t: _rank_key(t, mode))
    lines = [
        f"search {data.get('label', '?')}: "
        f"{data.get('search', {}).get('scenario', '?')} "
        f"[{data.get('search', {}).get('strategy', '?')}] "
        f"{mode} {data.get('search', {}).get('objective', '?')!r}",
        f"{'rank':>4} {'trial':>5} {'gen':>3} {'objective':>14}  params",
    ]
    for rank, trial in enumerate(trials[:top], start=1):
        objective = trial.get("objective")
        shown = f"{objective:.6g}" if objective is not None else "failed"
        params = ", ".join(
            f"{key}={_fmt(value)}" for key, value in trial["params"].items()
        )
        lines.append(
            f"{rank:>4} {trial['index']:>5} {trial['generation']:>3} "
            f"{shown:>14}  {params}"
        )
    failed = sum(1 for t in data.get("trials", []) if t.get("objective") is None)
    if failed:
        lines.append(f"({failed} trial(s) failed; see artifact for errors)")
    if data.get("truncated"):
        lines.append("(strategy truncated by budget)")
    return lines


def ascii_frontier(
    data: Dict[str, Any], width: int = 60, height: int = 10
) -> List[str]:
    """Running-best objective vs trial index as an ASCII step chart.

    The frontier list already records only improvements; the chart
    holds each level until the next improvement, so flat stretches show
    exactly where the search stalled.
    """
    frontier = data.get("frontier", [])
    total = len(data.get("trials", []))
    if not frontier or total == 0:
        return ["(no successful trials; nothing to chart)"]
    values: List[float] = []
    level: Optional[float] = None
    position = 0
    for point in frontier + [{"index": total, "objective": None}]:
        while position < min(point["index"], total):
            values.append(level if level is not None else frontier[0]["objective"])
            position += 1
        if point["objective"] is not None:
            level = point["objective"]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    columns = [
        values[min(len(values) - 1, int(i * len(values) / width))]
        for i in range(min(width, len(values)) or 1)
    ]
    lines: List[str] = []
    for row in range(height, -1, -1):
        threshold = lo + span * row / height
        cells = "".join("#" if value >= threshold else " " for value in columns)
        if row == height:
            label = f"{hi:>12.5g}"
        elif row == 0:
            label = f"{lo:>12.5g}"
        else:
            label = " " * 12
        lines.append(f"{label} |{cells}")
    lines.append(" " * 12 + "+" + "-" * len(columns))
    lines.append(
        " " * 13 + f"trial 0 .. {total - 1}  "
        f"(best {hi:.6g} @ trial {frontier[-1]['index']})"
    )
    return lines


def compare(
    old: Dict[str, Any],
    new: Dict[str, Any],
    max_regression: float = 0.0,
) -> Tuple[List[str], List[str]]:
    """Diff two search artifacts; returns ``(report_lines, problems)``.

    ``problems`` is non-empty when the new best objective is worse than
    the old by more than ``max_regression`` *relative to the old best*
    (mode-aware: "worse" means lower under ``max``, higher under
    ``min``).  Everything else — improvements, frontier shape, best-
    parameter drift, fingerprint match — is reported, not gated.
    """
    lines: List[str] = []
    problems: List[str] = []
    old_spec, new_spec = old.get("search", {}), new.get("search", {})
    for key in ("scenario", "objective", "mode"):
        if old_spec.get(key) != new_spec.get(key):
            problems.append(
                f"artifacts disagree on {key}: "
                f"{old_spec.get(key)!r} vs {new_spec.get(key)!r} — "
                "comparing them is meaningless"
            )
    if problems:
        return lines, problems

    mode = new_spec.get("mode", "max")
    old_best, new_best = old.get("best"), new.get("best")
    if old_best is None or new_best is None:
        side = "old" if old_best is None else "new"
        problems.append(f"{side} artifact has no successful trial to compare")
        return lines, problems

    old_obj, new_obj = old_best["objective"], new_best["objective"]
    delta = new_obj - old_obj
    worse_by = -delta if mode == "max" else delta
    scale = max(abs(old_obj), SCALE_FLOOR)
    lines.append(
        f"best objective: {old_obj:.6g} -> {new_obj:.6g} "
        f"({'+' if delta >= 0 else ''}{delta:.6g}, "
        f"{worse_by / scale:+.1%} {'worse' if worse_by > 0 else 'better-or-equal'})"
    )
    if worse_by / scale > max_regression:
        problems.append(
            f"best objective regressed {worse_by / scale:.1%} "
            f"(> {max_regression:.1%} allowed): {old_obj:.6g} -> {new_obj:.6g}"
        )

    lines.append(
        f"frontier: {len(old.get('frontier', []))} improvement(s) over "
        f"{len(old.get('trials', []))} trial(s) -> "
        f"{len(new.get('frontier', []))} over {len(new.get('trials', []))}"
    )
    if old_best.get("fingerprint") == new_best.get("fingerprint"):
        lines.append("best trial fingerprints match (identical params + metrics)")
    else:
        changed = [
            f"{key}: {_fmt(old_best['params'].get(key))} -> "
            f"{_fmt(new_best['params'].get(key))}"
            for key in sorted(set(old_best["params"]) | set(new_best["params"]))
            if old_best["params"].get(key) != new_best["params"].get(key)
        ]
        if changed:
            lines.append("best params changed: " + "; ".join(changed))
        else:
            lines.append(
                "best params identical but metrics differ "
                "(fingerprint mismatch — check determinism)"
            )
    return lines, problems
