"""Command-line experiment runner.

Regenerates the paper's tables, figures, and claims without pytest::

    python -m repro.cli list            # available experiments
    python -m repro.cli table3          # one experiment
    python -m repro.cli all             # everything (a few minutes)

Each experiment prints the same rows the benchmark suite persists under
``benchmarks/reports/``.

Two observability subcommands instrument an experiment's event buses
(:mod:`repro.obs`) instead of printing paper rows::

    python -m repro.cli events-stats                   # counters + latency
    python -m repro.cli events-stats --source catalog
    python -m repro.cli events-trace --out events.jsonl --limit 5

Long runs checkpoint mid-flight and resume in a fresh process (even on
the other scheduler backend — event order is identical)::

    python -m repro.cli checkpoint --ckpt mb.ckpt --at-ps 10000000000
    python -m repro.cli resume --ckpt mb.ckpt --info
    python -m repro.cli resume --ckpt mb.ckpt --scheduler wheel

Benchmark sweeps are resumable too: ``bench --resume progress.json``
skips benchmarks an interrupted sweep already recorded.

Datacenter-scale fabrics run sharded across worker processes
(:mod:`repro.sim.shard`), with a fingerprint check against the
single-process run::

    python -m repro.cli shard --topology fattree --k 4 --shards 4
    python -m repro.cli shard --shards 2 --mode process --compare-serial

The fault-injection grid (:mod:`repro.faults`) runs seeded chaos over
the failure-handling applications and exits nonzero on any invariant
violation; ``--forked`` amortizes scenario builds through
``Simulator.fork()`` with byte-identical verdicts::

    python -m repro.cli chaos --plan linkflap --app frr --seed 7
    python -m repro.cli chaos --seed-sweep 25 --out verdicts.jsonl
    python -m repro.cli chaos --forked --seed 7

Every experiment is also a registered :class:`repro.scenarios.ScenarioSpec`,
runnable through the multi-tenant job service (:mod:`repro.serve`)::

    python -m repro.cli scenarios                  # the catalog
    python -m repro.cli submit microburst/cms      # private in-process service
    python -m repro.cli serve --socket /tmp/repro.sock &
    python -m repro.cli submit chaos/frr --socket /tmp/repro.sock

The search harness (:mod:`repro.search`) sweeps/optimizes any
registered scenario's declared knobs and writes a deterministic
``SEARCH_<label>.json`` artifact (see docs/SEARCH.md)::

    python -m repro.cli search --scenario aqm/fred --objective fairness \
        --domain blaster_gbps=range:4:9:5 --strategy evolve --budget 24
    python -m repro.cli search --report SEARCH_local.json
    python -m repro.cli search --compare OLD.json NEW.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _print(title: str, rows: List[str]) -> None:
    print(f"\n{title}")
    print("=" * len(title))
    for row in rows:
        print(row)


def run_table1() -> None:
    """Table 1: event catalog + live demonstration."""
    from repro.arch.events import EventType
    from repro.experiments.events_exp import run_catalog_demo, support_matrix

    matrix = support_matrix()
    names = [row["architecture"] for row in matrix]
    rows = [f"{'event':<26}" + "".join(f"{n:>22}" for n in names)]
    for kind in EventType:
        rows.append(
            f"{kind.value:<26}"
            + "".join(f"{row[kind.value]:>22}" for row in matrix)
        )
    _print("Table 1: event support by architecture", rows)
    result = run_catalog_demo()
    _print("Table 1: live demonstration", result.summary_rows())


def run_table2() -> None:
    """Table 2: one live run per application class."""
    from repro.experiments.table2_exp import build_table2

    rows = build_table2()
    _print("Table 2: application classes", [row.summary_row() for row in rows])


def run_table3() -> None:
    """Table 3: FPGA cost of event support."""
    from repro.resources import table3_rows

    rows = [
        f"{row['resource']:<16} paper={row['paper_percent_increase']:>5.1f}% "
        f"model={row['measured_percent_increase']:>5.2f}%"
        for row in table3_rows()
    ]
    _print("Table 3: cost of event support (Virtex-7)", rows)


def run_figures() -> None:
    """Figures 1, 2, 4: the three architectures under identical traffic."""
    from repro.experiments.psa_fig_exp import run_architecture

    rows = [
        run_architecture(arch).summary_row()
        for arch in ("baseline", "logical", "sume")
    ]
    _print("Figures 1/2/4: architecture comparison", rows)


def run_fig3() -> None:
    """Figure 3 & §4: aggregation registers and staleness sweeps."""
    from repro.experiments.staleness_exp import (
        run_naive_single_array,
        sweep_overspeed,
    )

    rows = [result.summary_row() for result in sweep_overspeed()]
    rows.append(run_naive_single_array().summary_row())
    _print("Figure 3 / §4: aggregation + staleness", rows)


def run_microburst() -> None:
    """§2: microburst detection, event-driven vs Snappy."""
    from repro.experiments.microburst_exp import (
        run_event_driven,
        run_snappy_baseline,
        state_reduction_factor,
    )

    event = run_event_driven()
    snappy = run_snappy_baseline()
    _print(
        "§2: microburst detection",
        [
            event.summary_row(),
            snappy.summary_row(),
            f"state reduction: {state_reduction_factor(event, snappy):.2f}x",
        ],
    )


#: The §3/§5 application scenarios, in the paper's presentation order
#: (the registry's catalog order groups by module instead).
APPLICATION_SCENARIOS = (
    "failover/frr",
    "failover/control-plane",
    "liveness/probe",
    "load-balance/ecmp",
    "load-balance/hula",
    "aqm/drop-tail",
    "aqm/fred",
    "incast/tail-drop",
    "incast/ndp",
    "policing/timer",
    "flow-rate/window",
    "flow-rate/ewma",
    "netcache/timers",
    "netcache/no-timers",
    "int/aggregate",
    "scheduling/wfq",
    "ecn/multi-bit",
    "ecn/single-bit",
    "migration/swing",
    "migration/naive",
)


def run_applications() -> None:
    """§3/§5 applications: one line per experiment."""
    from repro import scenarios

    rows = [scenarios.run(name).summary_row() for name in APPLICATION_SCENARIOS]
    _print("§3/§5 applications", rows)


def run_cms() -> None:
    """§1: CMS reset — timer vs control plane."""
    from repro.experiments.cms_exp import run_cms_reset

    rows = [run_cms_reset(mode).summary_row() for mode in ("timer", "control", "none")]
    _print("§1: CMS periodic reset", rows)


def run_emulation() -> None:
    """§6: native events vs Tofino-style emulation."""
    from repro.experiments.emulation_exp import sweep_event_rate

    results = sweep_event_rate()
    rows = []
    for arch in ("sume", "tofino-emulated"):
        rows.extend(r.summary_row() for r in results[arch])
    _print("§6: emulation ablation", rows)


def run_future_work() -> None:
    """§4/§7 future-work questions, quantified."""
    from repro.experiments.staleness_exp import sweep_drain_policy
    from repro.state.consistency import run_contention
    from repro.state.replication import run_multipipe

    rows = [
        f"{policy:<8} {result.staleness.row()}"
        for policy, result in zip(
            ("fifo", "largest", "lifo"), sweep_drain_policy()
        )
    ]
    _print("§4 future work: drain policies", rows)
    rows = [run_contention(lat).summary_row() for lat in (0, 1, 2, 4, 8)]
    _print("§7 future work: consistency (lost updates)", rows)
    rows = [
        run_multipipe(sync_period_cycles=p).summary_row()
        for p in (8, 64, 512, None)
    ]
    _print("§4: multi-pipeline state sync", rows)


# ----------------------------------------------------------------------
# EventBus observability subcommands
# ----------------------------------------------------------------------
def _run_event_source(source: str) -> Dict[str, List[str]]:
    """Run one event-producing experiment under the current observers.

    Sources are the scenarios registered with the ``source`` tag
    (:mod:`repro.scenarios`); an unknown name exits with the registered
    list rather than a traceback.  Returns extra titled row blocks some
    sources contribute beyond the bus-level counters (e.g. the shard
    source's per-shard stats).
    """
    from repro import scenarios

    try:
        spec = scenarios.get(source, tag="source")
    except scenarios.UnknownScenario as exc:
        listing = "\n  ".join(exc.registered)
        raise SystemExit(
            f"error: unknown event source {source!r}; sources:\n  {listing}"
        ) from None
    result = spec.run()
    if isinstance(result, dict) and all(
        isinstance(rows, list) and all(isinstance(row, str) for row in rows)
        for rows in result.values()
    ):
        return result
    return {}


def event_sources() -> List[str]:
    """Sources `events-stats` / `events-trace` can instrument."""
    from repro import scenarios

    return scenarios.names(tag="source")


def run_events_stats(source: str = "microburst") -> None:
    """EventBus counters and dispatch-latency histograms for one experiment."""
    from repro.obs import DispatchLatencyHistogram, EventCounters, observing
    from repro.pisa.fastpath import collecting_fastpaths
    from repro.pisa.flowcache import collecting_caches

    counters = EventCounters()
    histogram = DispatchLatencyHistogram()
    with observing(counters, histogram), collecting_caches() as caches, \
            collecting_fastpaths() as fastpaths:
        extras = _run_event_source(source)
    _print(f"EventBus counters ({source})", counters.summary_rows())
    _print(
        f"EventBus dispatch latency / staleness ({source})",
        histogram.summary_rows(),
    )
    _print(f"flow-decision cache ({source})", _flow_cache_rows(caches))
    _print(f"flow fastpath ({source})", _fastpath_rows(fastpaths))
    for title, rows in extras.items():
        _print(title, rows)
    print(
        f"\n{len(counters.nonzero_kinds())} event type(s) observed, "
        f"{counters.total_published()} events published"
    )


def _flow_cache_rows(caches) -> List[str]:
    """Per-switch hit/miss/invalidation rows plus an aggregate line."""
    if not caches:
        return ["flow cache disabled (REPRO_FLOW_CACHE=0 or flow_cache=False)"]
    header = (
        f"{'switch':<16}{'hits':>10}{'misses':>10}{'uncacheable':>13}"
        f"{'invalidated':>13}{'evicted':>9}{'hit rate':>10}"
    )
    rows = [header]
    totals = {"hits": 0, "misses": 0, "uncacheable": 0, "invalidations": 0,
              "evictions": 0}
    for cache in caches:
        stats = cache.stats
        for key in totals:
            totals[key] += getattr(stats, key)
        rows.append(
            f"{cache.name or '<anon>':<16}{stats.hits:>10}{stats.misses:>10}"
            f"{stats.uncacheable:>13}{stats.invalidations:>13}"
            f"{stats.evictions:>9}{stats.hit_rate:>10.1%}"
        )
    lookups = totals["hits"] + totals["misses"] + totals["uncacheable"]
    rate = totals["hits"] / lookups if lookups else 0.0
    rows.append(
        f"{'total':<16}{totals['hits']:>10}{totals['misses']:>10}"
        f"{totals['uncacheable']:>13}{totals['invalidations']:>13}"
        f"{totals['evictions']:>9}{rate:>10.1%}"
    )
    return rows


def _fastpath_rows(fastpaths) -> List[str]:
    """Per-switch path/fusion rows plus an aggregate line.

    Note: ``events-stats`` itself attaches bus observers, which the
    fastpath treats as a reason not to fuse (observers need per-hop
    event visibility) — under this command every delivery is expected
    to show up as an ``observer`` fallback.
    """
    if not fastpaths:
        return ["flow fastpath disabled (REPRO_FLOW_FASTPATH=0 or fastpath=False)"]
    header = (
        f"{'switch':<16}{'paths':>7}{'fused':>8}{'fallbacks':>11}"
        f"{'invalidated':>13}{'fuse rate':>11}  top fallback reasons"
    )
    rows = [header]
    totals = {"paths_built": 0, "fused": 0, "invalidations": 0}
    reasons: Dict[str, int] = {}
    for fastpath in fastpaths:
        stats = fastpath.stats
        for key in totals:
            totals[key] += getattr(stats, key)
        for reason, count in stats.fallbacks.items():
            reasons[reason] = reasons.get(reason, 0) + count
        top = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(
                stats.fallbacks.items(), key=lambda item: -item[1]
            )[:3]
        )
        rows.append(
            f"{fastpath.name or '<anon>':<16}{stats.paths_built:>7}"
            f"{stats.fused:>8}{stats.fallbacks_total:>11}"
            f"{stats.invalidations:>13}{stats.fuse_rate:>11.1%}  {top}"
        )
    fallbacks_total = sum(reasons.values())
    attempts = totals["fused"] + fallbacks_total
    rate = totals["fused"] / attempts if attempts else 0.0
    top = ", ".join(
        f"{reason}={count}"
        for reason, count in sorted(reasons.items(), key=lambda item: -item[1])[:3]
    )
    rows.append(
        f"{'total':<16}{totals['paths_built']:>7}{totals['fused']:>8}"
        f"{fallbacks_total:>11}{totals['invalidations']:>13}{rate:>11.1%}  {top}"
    )
    return rows


def run_events_trace(
    source: str = "microburst",
    out: str = "events_trace.jsonl",
    limit: int = 5,
) -> None:
    """Capture a JSONL EventBus trace for one experiment."""
    from repro.obs import JsonlTraceSink, observing, read_events_trace

    sink = JsonlTraceSink(out)
    with observing(sink):
        _run_event_source(source)
    sink.close()
    records = read_events_trace(out)
    shown = records[:limit]
    import json

    rows = [json.dumps(record, sort_keys=True) for record in shown]
    if len(records) > limit:
        rows.append(f"… {len(records) - limit} more record(s)")
    _print(f"EventBus trace ({source}) → {out}", rows)
    print(f"\nwrote {len(records)} records to {out}")


# ----------------------------------------------------------------------
# Benchmark trajectory subcommand
# ----------------------------------------------------------------------
def run_bench(
    label: str = "local",
    out: str = "",
    rounds: int = 5,
    workers: int = 1,
    compare_to: List[str] = (),
    max_regression: float = 0.25,
    resume_path: str = "",
    sharded_showcase: bool = False,
    host_normalize: bool = False,
) -> int:
    """Run the perf suite, write BENCH_<label>.json, gate on regressions.

    ``--compare`` entries may be globs (``BENCH_pr*.json``), so the CI
    gate picks up new trajectory snapshots without workflow edits.  When
    ``$GITHUB_STEP_SUMMARY`` is set, a per-scenario delta table is
    appended there.  ``--host-normalize`` corrects wall times by the
    snapshots' host-speed calibration scores before gating, and the
    table then shows raw *and* normalized deltas.
    """
    import os

    from repro.experiments import bench

    data = bench.collect(
        label, rounds=rounds, workers=workers, progress_path=resume_path or None
    )
    if sharded_showcase:
        data["sharded"] = bench.sharded_showcase()
    path = out or f"BENCH_{label}.json"
    bench.write_snapshot(data, path)
    _print(f"benchmark trajectory → {path}", bench.summary_rows(data))
    if sharded_showcase:
        _print("sharded showcase (k=8 fat tree)", bench.showcase_rows(data["sharded"]))
    if resume_path and os.path.exists(resume_path) and resume_path != path:
        os.remove(resume_path)  # sweep finished; progress file is spent
    failed = False
    baselines = []
    for baseline_path in bench.expand_baselines(list(compare_to), exclude=path):
        baseline = bench.read_snapshot(baseline_path)
        baselines.append((baseline_path, baseline))
        problems = bench.compare(
            baseline,
            data,
            max_regression=max_regression,
            host_normalize=host_normalize,
        )
        if problems:
            _print(f"REGRESSIONS vs {baseline_path}", problems)
            failed = True
        else:
            gate = "host-normalized" if host_normalize else "raw"
            print(
                f"\nno regressions vs {baseline_path} "
                f"(threshold {max_regression:.0%}, {gate} walls)"
            )
    for warning in bench.missing_round_warnings(data, baselines):
        print(warning)
    for note in bench.skipped_round_notes(data, baselines):
        print(note)
    ungated = bench.missing_round_failures(data, baselines)
    if ungated:
        _print("UNGATED BENCHMARKS (no baseline covers them)", ungated)
        failed = True
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary and baselines:
        table = bench.delta_markdown(
            data,
            baselines,
            max_regression=max_regression,
            normalize=host_normalize,
        )
        with open(step_summary, "a", encoding="utf-8") as fh:
            fh.write("\n".join(table) + "\n")
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Sharded-simulation subcommand
# ----------------------------------------------------------------------
def run_shard(
    topology: str = "leafspine",
    k: int = 4,
    leaves: int = 4,
    spines: int = 4,
    hosts_per_leaf: int = 2,
    shards: int = 2,
    mode: str = "process",
    workload: str = "incast",
    waves: int = 2,
    packets: int = 4,
    compare_serial: bool = False,
    json_out: str = "",
) -> int:
    """Run one fabric across N shard processes; optionally check vs serial."""
    import json

    from repro.experiments.shard_exp import (
        ShardScenario,
        run_serial,
        run_sharded,
        scenario_partition,
    )

    scenario = ShardScenario(
        topology=topology,
        k=k,
        leaf_count=leaves,
        spine_count=spines,
        hosts_per_leaf=hosts_per_leaf,
        workload=workload,
        waves=waves,
        packets_per_sender=packets,
    )
    partition = scenario_partition(scenario, shards)
    _print(f"partition of {partition.spec.name}", partition.summary_rows())
    result = run_sharded(scenario, shards=shards, mode=mode)
    _print(
        f"sharded run ({workload}, {mode}, {result.wall_s * 1e3:.1f} ms)",
        result.stats.summary_rows()
        + [f"behavior fingerprint {result.digest}"],
    )
    exit_code = 0
    serial = None
    if compare_serial:
        serial = run_serial(scenario)
        match = serial.fingerprint == result.fingerprint
        print(
            f"\nserial reference: {serial.total_received()} packets in "
            f"{serial.wall_s * 1e3:.1f} ms — fingerprint "
            f"{'MATCHES' if match else 'MISMATCH'}"
        )
        if not match:
            for host in sorted(serial.fingerprint):
                if serial.fingerprint[host] != result.fingerprint.get(host):
                    print(
                        f"  {host}: serial={serial.fingerprint[host]} "
                        f"sharded={result.fingerprint.get(host)}"
                    )
            exit_code = 1
    if json_out:
        record = {
            "topology": partition.spec.name,
            "shards": shards,
            "mode": mode,
            "workload": workload,
            "wall_s": result.wall_s,
            "digest": result.digest,
            "stats": result.stats.as_dict(),
        }
        if serial is not None:
            record["serial_wall_s"] = serial.wall_s
            record["fingerprint_match"] = exit_code == 0
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {json_out}")
    return exit_code


# ----------------------------------------------------------------------
# Chaos (fault-injection) subcommand
# ----------------------------------------------------------------------
def run_chaos(
    plan: str = "all",
    app: str = "all",
    seed: int = 7,
    seed_sweep: int = 0,
    out: str = "chaos_verdicts.jsonl",
    compile_arm: bool = False,
    forked: bool = False,
    fastpath_arm: bool = False,
) -> int:
    """Run the fault-injection grid; nonzero exit on invariant violations."""
    from repro.faults import chaos

    plans = chaos.PLAN_NAMES if plan == "all" else (plan,)
    apps = chaos.APP_NAMES if app == "all" else (app,)
    seeds = list(range(seed, seed + seed_sweep)) if seed_sweep > 0 else [seed]
    records = chaos.run_grid(
        plans, apps, seeds, out_path=out, compile_arm=compile_arm,
        forked=forked, fastpath_arm=fastpath_arm,
    )
    _print(
        f"chaos grid: {len(plans)} plan(s) x {len(apps)} app(s) x "
        f"{len(seeds)} seed(s)"
        + (" [forked]" if forked else "")
        + f" → {out}",
        chaos.summary_rows(records),
    )
    return 1 if chaos.violation_count(records) else 0


# ----------------------------------------------------------------------
# Scenario registry / serving subcommands
# ----------------------------------------------------------------------
def run_scenarios_list(argv: List[str]) -> int:
    """List the registered scenario catalog (the service's submit surface)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli scenarios",
        description="List registered scenarios (what `submit` accepts).",
    )
    parser.add_argument("filter", nargs="?", default="", help="substring filter")
    parser.add_argument("--tag", default="", help="only scenarios with this tag")
    args = parser.parse_args(argv)
    from repro import scenarios

    selected = scenarios.specs(args.tag or None)
    if args.filter:
        selected = [spec for spec in selected if args.filter in spec.name]
    rows = []
    for spec in selected:
        shape = "phased" if spec.is_phased else "single"
        tags = ",".join(spec.tags)
        rows.append(f"{spec.name:<26} {shape:<7} [{tags}] {spec.summary}")
    if not rows:
        rows = ["(no scenarios match)"]
    _print(f"{len(selected)} registered scenario(s)", rows)
    return 0


def _parse_params(items: List[str]) -> Dict[str, object]:
    """``key=value`` pairs; values parse as JSON, falling back to strings."""
    import json

    params: Dict[str, object] = {}
    for item in items:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"error: --param needs KEY=VALUE, got {item!r}")
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    return params


def run_submit(argv: List[str]) -> int:
    """Submit one registered scenario to the job service and print its result."""
    from repro.serve.worker import DEFAULT_WINDOWS

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli submit",
        description="Run a registered scenario through the job service "
        "(a private in-process service, or --socket for a running one).",
    )
    parser.add_argument("name", help="registered scenario name (see `scenarios`)")
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a declared scenario parameter (JSON value syntax)",
    )
    parser.add_argument(
        "--socket", default="", help="submit to the service at this unix socket"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="private-service worker processes"
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=DEFAULT_WINDOWS,
        help="telemetry windows for phased scenarios",
    )
    args = parser.parse_args(argv)
    params = _parse_params(args.param)

    from repro.serve.client import ServiceClient, ServiceError, submit_inline

    try:
        if args.socket:
            with ServiceClient(args.socket) as client:
                reply = client.expect("submit", scenario=args.name, params=params)
                job_id = reply["job"]
                state = client.wait(job_id)
                result = client.request("result", job=job_id)
                record = {
                    "scenario": reply["scenario"],
                    "state": state,
                    "result": result.get("result") if result.get("ok") else None,
                    "error": "" if result.get("ok") else result.get("error", ""),
                    "telemetry": client.telemetry(job_id),
                }
        else:
            record = submit_inline(
                args.name, params, workers=args.workers, windows=args.windows
            )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for title, rows in ((record.get("result") or {}).get("rows", {}).items()):
        _print(f"{record['scenario']}: {title}", rows)
    windows = record.get("telemetry") or []
    if windows:
        last = windows[-1]
        _print(
            f"telemetry ({len(windows)} window(s))",
            [
                " ".join(f"{key}={value}" for key, value in sorted(last.items())),
            ],
        )
    if record["state"] != "done":
        print(
            f"\njob finished in state {record['state']}: {record.get('error', '')}",
            file=sys.stderr,
        )
        return 1
    print(f"\n{record['scenario']}: done")
    return 0


# ----------------------------------------------------------------------
# Search subcommand
# ----------------------------------------------------------------------
def run_search_cli(argv: List[str]) -> int:
    """Run a parameter search over a registered scenario (see docs/SEARCH.md)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli search",
        description="Sweep/optimize a registered scenario's parameters "
        "(grid, random, or evolutionary) and write a SEARCH_<label>.json "
        "artifact; or report on / compare existing artifacts.",
    )
    parser.add_argument(
        "--scenario", default="", help="registered scenario to search"
    )
    parser.add_argument(
        "--objective",
        default="",
        help="expression over the result's metrics (e.g. 'fairness' or "
        "'fairness - 0.1 * aqm_drops')",
    )
    parser.add_argument(
        "--minimize",
        action="store_true",
        help="minimize the objective (default: maximize)",
    )
    parser.add_argument(
        "--domain",
        action="append",
        default=[],
        metavar="KEY=SPEC",
        help="a knob to explore: choice:a,b,c | range:lo:hi[:steps] | "
        "irange:lo:hi[:steps] | log:lo:hi[:steps] (repeatable)",
    )
    parser.add_argument(
        "--fixed",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="a knob pinned to one value for every trial (repeatable)",
    )
    parser.add_argument(
        "--strategy",
        choices=("grid", "random", "evolve"),
        default="grid",
        help="how to explore the domains",
    )
    parser.add_argument("--budget", type=int, default=16, help="max trials")
    parser.add_argument("--seed", type=int, default=7, help="search seed")
    parser.add_argument(
        "--population", type=int, default=8, help="evolve: population size"
    )
    parser.add_argument(
        "--generations", type=int, default=4, help="evolve: generation count"
    )
    parser.add_argument(
        "--tournament", type=int, default=2, help="evolve: tournament size"
    )
    parser.add_argument(
        "--mutation", type=float, default=0.3, help="evolve: per-gene mutation rate"
    )
    parser.add_argument(
        "--crossover", type=float, default=0.5, help="evolve: crossover rate"
    )
    parser.add_argument(
        "--label", default="local", help="artifact label (SEARCH_<label>.json)"
    )
    parser.add_argument(
        "--out", default="", metavar="PATH", help="artifact output path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="trial worker processes (0/1 = inline)",
    )
    parser.add_argument(
        "--omit-host",
        action="store_true",
        help="omit the measured 'host' section so the artifact is a pure "
        "function of the spec (CI byte-compares this form)",
    )
    parser.add_argument(
        "--spec",
        default="",
        metavar="JSON_PATH",
        help="load the whole SearchSpec from a JSON file instead of flags",
    )
    parser.add_argument(
        "--via-service",
        action="store_true",
        help="submit the search as a search/run job on a private service "
        "instead of running in-process",
    )
    parser.add_argument(
        "--report",
        default="",
        metavar="SEARCH_JSON",
        help="print the leaderboard + frontier of an existing artifact and exit",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        default=None,
        metavar=("OLD_JSON", "NEW_JSON"),
        help="diff two artifacts (non-zero exit on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.0,
        help="compare: allowed relative worsening of the best objective",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="report/run: leaderboard rows"
    )
    args = parser.parse_args(argv)

    from repro import search

    if args.compare:
        old = search.read_artifact(args.compare[0])
        new = search.read_artifact(args.compare[1])
        lines, problems = search.compare(
            old, new, max_regression=args.max_regression
        )
        _print(f"search compare: {args.compare[0]} -> {args.compare[1]}", lines)
        if problems:
            _print("SEARCH REGRESSIONS", problems)
            return 1
        print("\nno search regressions")
        return 0
    if args.report:
        data = search.read_artifact(args.report)
        _print("leaderboard", search.leaderboard(data, top=args.top))
        _print("frontier", search.ascii_frontier(data))
        return 0

    try:
        if args.spec:
            import json

            with open(args.spec, "r", encoding="utf-8") as fh:
                spec = search.SearchSpec.from_dict(json.load(fh))
        else:
            if not args.scenario or not args.objective or not args.domain:
                parser.error(
                    "--scenario, --objective, and at least one --domain are "
                    "required (or --spec / --report / --compare)"
                )
            domains = {}
            for item in args.domain:
                key, sep, value = item.partition("=")
                if not sep or not key:
                    parser.error(f"--domain needs KEY=SPEC, got {item!r}")
                domains[key] = search.parse_domain(value)
            spec = search.SearchSpec(
                scenario=args.scenario,
                objective=args.objective,
                domains=domains,
                fixed=_parse_params(args.fixed),
                mode="min" if args.minimize else "max",
                strategy=args.strategy,
                budget=args.budget,
                seed=args.seed,
                label=args.label,
                population=args.population,
                generations=args.generations,
                tournament=args.tournament,
                mutation=args.mutation,
                crossover=args.crossover,
            )
        spec.validate()
    except search.SearchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.via_service:
        from repro.serve.client import ServiceError, submit_inline

        try:
            record = submit_inline("search/run", {"search": spec.to_dict()})
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if record["state"] != "done":
            print(
                f"error: search job finished in state {record['state']}: "
                f"{record.get('error', '')}",
                file=sys.stderr,
            )
            return 1
        data = record["result"]["value"]
    else:
        data = search.run_search(
            spec, workers=args.workers, host=not args.omit_host
        )
    path = args.out or f"SEARCH_{spec.label}.json"
    search.write_artifact(data, path)
    _print(f"search artifact → {path}", search.leaderboard(data, top=args.top))
    _print("frontier", search.ascii_frontier(data))
    from repro.obs import SearchStats

    _print("search stats", SearchStats.from_artifact(data).summary_rows())
    if data.get("best") is None:
        print("\nerror: no trial produced a valid objective", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Checkpoint / resume subcommands
# ----------------------------------------------------------------------
def _header_rows(header: Dict) -> List[str]:
    """Printable rows for a checkpoint header."""
    rows = [
        f"label={header.get('label') or '(none)'} "
        f"version={header['version']} python={header.get('python')}",
        f"scheduler={header['scheduler']} now={header['now_ps']}ps "
        f"executed={header['events_executed']} pending={header['pending_events']}",
    ]
    stores = header.get("stores", [])
    rows.append(f"{len(stores)} state store(s):")
    for store in stores:
        rows.append(
            f"  {store['name']:<28} kind={store['kind']:<9} "
            f"size={store['size']:>6} populated={store['populated']}"
        )
    return rows


def run_checkpoint(ckpt: str, at_ps: int, duration_ps: int) -> int:
    """Run the §2 microburst experiment to --at-ps and checkpoint it."""
    from repro.experiments.microburst_exp import prepare_event_driven
    from repro.sim.checkpoint import save_checkpoint

    if not 0 < at_ps < duration_ps:
        print(
            f"error: --at-ps must fall inside the run "
            f"(0 < {at_ps} < {duration_ps})",
            file=sys.stderr,
        )
        return 2
    setup = prepare_event_driven(duration_ps=duration_ps)
    setup.network.run(until_ps=at_ps)
    header = save_checkpoint(
        ckpt, setup.network.sim, state=setup, label="microburst-event-driven"
    )
    _print(f"checkpoint → {ckpt}", _header_rows(header))
    print(f"\nresume with: python -m repro.cli resume --ckpt {ckpt}")
    return 0


def run_resume(ckpt: str, info: bool = False, scheduler: str = "") -> int:
    """Resume a checkpointed microburst run (or --info: describe the file)."""
    from repro.sim.checkpoint import inspect_checkpoint, load_checkpoint

    if info:
        _print(f"checkpoint {ckpt}", _header_rows(inspect_checkpoint(ckpt)))
        return 0
    from repro.experiments.microburst_exp import (
        MicroburstSetup,
        finish_event_driven,
    )

    sim, setup, header = load_checkpoint(ckpt, scheduler or None)
    if not isinstance(setup, MicroburstSetup):
        print(
            f"error: {ckpt} holds {type(setup).__name__}, not a "
            "MicroburstSetup (was it written by `repro.cli checkpoint`?)",
            file=sys.stderr,
        )
        return 2
    result = finish_event_driven(setup)
    _print(
        f"§2: microburst detection (resumed from {header['now_ps']}ps "
        f"on {sim.scheduler})",
        [result.summary_row()],
    )
    return 0


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "figures": run_figures,
    "fig3": run_fig3,
    "microburst": run_microburst,
    "applications": run_applications,
    "cms": run_cms,
    "emulation": run_emulation,
    "future-work": run_future_work,
}


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    # Subcommands with their own argument namespaces dispatch before the
    # flat experiment parser sees them.
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] == "serve":
        from repro.serve.server import main as serve_main

        return serve_main(raw[1:])
    if raw and raw[0] == "submit":
        return run_submit(raw[1:])
    if raw and raw[0] == "scenarios":
        return run_scenarios_list(raw[1:])
    if raw and raw[0] == "search":
        return run_search_cli(raw[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the paper's tables, figures, and claims.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "list", "events-stats", "events-trace", "bench",
           "checkpoint", "resume", "chaos", "shard",
           "scenarios", "search", "serve", "submit"],
        help="experiment to run ('all' for everything, 'list' to enumerate)",
    )
    parser.add_argument(
        "--source",
        default="microburst",
        help="registered 'source' scenario events-stats/events-trace "
        "instrument (unknown names print the catalog)",
    )
    parser.add_argument(
        "--out",
        default="events_trace.jsonl",
        help="output path for events-trace",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=5,
        help="trace records events-trace prints",
    )
    parser.add_argument(
        "--label",
        default="local",
        help="bench: trajectory point name (output defaults to BENCH_<label>.json)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="bench: timed rounds per benchmark",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="bench: processes to fan rounds across (1 = serial, best timing fidelity)",
    )
    parser.add_argument(
        "--compare",
        action="append",
        default=[],
        metavar="BENCH_JSON",
        help="bench: baseline snapshot(s) to gate against (repeatable; "
        "non-zero exit on regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="bench: allowed slowdown vs the baseline (0.25 = 25%%)",
    )
    parser.add_argument(
        "--resume",
        default="",
        metavar="PROGRESS_JSON",
        help="bench: progress file making an interrupted sweep resumable",
    )
    parser.add_argument(
        "--sharded-showcase",
        action="store_true",
        help="bench: also run the k=8 fat-tree serial-vs-8-shard showcase "
        "and record it under the snapshot's 'sharded' key",
    )
    parser.add_argument(
        "--host-normalize",
        action="store_true",
        help="bench: correct wall times by the snapshots' host-speed "
        "calibration scores before gating (the delta table then shows "
        "raw and normalized deltas)",
    )
    parser.add_argument(
        "--topology",
        choices=("fattree", "leafspine"),
        default="leafspine",
        help="shard: fabric to build",
    )
    parser.add_argument(
        "--k",
        type=int,
        default=4,
        help="shard: fat-tree arity (even, >= 2)",
    )
    parser.add_argument(
        "--leaves",
        type=int,
        default=4,
        help="shard: leaf-spine leaf count",
    )
    parser.add_argument(
        "--spines",
        type=int,
        default=4,
        help="shard: leaf-spine spine count",
    )
    parser.add_argument(
        "--hosts-per-leaf",
        type=int,
        default=2,
        help="shard: hosts per leaf switch",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard: number of shard simulators",
    )
    parser.add_argument(
        "--mode",
        choices=("inline", "process"),
        default="process",
        help="shard: worker execution mode",
    )
    parser.add_argument(
        "--workload",
        choices=("incast", "zipf"),
        default="incast",
        help="shard: traffic pattern",
    )
    parser.add_argument(
        "--waves",
        type=int,
        default=2,
        help="shard: incast waves (zipf: schedule length multiplier)",
    )
    parser.add_argument(
        "--packets",
        type=int,
        default=4,
        help="shard: packets per sender per wave",
    )
    parser.add_argument(
        "--compare-serial",
        action="store_true",
        help="shard: also run single-process and diff behavior fingerprints "
        "(non-zero exit on mismatch)",
    )
    parser.add_argument(
        "--json-out",
        default="",
        metavar="PATH",
        help="shard: write the run record as JSON",
    )
    parser.add_argument(
        "--plan",
        default="all",
        help="chaos: fault plan to run ('all' = the whole catalog)",
    )
    parser.add_argument(
        "--app",
        default="all",
        help="chaos: application scenario to run ('all' = every app)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="chaos: base seed (every fault draw derives from it)",
    )
    parser.add_argument(
        "--seed-sweep",
        type=int,
        default=0,
        metavar="N",
        help="chaos: run N consecutive seeds starting at --seed",
    )
    parser.add_argument(
        "--compile-arm",
        action="store_true",
        help="chaos: add a third arm (compiled pipelines, cache off) to "
        "each cell and gate it against the interpreted reference",
    )
    parser.add_argument(
        "--fastpath-arm",
        action="store_true",
        help="chaos: add a flow-fastpath arm (fused deliveries, "
        "materialized on disruption) to each cell and gate it against a "
        "fastpath-pinned-off reference",
    )
    parser.add_argument(
        "--forked",
        action="store_true",
        help="chaos: build each (app, seed, arm) once and Simulator.fork() "
        "it per plan — identical records, O(fork) per cell",
    )
    parser.add_argument(
        "--ckpt",
        default="microburst.ckpt",
        metavar="PATH",
        help="checkpoint/resume: checkpoint file path",
    )
    parser.add_argument(
        "--at-ps",
        type=int,
        default=10_000_000_000,  # 10 ms into the default 20 ms run
        help="checkpoint: simulated time (ps) at which to snapshot",
    )
    parser.add_argument(
        "--duration-ps",
        type=int,
        default=20_000_000_000,
        help="checkpoint: total simulated duration (ps) of the run",
    )
    parser.add_argument(
        "--info",
        action="store_true",
        help="resume: print the checkpoint header and exit",
    )
    parser.add_argument(
        "--scheduler",
        choices=("", "heap", "wheel"),
        default="",
        help="resume: re-backend the restored kernel (order is identical)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name, fn in sorted(EXPERIMENTS.items()):
            print(f"{name:<14} {fn.__doc__.splitlines()[0]}")
        for name, fn in (
            ("events-stats", run_events_stats),
            ("events-trace", run_events_trace),
            ("bench", run_bench),
            ("chaos", run_chaos),
            ("checkpoint", run_checkpoint),
            ("resume", run_resume),
            ("shard", run_shard),
            ("scenarios", run_scenarios_list),
            ("search", run_search_cli),
            ("submit", run_submit),
        ):
            print(f"{name:<14} {fn.__doc__.splitlines()[0]}")
        print(
            f"{'serve':<14} Run the scenario job service "
            "(stdio or --socket; see docs/SERVING.md)"
        )
        return 0
    if args.experiment == "bench":
        return run_bench(
            label=args.label,
            out="" if args.out == "events_trace.jsonl" else args.out,
            rounds=args.rounds,
            workers=args.workers,
            compare_to=args.compare,
            max_regression=args.max_regression,
            resume_path=args.resume,
            sharded_showcase=args.sharded_showcase,
            host_normalize=args.host_normalize,
        )
    if args.experiment == "shard":
        return run_shard(
            topology=args.topology,
            k=args.k,
            leaves=args.leaves,
            spines=args.spines,
            hosts_per_leaf=args.hosts_per_leaf,
            shards=args.shards,
            mode=args.mode,
            workload=args.workload,
            waves=args.waves,
            packets=args.packets,
            compare_serial=args.compare_serial,
            json_out=args.json_out,
        )
    if args.experiment == "chaos":
        return run_chaos(
            plan=args.plan,
            app=args.app,
            seed=args.seed,
            seed_sweep=args.seed_sweep,
            out="chaos_verdicts.jsonl"
            if args.out == "events_trace.jsonl"
            else args.out,
            compile_arm=args.compile_arm,
            forked=args.forked,
            fastpath_arm=args.fastpath_arm,
        )
    if args.experiment == "checkpoint":
        return run_checkpoint(args.ckpt, args.at_ps, args.duration_ps)
    if args.experiment == "resume":
        return run_resume(args.ckpt, info=args.info, scheduler=args.scheduler)
    if args.experiment == "events-stats":
        run_events_stats(args.source)
        return 0
    if args.experiment == "events-trace":
        run_events_trace(args.source, args.out, args.limit)
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            EXPERIMENTS[name]()
        return 0
    EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
