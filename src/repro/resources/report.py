"""Table 3: the cost of adding event support.

Builds the SUME reference switch and the SUME Event Switch out of the
component estimators and reports the *increase* as a percentage of the
total Virtex-7 resources — the exact quantity of the paper's Table 3:

    FPGA Resource | % Increase
    Lookup Tables |   0.5
    Flip Flops    |   0.4
    Block RAM     |   2.0
"""

from __future__ import annotations

from typing import Dict, List

from repro.packet.parser import standard_parser
from repro.resources.model import (
    ResourceVector,
    SwitchBudget,
    estimate_dma_engine,
    estimate_fifo,
    estimate_mac_port,
    estimate_metadata_bus_widening,
    estimate_parser,
    estimate_pipeline_stage,
    estimate_table,
)
from repro.resources.virtex7 import VIRTEX7_690T, DeviceCapacity

#: Width of one event's metadata word on the widened bus (flow id,
#: length, queue id, depth — matching the SUME event metadata format).
EVENT_WORD_BITS = 96


def reference_switch_build(
    stage_count: int = 8,
    port_count: int = 4,
    queue_capacity_bytes: int = 64 * 1024,
) -> SwitchBudget:
    """The P4→NetFPGA reference switch (no event support)."""
    budget = SwitchBudget("sume-reference-switch")
    for port in range(port_count):
        budget.add(f"mac{port}", estimate_mac_port(), category="infrastructure")
    budget.add("dma", estimate_dma_engine(), category="infrastructure")
    budget.add("parser", estimate_parser(standard_parser()), category="pipeline")
    for stage in range(stage_count):
        budget.add(
            f"stage{stage}", estimate_pipeline_stage(bus_width_bits=512), category="pipeline"
        )
    budget.add(
        "forwarding_table",
        estimate_table(entries=1024, key_bits=48, kind="exact"),
        category="pipeline",
    )
    budget.add(
        "ip_lpm_table",
        estimate_table(entries=512, key_bits=32, kind="lpm"),
        category="pipeline",
    )
    for port in range(port_count):
        budget.add(
            f"output_queue{port}",
            estimate_fifo(depth=queue_capacity_bytes // 32, width_bits=256),
            category="queues",
        )
    budget.add("deparser", estimate_parser(standard_parser()).scaled(0.5), category="pipeline")
    return budget


def event_logic_build(
    stage_count: int = 8,
    event_kinds: int = 9,
) -> SwitchBudget:
    """Just the blocks event support adds (paper Figure 4's new boxes).

    * the Event Merger with one small metadata FIFO per event kind,
    * the timer unit,
    * the configurable packet generator (template memory in BRAM),
    * the link status monitor,
    * a drop/enq/deq event tap on the output queues,
    * metadata bus widening to carry the event words through the
      pipeline.
    """
    budget = SwitchBudget("event-logic")
    merger_control = ResourceVector(luts=600, flip_flops=600, bram_36kb=0)
    budget.add("event_merger.control", merger_control, category="events")
    for kind in range(event_kinds):
        budget.add(
            f"event_merger.fifo{kind}",
            estimate_fifo(depth=256, width_bits=EVENT_WORD_BITS),
            category="events",
        )
    budget.add(
        "timer_unit",
        ResourceVector(luts=120, flip_flops=150, bram_36kb=0),
        category="events",
    )
    budget.add(
        "packet_generator",
        ResourceVector(luts=300, flip_flops=300, bram_36kb=10),
        category="events",
    )
    budget.add(
        "link_status_monitor",
        ResourceVector(luts=80, flip_flops=60, bram_36kb=0),
        category="events",
    )
    budget.add(
        "queue_event_tap",
        ResourceVector(luts=160, flip_flops=200, bram_36kb=10),
        category="events",
    )
    budget.add(
        "event_metadata_bus",
        estimate_metadata_bus_widening(EVENT_WORD_BITS, stage_count),
        category="events",
    )
    return budget


def event_switch_build(
    stage_count: int = 8,
    port_count: int = 4,
    queue_capacity_bytes: int = 64 * 1024,
) -> SwitchBudget:
    """The full SUME Event Switch: reference switch + event logic."""
    budget = SwitchBudget("sume-event-switch")
    budget.extend(reference_switch_build(stage_count, port_count, queue_capacity_bytes))
    budget.extend(event_logic_build(stage_count))
    return budget


def table3_rows(device: DeviceCapacity = VIRTEX7_690T) -> List[Dict[str, float]]:
    """The reproduction of Table 3: % increase per FPGA resource class.

    "% increase" follows the paper: the event logic's footprint as a
    percentage of the device's total resources.
    """
    delta = event_logic_build().total()
    percent = delta.percent_of(device)
    paper = {"luts": 0.5, "flip_flops": 0.4, "bram": 2.0}
    label = {"luts": "Lookup Tables", "flip_flops": "Flip Flops", "bram": "Block RAM"}
    return [
        {
            "resource": label[key],
            "paper_percent_increase": paper[key],
            "measured_percent_increase": round(percent[key], 2),
        }
        for key in ("luts", "flip_flops", "bram")
    ]


def utilization_report(device: DeviceCapacity = VIRTEX7_690T) -> Dict[str, Dict[str, float]]:
    """Full utilization context: reference vs. event switch."""
    return {
        "reference_switch": reference_switch_build().utilization(device),
        "event_switch": event_switch_build().utilization(device),
        "event_logic_only": event_logic_build().total().percent_of(device),
    }
