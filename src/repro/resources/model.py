"""Structural resource estimation.

Each architectural component carries a :class:`ResourceVector` of LUTs,
flip-flops, and 36Kb block RAMs.  Per-component estimates follow the
usual FPGA sizing rules of thumb:

* a register/table memory of ``bits`` capacity occupies
  ``ceil(bits / 36Kb)`` BRAMs plus a little RMW/match logic,
* pipeline registers (the metadata bus) cost flip-flops proportional to
  bus width per stage,
* small FSMs (parser states, timers, monitors) cost tens-to-hundreds of
  LUTs/FFs.

Absolute numbers are calibrated, not synthesized (see the subpackage
docstring); *relative* accounting — which blocks event support adds and
how they compare to a reference switch — is the reproduced quantity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.packet.parser import Parser
from repro.resources.virtex7 import DeviceCapacity

BRAM_BITS = 36 * 1024


@dataclass(frozen=True)
class ResourceVector:
    """A (LUTs, flip-flops, BRAMs) triple with vector arithmetic."""

    luts: float = 0.0
    flip_flops: float = 0.0
    bram_36kb: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.flip_flops + other.flip_flops,
            self.bram_36kb + other.bram_36kb,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """This vector times ``factor``."""
        return ResourceVector(
            self.luts * factor, self.flip_flops * factor, self.bram_36kb * factor
        )

    def percent_of(self, device: DeviceCapacity) -> Dict[str, float]:
        """Utilization of ``device``, in percent per resource class."""
        return {
            "luts": 100.0 * self.luts / device.luts,
            "flip_flops": 100.0 * self.flip_flops / device.flip_flops,
            "bram": 100.0 * self.bram_36kb / device.bram_36kb,
        }

    def __repr__(self) -> str:
        return (
            f"ResourceVector(luts={self.luts:.0f}, ffs={self.flip_flops:.0f}, "
            f"bram={self.bram_36kb:.1f})"
        )


ZERO = ResourceVector()


@dataclass(frozen=True)
class Component:
    """A named block with its resource estimate."""

    name: str
    vector: ResourceVector
    category: str = "logic"


# ----------------------------------------------------------------------
# Per-component estimators
# ----------------------------------------------------------------------
def estimate_register(size: int, width_bits: int = 32) -> ResourceVector:
    """A register-array extern: BRAM for storage, LUTs for RMW logic."""
    if size <= 0 or width_bits <= 0:
        raise ValueError("register size and width must be positive")
    bits = size * width_bits
    brams = max(1, math.ceil(bits / BRAM_BITS))
    return ResourceVector(luts=180 + width_bits * 2, flip_flops=width_bits * 4, bram_36kb=brams)


def estimate_table(entries: int, key_bits: int, kind: str = "exact") -> ResourceVector:
    """A match-action table.

    Exact tables hash into BRAM; ternary tables burn LUTs as TCAM
    emulation (the standard FPGA trade-off), LPM sits between.
    """
    if entries <= 0 or key_bits <= 0:
        raise ValueError("table entries and key width must be positive")
    entry_bits = key_bits + 64  # key + action data/overhead
    storage_bits = entries * entry_bits
    if kind == "exact":
        return ResourceVector(
            luts=400,
            flip_flops=key_bits * 4,
            bram_36kb=max(1, math.ceil(storage_bits / BRAM_BITS)),
        )
    if kind == "lpm":
        return ResourceVector(
            luts=700 + key_bits * 6,
            flip_flops=key_bits * 6,
            bram_36kb=max(1, math.ceil(2 * storage_bits / BRAM_BITS)),
        )
    if kind == "ternary":
        # LUT-based CAM emulation: cost scales with entries * key bits.
        return ResourceVector(
            luts=entries * key_bits / 4,
            flip_flops=entries * key_bits / 2,
            bram_36kb=0,
        )
    raise ValueError(f"unknown table kind {kind!r}")


def estimate_parser(parser: Parser) -> ResourceVector:
    """A programmable parser: one extract/select FSM node per state."""
    per_state = ResourceVector(luts=280, flip_flops=420, bram_36kb=0)
    return per_state.scaled(parser.state_count)


def estimate_pipeline_stage(bus_width_bits: int = 512) -> ResourceVector:
    """One match-action stage's fixed logic plus its pipeline registers."""
    if bus_width_bits <= 0:
        raise ValueError("bus width must be positive")
    return ResourceVector(
        luts=900 + bus_width_bits / 4,
        flip_flops=bus_width_bits * 2,
        bram_36kb=0,
    )


def estimate_metadata_bus_widening(
    extra_bits: int, stage_count: int
) -> ResourceVector:
    """Widening the per-stage metadata bus to carry event words."""
    if extra_bits < 0 or stage_count <= 0:
        raise ValueError("extra bits must be >= 0 and stages positive")
    per_stage = ResourceVector(
        luts=extra_bits / 4, flip_flops=extra_bits * 2, bram_36kb=0
    )
    return per_stage.scaled(stage_count)


def estimate_fifo(depth: int, width_bits: int) -> ResourceVector:
    """A FIFO (queue memory + pointers)."""
    if depth <= 0 or width_bits <= 0:
        raise ValueError("depth and width must be positive")
    bits = depth * width_bits
    return ResourceVector(
        luts=60,
        flip_flops=90,
        bram_36kb=max(1, math.ceil(bits / BRAM_BITS)),
    )


def estimate_mac_port() -> ResourceVector:
    """One 10GbE MAC + AXI-Stream plumbing."""
    return ResourceVector(luts=9_000, flip_flops=12_000, bram_36kb=18)


def estimate_dma_engine() -> ResourceVector:
    """PCIe DMA engine (the SUME reference design's host path)."""
    return ResourceVector(luts=26_000, flip_flops=34_000, bram_36kb=60)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
class SwitchBudget:
    """A named collection of components with resource totals."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.components: List[Component] = []

    def add(self, name: str, vector: ResourceVector, category: str = "logic") -> None:
        """Add a component."""
        self.components.append(Component(name, vector, category))

    def extend(self, other: "SwitchBudget") -> None:
        """Absorb another budget's components."""
        self.components.extend(other.components)

    def total(self) -> ResourceVector:
        """Sum across components."""
        acc = ZERO
        for component in self.components:
            acc = acc + component.vector
        return acc

    def total_category(self, category: str) -> ResourceVector:
        """Sum across components of one category."""
        acc = ZERO
        for component in self.components:
            if component.category == category:
                acc = acc + component.vector
        return acc

    def utilization(self, device: DeviceCapacity) -> Dict[str, float]:
        """Percent utilization of ``device``."""
        return self.total().percent_of(device)

    def __repr__(self) -> str:
        return f"SwitchBudget({self.name!r}, {len(self.components)} components)"
