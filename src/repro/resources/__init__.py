"""FPGA resource model (paper Table 3).

The paper reports that adding event support to the SUME Event Switch
costs at most 2% additional resources on a Xilinx Virtex-7 FPGA:
+0.5% LUTs, +0.4% flip-flops, +2.0% block RAM.  We cannot synthesize
Verilog here, so the reproduction uses a *structural cost model*: every
architectural component (parser states, match-action stages, tables,
register externs, queues, and the event-specific blocks — Event Merger,
timer unit, packet generator, link monitor, event metadata bus) carries
a LUT/FF/BRAM estimate, calibrated against the published capacities of
the SUME's XC7V690T part and the P4→NetFPGA reference switch reports.
The Table 3 bench assembles a reference switch and an event switch from
these components and reports the percentage increase.
"""

from repro.resources.model import (
    Component,
    ResourceVector,
    SwitchBudget,
    estimate_parser,
    estimate_pipeline_stage,
    estimate_register,
    estimate_table,
)
from repro.resources.virtex7 import VIRTEX7_690T, DeviceCapacity
from repro.resources.report import (
    event_switch_build,
    reference_switch_build,
    table3_rows,
)
from repro.resources.programs import (
    application_cost_rows,
    estimate_extern,
    estimate_program,
)

__all__ = [
    "ResourceVector",
    "Component",
    "SwitchBudget",
    "estimate_register",
    "estimate_table",
    "estimate_parser",
    "estimate_pipeline_stage",
    "DeviceCapacity",
    "VIRTEX7_690T",
    "reference_switch_build",
    "event_switch_build",
    "table3_rows",
    "estimate_program",
    "estimate_extern",
    "application_cost_rows",
]
