"""Device capacities.

The NetFPGA SUME carries a Xilinx Virtex-7 XC7V690T.  Capacities below
are the published datasheet numbers; the Table 3 percentages are
computed against them, exactly as the paper's "% of the total resources
available in a Xilinx Virtex-7 FPGA".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceCapacity:
    """Total programmable resources of one FPGA part."""

    name: str
    luts: int
    flip_flops: int
    bram_36kb: int

    @property
    def bram_bits(self) -> int:
        """Total block RAM capacity in bits."""
        return self.bram_36kb * 36 * 1024


#: Xilinx Virtex-7 XC7V690T (the NetFPGA SUME part).
VIRTEX7_690T = DeviceCapacity(
    name="XC7V690T",
    luts=433_200,
    flip_flops=866_400,
    bram_36kb=1_470,
)
