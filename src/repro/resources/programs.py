"""Per-program resource estimation.

An extension of the Table 3 model: estimate what each *application*
adds on top of the event switch, from its declared externs and
handlers.  This answers the practical deployment question the paper's
resource table raises — if event support itself is ~2%, what do the §3
programs cost on top?
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.arch.program import P4Program
from repro.pisa.externs.counter import Counter
from repro.pisa.externs.meter import Meter
from repro.pisa.externs.pifo import PifoQueue
from repro.pisa.externs.register import Register
from repro.pisa.externs.sketch import BloomFilter, CountMinSketch
from repro.pisa.externs.window import ShiftRegister, SlidingWindow
from repro.resources.model import BRAM_BITS, ResourceVector, estimate_register
from repro.resources.virtex7 import VIRTEX7_690T, DeviceCapacity

#: Control logic per event handler (comparison/branch/ALU slice).
HANDLER_LOGIC = ResourceVector(luts=350, flip_flops=500, bram_36kb=0)


def estimate_extern(extern: object) -> ResourceVector:
    """Resource estimate for one extern instance."""
    if isinstance(extern, Register):
        return estimate_register(extern.size, extern.width_bits)
    if isinstance(extern, Counter):
        return estimate_register(extern.size, 64)
    if isinstance(extern, Meter):
        # Two bucket levels + timestamp per index, plus refill logic.
        storage = estimate_register(extern.size, 96)
        return storage + ResourceVector(luts=300, flip_flops=200, bram_36kb=0)
    if isinstance(extern, CountMinSketch):
        rows = ResourceVector()
        for _row in range(extern.depth):
            rows = rows + estimate_register(extern.width, 32)
        # One hash unit per row.
        return rows + ResourceVector(
            luts=220 * extern.depth, flip_flops=150 * extern.depth, bram_36kb=0
        )
    if isinstance(extern, BloomFilter):
        brams = max(1, math.ceil(extern.bits / BRAM_BITS))
        return ResourceVector(
            luts=220 * extern.hashes, flip_flops=150 * extern.hashes, bram_36kb=brams
        )
    if isinstance(extern, PifoQueue):
        # A PIFO block is expensive: shift-register-based priority
        # insertion scales with capacity.
        return ResourceVector(
            luts=extern.capacity * 8,
            flip_flops=extern.capacity * 16,
            bram_36kb=max(1, math.ceil(extern.capacity * 128 / BRAM_BITS)),
        )
    if isinstance(extern, ShiftRegister):
        return estimate_register(extern.slots, 32)
    if isinstance(extern, SlidingWindow):
        return estimate_register(extern.size * extern.slots, 32)
    return ResourceVector()


def estimate_program(program: P4Program) -> ResourceVector:
    """Total estimate for a program: externs + handler logic."""
    total = ResourceVector()
    for _name, extern in program.externs():
        total = total + estimate_extern(extern)
    total = total + HANDLER_LOGIC.scaled(len(program.handled_events()))
    return total


def application_cost_rows(
    device: DeviceCapacity = VIRTEX7_690T,
) -> List[Dict[str, object]]:
    """The extension table: per-application cost on the event switch."""
    from repro.apps.aqm import FredAqm, RedAqm
    from repro.apps.ecn import MultiBitEcnProgram
    from repro.apps.flow_rate import FlowRateMonitor
    from repro.apps.frr import FastRerouteProgram
    from repro.apps.heavy_hitters import HeavyHitterDetector
    from repro.apps.hula import HulaLeafProgram
    from repro.apps.liveness import LivenessMonitor
    from repro.apps.microburst import MicroburstDetector
    from repro.apps.netcache import NetCacheProgram
    from repro.apps.policing import TimerTokenBucketPolicer
    from repro.apps.scheduling import WfqSchedulerProgram
    from repro.apps.snappy import SnappyDetector

    applications: List[Tuple[str, P4Program]] = [
        ("microburst (event-driven)", MicroburstDetector()),
        ("microburst (Snappy baseline)", SnappyDetector()),
        ("HULA leaf", HulaLeafProgram(tor_id=0, uplink_ports=[0, 1], tor_count=4)),
        ("fast re-route", FastRerouteProgram()),
        ("liveness monitor", LivenessMonitor(switch_id=0, neighbor_ports=[0, 1, 2])),
        ("flow-rate windows", FlowRateMonitor()),
        ("FRED AQM", FredAqm()),
        ("RED AQM", RedAqm()),
        ("timer token bucket", TimerTokenBucketPolicer()),
        ("heavy hitters (CMS)", HeavyHitterDetector()),
        ("NetCache", NetCacheProgram()),
        ("WFQ scheduler", WfqSchedulerProgram()),
        ("multi-bit ECN", MultiBitEcnProgram(buffer_capacity_bytes=64 * 1024)),
    ]
    rows = []
    for name, program in applications:
        vector = estimate_program(program)
        if isinstance(program, WfqSchedulerProgram):
            # The scheduler's PIFO block lives in the traffic manager,
            # not the program; price the capacity the WFQ experiment
            # configures.
            vector = vector + estimate_extern(PifoQueue(512, name="sched_pifo"))
        percent = vector.percent_of(device)
        rows.append(
            {
                "application": name,
                "state_bits": program.state_bits(),
                "luts_percent": round(percent["luts"], 3),
                "bram_percent": round(percent["bram"], 3),
            }
        )
    return rows
