"""Compile a :class:`~repro.faults.plan.FaultPlan` into timed events.

The :class:`FaultInjector` resolves each spec's target against a
:class:`~repro.faults.scenarios.Scenario`, schedules the fault actions
on the scenario's simulator, and logs every executed action into a
:class:`~repro.obs.faultlog.FaultLog`.  All randomness (flap-time
jitter, per-packet degradation draws) comes from named children of one
:class:`~repro.sim.rng.SeededRng`, so a (plan, app, seed) triple
replays byte-identically.

Faults surface through the same machinery the paper's applications
react to: flaps drive :meth:`Link.set_up`, which raises LINK_STATUS at
both endpoints; churn rides :meth:`ControlPlane.update_table`, bumping
route generations; bursts pause a traffic-manager port, forcing
enqueue/overflow events; stalls and crash-restores exercise the switch
directly (restore via the PR-3 :class:`~repro.state.store.StateStore`
snapshot/load path).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.faultlog import FaultLog
from repro.sim.rng import SeededRng


class Degradation:
    """A seeded per-packet link impairment (loss, corruption, jitter).

    Implements the :class:`~repro.net.link.LinkImpairment` protocol with
    one verdict draw and (when jitter is configured) one delay draw per
    packet, in transmit order — fully deterministic for a given rng.
    """

    def __init__(
        self, rng: SeededRng, loss: float, corrupt: float, jitter_ps: int
    ) -> None:
        self.rng = rng
        self.loss = loss
        self.corrupt = corrupt
        self.jitter_ps = jitter_ps
        self.judged = 0
        self.dropped = 0
        self.corrupted = 0
        self.delay_added_ps = 0

    def judge(self, pkt) -> Tuple[str, int]:
        """Decide one packet's fate: ("ok"|"drop"|"corrupt", extra_ps)."""
        self.judged += 1
        draw = self.rng.random()
        if draw < self.loss:
            self.dropped += 1
            return ("drop", 0)
        extra = self.rng.randint(0, self.jitter_ps) if self.jitter_ps else 0
        self.delay_added_ps += extra
        if draw < self.loss + self.corrupt:
            self.corrupted += 1
            return ("corrupt", extra)
        return ("ok", extra)


def _reinstall_routes(program) -> None:
    """Reinstall a forwarding program's routes with identical values.

    The point is the side effect on the cache layer, not the table
    contents: every ``routes[dst] = port`` write bumps the
    :class:`~repro.pisa.flowcache.VersionedDict` generation, so the
    flow cache must invalidate while forwarding behavior is unchanged —
    the cleanest possible probe for stale-hit bugs.
    """
    for dst_ip, port in list(program.routes.items()):
        program.routes[dst_ip] = port


class FaultInjector:
    """Arm a fault plan against a scenario's simulator."""

    def __init__(
        self,
        scenario,
        plan: FaultPlan,
        rng: SeededRng,
        log: Optional[FaultLog] = None,
    ) -> None:
        self.scenario = scenario
        self.plan = plan
        self.rng = rng
        self.log = log if log is not None else FaultLog()
        self.degradations: List[Degradation] = []
        self._snapshots: Dict[int, List[Tuple[Any, List[Any]]]] = {}
        self._armed = False

    def arm(self) -> None:
        """Schedule every spec's actions; call once, before running."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        for index, spec in enumerate(self.plan.specs):
            child = self.rng.child(f"{index}.{spec.kind}")
            getattr(self, f"_arm_{spec.kind}")(index, spec, child)

    # ------------------------------------------------------------------
    # Scheduling plumbing
    # ------------------------------------------------------------------
    def _at(
        self, time_ps: int, spec: FaultSpec, action: str, target: str, fn, *args
    ) -> None:
        self.scenario.network.sim.call_at(
            time_ps, self._fire, spec, action, target, fn, args
        )

    def _fire(self, spec: FaultSpec, action: str, target: str, fn, args) -> None:
        fn(*args)
        self.log.record(
            self.scenario.network.sim.now_ps,
            self.plan.name,
            spec.kind,
            action,
            target,
        )

    # ------------------------------------------------------------------
    # Per-kind compilation
    # ------------------------------------------------------------------
    def _arm_link_flap(self, index: int, spec: FaultSpec, rng: SeededRng) -> None:
        link = self.scenario.resolve_link(spec.target)
        start, end = spec.window_ps(self.scenario.duration_ps)
        cycle = max(2, (end - start) // spec.flaps)
        for k in range(spec.flaps):
            # Seeded jitter on each cycle start: seed sweeps explore
            # different orderings against in-flight packet events.
            offset = rng.randint(0, max(1, cycle // 4))
            down_at = start + k * cycle + offset
            up_at = down_at + cycle // 2
            self._at(down_at, spec, "link_down", link.name, link.set_up, False)
            self._at(up_at, spec, "link_up", link.name, link.set_up, True)

    def _arm_link_degrade(self, index: int, spec: FaultSpec, rng: SeededRng) -> None:
        link = self.scenario.resolve_link(spec.target)
        start, end = spec.window_ps(self.scenario.duration_ps)
        degradation = Degradation(
            rng.child("draws"), spec.loss, spec.corrupt, spec.jitter_ps
        )
        self.degradations.append(degradation)
        self._at(start, spec, "degrade_on", link.name, link.set_impairment, degradation)
        self._at(end, spec, "degrade_off", link.name, link.set_impairment, None)

    def _arm_switch_stall(self, index: int, spec: FaultSpec, rng: SeededRng) -> None:
        switch = self.scenario.resolve_switch(spec.target)
        start, end = spec.window_ps(self.scenario.duration_ps)
        self._at(start, spec, "stall", switch.name, switch.stall)
        self._at(end, spec, "unstall", switch.name, switch.unstall)

    def _arm_switch_crash(self, index: int, spec: FaultSpec, rng: SeededRng) -> None:
        switch = self.scenario.resolve_switch(spec.target)
        start, end = spec.window_ps(self.scenario.duration_ps)
        checkpoint_at = spec.checkpoint_ps(self.scenario.duration_ps)
        self._at(
            checkpoint_at, spec, "checkpoint", switch.name, self._checkpoint,
            index, switch,
        )
        self._at(start, spec, "crash", switch.name, switch.stall)
        self._at(end, spec, "restore", switch.name, self._restore, index, switch)

    def _checkpoint(self, index: int, switch) -> None:
        # Flush fused in-flight deliveries first: their retroactive
        # extern writes belong to the virtual past and must land before
        # the snapshot is taken.
        disrupt = getattr(switch, "fastpath_disrupt", None)
        if disrupt is not None:
            disrupt()
        self._snapshots[index] = [
            (store, store.snapshot()) for store in switch.state_stores()
        ]

    def _restore(self, index: int, switch) -> None:
        snapshots = self._snapshots.get(index)
        if snapshots is None:
            raise RuntimeError(
                f"restore for {switch.name!r} fired before its checkpoint"
            )
        for store, values in snapshots:
            store.load(values)
        if switch.flow_cache is not None:
            # Cached decisions recorded against post-checkpoint extern
            # state would replay against the rolled-back registers.
            switch.flow_cache.clear()
        if getattr(switch, "flow_fastpath", None) is not None:
            switch.flow_fastpath.clear()
        switch.unstall()

    def _arm_control_churn(self, index: int, spec: FaultSpec, rng: SeededRng) -> None:
        start, end = spec.window_ps(self.scenario.duration_ps)
        step = max(1, (end - start) // spec.updates)
        for u in range(spec.updates):
            self._at(start + u * step, spec, "churn_storm", "control", self._churn)

    def _churn(self) -> None:
        control = self.scenario.control
        for _name, program in self.scenario.churn_targets:
            control.update_table(
                partial(_reinstall_routes, program), entries=len(program.routes)
            )

    def _arm_buffer_burst(self, index: int, spec: FaultSpec, rng: SeededRng) -> None:
        switch_name, port = self.scenario.burst
        switch = self.scenario.network.switches[switch_name]
        start, end = spec.window_ps(self.scenario.duration_ps)
        target = f"{switch_name}:{port}"
        self._at(
            start, spec, "port_pause", target, switch.tm.set_port_enabled, port, False
        )
        self._at(
            end, spec, "port_release", target, switch.tm.set_port_enabled, port, True
        )
