"""Invariant monitors the chaos harness attaches to every run.

Three monitors, matching the three failure classes fault injection can
expose:

* :class:`PacketConservationMonitor` — every packet a link accepted is
  in exactly one of delivered / lost / corrupted / in-flight, exactly,
  per link, at any instant (so packet duplication or vanishing anywhere
  in the net layer is caught even mid-drain).
* :class:`ReconvergenceMonitor` — sink-side arrival log; measures how
  long after the last fault action traffic resumed.  A measurement, not
  an invariant: some scenarios legitimately stay dark (budget
  exhausted, route never repaired).
* :class:`FlowCacheCoherenceMonitor` — aggregates flow-cache counters
  and runs the eager :meth:`~repro.pisa.flowcache.FlowCache.verify_entries`
  sweep.  Under control-plane churn a cache that served hits must also
  show invalidations (every churn bumps route generations), and after a
  full sweep a second sweep must find nothing — stale entries can be
  *resident* (lazily evicted) but never *served*.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class PacketConservationMonitor:
    """Exact per-link packet accounting across the whole network."""

    def __init__(self, network) -> None:
        self.network = network

    def check(self) -> List[str]:
        """Violation messages (empty = every link ledger balances)."""
        violations: List[str] = []
        for link in self.network.links:
            ledger = link.conservation_ledger()
            accounted = (
                ledger["delivered"]
                + ledger["lost"]
                + ledger["corrupted"]
                + ledger["in_flight"]
            )
            if ledger["tx"] != accounted:
                violations.append(
                    f"conservation:{link.name}: tx={ledger['tx']} != "
                    f"delivered+lost+corrupted+in_flight={accounted} ({ledger})"
                )
            if min(ledger.values()) < 0:
                violations.append(
                    f"conservation:{link.name}: negative counter ({ledger})"
                )
        return violations

    def totals(self) -> Dict[str, int]:
        """Network-wide ledger sums (for the verdict record)."""
        totals = {"tx": 0, "delivered": 0, "lost": 0, "corrupted": 0, "in_flight": 0}
        for link in self.network.links:
            for key, value in link.conservation_ledger().items():
                totals[key] += value
        return totals


class ReconvergenceMonitor:
    """Sink arrival log + time-to-resume measurement."""

    def __init__(self, sim, host) -> None:
        self.sim = sim
        self.arrivals: List[int] = []
        host.add_sink(self._on_arrival)

    def _on_arrival(self, pkt) -> None:
        self.arrivals.append(self.sim.now_ps)

    def reconvergence_ps(self, after_ps: int) -> Optional[int]:
        """Delay from ``after_ps`` to the first later arrival, or None."""
        if after_ps < 0:
            return None
        for time_ps in self.arrivals:
            if time_ps >= after_ps:
                return time_ps - after_ps
        return None

    def max_gap_ps(self) -> int:
        """The largest inter-arrival gap seen at the sink."""
        gap = 0
        for before, after in zip(self.arrivals, self.arrivals[1:]):
            gap = max(gap, after - before)
        return gap


class FlowCacheCoherenceMonitor:
    """Flow-cache counters + the eager stale-entry sweep."""

    def __init__(self, caches) -> None:
        self.caches = list(caches)
        self.swept = 0

    def sweep(self) -> int:
        """Purge stale entries everywhere; returns how many were purged."""
        purged = sum(cache.verify_entries() for cache in self.caches)
        self.swept += purged
        return purged

    def totals(self) -> Dict[str, int]:
        """Aggregated cache counters (including sweep-purged entries)."""
        totals = {
            "hits": 0,
            "misses": 0,
            "uncacheable": 0,
            "invalidations": 0,
            "evictions": 0,
        }
        for cache in self.caches:
            stats = cache.stats
            for key in totals:
                totals[key] += getattr(stats, key)
        totals["swept"] = self.swept
        return totals

    def check(self, churned: bool) -> List[str]:
        """Violations after a completed run.

        Runs the final sweep, asserts it converges (a second sweep finds
        nothing), and — when the plan included control-plane churn —
        that a cache which served hits also invalidated: churn bumps
        every route generation, so zero invalidations alongside hits
        would mean a recorded decision outlived a table mutation.
        """
        if not self.caches:
            return []
        violations: List[str] = []
        self.sweep()
        residual = self.sweep()
        if residual:
            violations.append(
                f"flowcache: verify_entries left {residual} stale entries "
                "after a full sweep"
            )
        if churned:
            totals = self.totals()
            if totals["hits"] > 0 and totals["invalidations"] == 0:
                violations.append(
                    f"flowcache: {totals['hits']} hits but zero invalidations "
                    "under control-plane churn (stale entries survived)"
                )
        return violations
