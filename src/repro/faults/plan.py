"""Declarative, seed-replayable fault plans.

A :class:`FaultPlan` is a named tuple of :class:`FaultSpec` entries —
pure data, no simulator references — that the
:class:`~repro.faults.injector.FaultInjector` compiles into timed
kernel events against a concrete scenario.  Specs place themselves with
*fractional windows* (``start_frac``/``end_frac`` of the scenario
duration), so one plan stresses every application regardless of how
long each scenario runs.

Fault kinds (all deterministic given the injector's seed):

``link_flap``
    ``flaps`` down/up cycles of a link inside the window, with a small
    seeded jitter on each cycle's start so seed sweeps explore
    different interleavings against in-flight packets.
``link_degrade``
    Attach a seeded :class:`~repro.faults.injector.Degradation` to a
    link for the window: per-packet loss, CRC corruption, and uniform
    delay jitter.
``switch_stall``
    Freeze a switch (ingress drops, timers suppressed) for the window;
    queued packets keep draining.
``switch_crash``
    Snapshot every :class:`~repro.state.store.StateStore` the switch
    owns at ``checkpoint_frac``, stall at ``start_frac``, then restore
    the snapshot (and clear the flow cache) at ``end_frac`` — the PR-3
    checkpoint machinery driven as a fault.
``control_churn``
    ``updates`` control-plane storms spread over the window, each
    reinstalling every forwarding program's routes *with identical
    values* through :meth:`~repro.control.plane.ControlPlane.update_table`
    — zero behavioral delta, but every route generation bumps, so the
    flow cache must invalidate and never stale-hit.
``buffer_burst``
    Pause one egress port for the window so queues build, forcing
    enqueue and (with small buffers) overflow events, then release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Every fault kind a spec may name.
FAULT_KINDS = (
    "link_flap",
    "link_degrade",
    "switch_stall",
    "switch_crash",
    "control_churn",
    "buffer_burst",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault, placed by fractional window inside a scenario."""

    kind: str
    target: str = ""  # link "a-b" / switch name; "" = scenario default
    start_frac: float = 0.25
    end_frac: float = 0.7
    flaps: int = 1  # link_flap: down/up cycles in the window
    loss: float = 0.0  # link_degrade: per-packet drop probability
    corrupt: float = 0.0  # link_degrade: per-packet corruption probability
    jitter_ps: int = 0  # link_degrade: max extra per-packet delay
    updates: int = 6  # control_churn: storms across the window
    checkpoint_frac: Optional[float] = None  # switch_crash: snapshot instant

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise ValueError(
                f"need 0 <= start_frac < end_frac <= 1, got "
                f"[{self.start_frac}, {self.end_frac}]"
            )
        if not 0.0 <= self.loss <= 1.0 or not 0.0 <= self.corrupt <= 1.0:
            raise ValueError("loss and corrupt must be probabilities in [0, 1]")
        if self.loss + self.corrupt > 1.0:
            raise ValueError("loss + corrupt must not exceed 1")
        if self.jitter_ps < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter_ps}")
        if self.flaps < 1:
            raise ValueError(f"need at least one flap, got {self.flaps}")
        if self.updates < 1:
            raise ValueError(f"need at least one update, got {self.updates}")
        if self.checkpoint_frac is not None and not (
            0.0 <= self.checkpoint_frac < self.start_frac
        ):
            raise ValueError("checkpoint_frac must precede start_frac")

    def window_ps(self, duration_ps: int) -> Tuple[int, int]:
        """The absolute ``(start_ps, end_ps)`` window inside a run."""
        return (
            int(duration_ps * self.start_frac),
            int(duration_ps * self.end_frac),
        )

    def checkpoint_ps(self, duration_ps: int) -> int:
        """switch_crash: when to snapshot (defaults to half of start)."""
        frac = (
            self.checkpoint_frac
            if self.checkpoint_frac is not None
            else self.start_frac / 2
        )
        return int(duration_ps * frac)


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered bundle of fault specs."""

    name: str
    description: str
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError(f"plan {self.name!r} has no fault specs")

    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds this plan injects, sorted."""
        return tuple(sorted({spec.kind for spec in self.specs}))


#: The built-in plan catalog the chaos grid runs.
BUILTIN_PLANS: Dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(
            "linkflap",
            "three seeded down/up cycles of the primary link",
            (FaultSpec("link_flap", flaps=3, start_frac=0.25, end_frac=0.7),),
        ),
        FaultPlan(
            "linkdegrade",
            "lossy, corrupting, jittery primary link for mid-run",
            (
                FaultSpec(
                    "link_degrade",
                    loss=0.08,
                    corrupt=0.04,
                    jitter_ps=400_000,
                    start_frac=0.2,
                    end_frac=0.75,
                ),
            ),
        ),
        FaultPlan(
            "stall",
            "freeze the default switch for a fifth of the run",
            (FaultSpec("switch_stall", start_frac=0.35, end_frac=0.55),),
        ),
        FaultPlan(
            "crash",
            "checkpoint, crash, and state-restore the default switch",
            (FaultSpec("switch_crash", start_frac=0.35, end_frac=0.6),),
        ),
        FaultPlan(
            "churn",
            "control-plane storms reinstalling identical routes",
            (FaultSpec("control_churn", updates=6, start_frac=0.25, end_frac=0.7),),
        ),
        FaultPlan(
            "burst",
            "pause the sink-side egress port to build buffer pressure",
            (FaultSpec("buffer_burst", start_frac=0.3, end_frac=0.5),),
        ),
        FaultPlan(
            "storm",
            "composed flap + churn + buffer pressure",
            (
                FaultSpec("link_flap", flaps=2, start_frac=0.2, end_frac=0.4),
                FaultSpec("control_churn", updates=4, start_frac=0.3, end_frac=0.6),
                FaultSpec("buffer_burst", start_frac=0.5, end_frac=0.65),
            ),
        ),
    )
}


def get_plan(name: str) -> FaultPlan:
    """Look up a built-in plan by name."""
    try:
        return BUILTIN_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; pick from {sorted(BUILTIN_PLANS)}"
        ) from None
