"""Seeded, deterministic fault injection (the robustness layer).

The paper's event catalog exists because data planes must *react to
failure*; this package turns that from untested code paths into
continuously verified behavior:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` /
  :class:`FaultSpec` (link flap/degrade, switch stall/crash-restore,
  control-plane churn, buffer bursts) placed by fractional windows,
* :mod:`repro.faults.injector` — compiles a plan against a scenario
  into timed kernel events, seeded by :class:`~repro.sim.rng.SeededRng`,
* :mod:`repro.faults.monitors` — invariant monitors: exact per-link
  packet conservation, reconvergence measurement, flow-cache coherence
  under churn,
* :mod:`repro.faults.scenarios` — compact builds of the FRR, liveness,
  HULA, and state-migration applications with uniform fault targets,
* :mod:`repro.faults.chaos` — the plan x app x seed grid behind the
  ``repro chaos`` CLI subcommand, emitting a byte-stable JSONL verdict
  report.

See ``docs/ROBUSTNESS.md`` for the schema, the monitor catalog, and
seed-replay recipes.
"""

from __future__ import annotations

from repro.faults.injector import Degradation, FaultInjector
from repro.faults.monitors import (
    FlowCacheCoherenceMonitor,
    PacketConservationMonitor,
    ReconvergenceMonitor,
)
from repro.faults.plan import BUILTIN_PLANS, FaultPlan, FaultSpec, get_plan
from repro.faults.scenarios import SCENARIOS, Scenario, build_scenario

__all__ = [
    "BUILTIN_PLANS",
    "Degradation",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FlowCacheCoherenceMonitor",
    "PacketConservationMonitor",
    "ReconvergenceMonitor",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "get_plan",
]
