"""The chaos grid: plan x app x seed, with verdicts.

Each grid cell runs its scenario **twice** — flow cache on, then off —
with the same seed; the two behavior fingerprints must match exactly
(the cache may only elide work, never change behavior, even mid-fault).
With ``compile_arm`` a **third** arm runs the compiled pipelines
(:mod:`repro.pisa.compile`) against an interpreter-pinned cache-off
reference, extending the same exactness contract to compiled walks.
With ``fastpath_arm`` another arm runs the flow fastpath
(:mod:`repro.pisa.fastpath`) against a fastpath-pinned-off cache-on
reference: fused multi-hop deliveries — including windows a fault
interrupts mid-flight, which disruption-time materialization hands
back to the per-hop machinery — must fingerprint identically.
The cache-on run carries the invariant monitors; the resulting verdict
record is one JSON object with sorted keys, so the JSONL report is
byte-identical across replays of the same grid and seed.

Exit-code contract (``repro chaos``): nonzero iff any record carries a
violation.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.monitors import (
    FlowCacheCoherenceMonitor,
    PacketConservationMonitor,
    ReconvergenceMonitor,
)
from repro.faults.plan import BUILTIN_PLANS, get_plan
from repro.faults.scenarios import SCENARIOS, Scenario, build_scenario
from repro.obs.faultlog import FaultLog
from repro.sim.rng import SeededRng

#: Grid axes in their canonical (reported) order.
PLAN_NAMES: Tuple[str, ...] = tuple(sorted(BUILTIN_PLANS))
APP_NAMES: Tuple[str, ...] = tuple(sorted(SCENARIOS))


def fork_scenario(scenario: Scenario) -> Scenario:
    """An independent copy of a freshly built scenario.

    :meth:`Simulator.fork` deep-copies the kernel and the scenario graph
    in one pickle pass, so the copy's probes, generators, and pending
    events all point into the copy.  Forking once per grid cell turns
    the O(build x plans) chaos grid into O(build + plans x fork): each
    (app, seed, arm) is built once and every fault plan runs against its
    own fork.
    """
    _sim, forked = scenario.network.sim.fork(state=scenario)
    return forked


def run_instance_on(scenario: Scenario, plan_name: str, seed: int) -> Dict[str, object]:
    """One monitored run of an already-built (possibly forked) scenario.

    The injector, rng, and monitors are created *here*, after any fork
    point, in the exact order the standalone path creates them — so a
    forked cell schedules the same events with the same seqnos and its
    fingerprint is byte-identical to a from-scratch build.
    """
    plan = get_plan(plan_name)
    rng = SeededRng(seed, f"chaos/{plan_name}/{scenario.name}")
    log = FaultLog()
    injector = FaultInjector(scenario, plan, rng, log=log)
    conservation = PacketConservationMonitor(scenario.network)
    reconvergence = ReconvergenceMonitor(scenario.network.sim, scenario.sink)
    coherence = FlowCacheCoherenceMonitor(scenario.caches())

    injector.arm()
    scenario.network.run(until_ps=scenario.duration_ps)
    # Settle fused in-flight windows at the cutoff: materialization
    # retro-applies exactly the hops in the virtual past, so counters
    # reflect the same partial progress the per-hop arms show.
    for _name, switch in sorted(scenario.network.switches.items()):
        disrupt = getattr(switch, "fastpath_disrupt", None)
        if disrupt is not None:
            disrupt()

    violations: List[str] = []
    violations.extend(conservation.check())
    churned = "control_churn" in plan.kinds()
    violations.extend(coherence.check(churned))

    return {
        "violations": violations,
        "fastpath": scenario.fastpath_totals(),
        "fingerprint": scenario.fingerprint(reconvergence.arrivals),
        "delivered": len(reconvergence.arrivals),
        "faults": log.count(),
        "fault_kinds": log.kinds(),
        "last_fault_ps": log.last_time_ps(),
        "reconvergence_ps": reconvergence.reconvergence_ps(log.last_time_ps()),
        "max_gap_ps": reconvergence.max_gap_ps(),
        "cache": coherence.totals(),
        "conservation": conservation.totals(),
        "control_ops": scenario.control.operations_completed,
        "table_updates": scenario.control.table_updates,
    }


def run_instance(
    plan_name: str,
    app_name: str,
    seed: int,
    flow_cache: bool,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Dict[str, object]:
    """Build one scenario from scratch and run it monitored."""
    scenario = build_scenario(
        app_name, seed, flow_cache=flow_cache, compile=compile, fastpath=fastpath
    )
    return run_instance_on(scenario, plan_name, seed)


def _divergence(label: str, a: Dict[str, object], b: Dict[str, object]) -> List[str]:
    """One violation naming the fingerprint keys two arms disagree on."""
    fp_a, fp_b = a["fingerprint"], b["fingerprint"]
    if fp_a == fp_b:
        return []
    diverged = sorted(
        key for key in set(fp_a) | set(fp_b) if fp_a.get(key) != fp_b.get(key)
    )
    return [f"{label}-divergence: runs disagree on " + ", ".join(diverged)]


def _cell_record(
    plan_name: str,
    app_name: str,
    seed: int,
    on: Dict[str, object],
    off: Dict[str, object],
    compiled: Optional[Dict[str, object]] = None,
    fastpath: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble one verdict record from its per-arm instance results.

    Shared by the from-scratch (:func:`run_cell`) and fork-amortized
    (:func:`run_forked_cells`) paths, so both produce byte-identical
    records for the same cell.
    """
    violations = list(on["violations"])
    violations.extend(f"cache-off:{message}" for message in off["violations"])
    violations.extend(_divergence("flowcache", on, off))
    arms = 2
    if compiled is not None:
        violations.extend(f"compiled:{message}" for message in compiled["violations"])
        violations.extend(_divergence("compile", compiled, off))
        arms = 3
    if fastpath is not None:
        violations.extend(f"fastpath:{message}" for message in fastpath["violations"])
        violations.extend(_divergence("fastpath", fastpath, on))
        arms += 1

    fingerprint_crc = zlib.crc32(repr(sorted(on["fingerprint"].items())).encode())
    return {
        "plan": plan_name,
        "app": app_name,
        "seed": seed,
        "arms": arms,
        "ok": not violations,
        "violations": violations,
        "delivered": on["delivered"],
        "faults": on["faults"],
        "fault_kinds": on["fault_kinds"],
        "reconvergence_ps": on["reconvergence_ps"],
        "max_gap_ps": on["max_gap_ps"],
        "fingerprint": f"{fingerprint_crc:08x}",
        "cache": on["cache"],
        "conservation": on["conservation"],
        "table_updates": on["table_updates"],
        "fastpath": (fastpath if fastpath is not None else on)["fastpath"],
    }


def run_cell(
    plan_name: str,
    app_name: str,
    seed: int,
    compile_arm: bool = False,
    fastpath_arm: bool = False,
) -> Dict[str, object]:
    """One verdict record: cache-on vs cache-off, plus optional arms.

    With ``compile_arm`` the cache-off run is pinned to the interpreter
    (the reference path) and a third arm runs compiled with the cache
    off; its fingerprint must match the interpreted reference exactly
    (``compile-divergence`` otherwise), covering compiled execution with
    the same invariant monitors.

    With ``fastpath_arm`` the cache-on run pins the flow fastpath off
    (the per-hop reference) and another arm runs with the fastpath on;
    any mismatch — including one caused by a fault interrupting a fused
    window — is a ``fastpath-divergence`` violation.
    """
    on = run_instance(
        plan_name,
        app_name,
        seed,
        flow_cache=True,
        fastpath=False if fastpath_arm else None,
    )
    off = run_instance(
        plan_name,
        app_name,
        seed,
        flow_cache=False,
        compile=False if compile_arm else None,
    )
    compiled = (
        run_instance(plan_name, app_name, seed, flow_cache=False, compile=True)
        if compile_arm
        else None
    )
    fastpath = (
        run_instance(plan_name, app_name, seed, flow_cache=True, fastpath=True)
        if fastpath_arm
        else None
    )
    return _cell_record(plan_name, app_name, seed, on, off, compiled, fastpath)


def run_forked_cells(
    plans: Sequence[str],
    apps: Sequence[str],
    seeds: Iterable[int],
    compile_arm: bool = False,
    fastpath_arm: bool = False,
) -> List[Dict[str, object]]:
    """The grid with builds amortized by :func:`fork_scenario`.

    Each (app, seed, arm) scenario is built **once** at t=0 and forked
    per fault plan, so the per-cell cost is a pickle round-trip rather
    than a topology build.  Because the injector and monitors are
    created post-fork in the standalone order (see
    :func:`run_instance_on`), each cell's record — fingerprint included
    — is byte-identical to :func:`run_cell` for the same cell.

    Records come back in :func:`run_grid` order (plan, app, seed) so the
    two paths emit interchangeable JSONL.
    """
    by_cell: Dict[Tuple[str, str, int], Dict[str, object]] = {}
    seed_list = list(seeds)
    for app_name in apps:
        for seed in seed_list:
            base_on = build_scenario(
                app_name,
                seed,
                flow_cache=True,
                fastpath=False if fastpath_arm else None,
            )
            base_off = build_scenario(
                app_name,
                seed,
                flow_cache=False,
                compile=False if compile_arm else None,
            )
            base_compiled = (
                build_scenario(app_name, seed, flow_cache=False, compile=True)
                if compile_arm
                else None
            )
            base_fast = (
                build_scenario(app_name, seed, flow_cache=True, fastpath=True)
                if fastpath_arm
                else None
            )
            for plan_name in plans:
                on = run_instance_on(fork_scenario(base_on), plan_name, seed)
                off = run_instance_on(fork_scenario(base_off), plan_name, seed)
                compiled = (
                    run_instance_on(fork_scenario(base_compiled), plan_name, seed)
                    if compile_arm
                    else None
                )
                fastpath = (
                    run_instance_on(fork_scenario(base_fast), plan_name, seed)
                    if fastpath_arm
                    else None
                )
                by_cell[(plan_name, app_name, seed)] = _cell_record(
                    plan_name, app_name, seed, on, off, compiled, fastpath
                )
    return [
        by_cell[(plan_name, app_name, seed)]
        for plan_name in plans
        for app_name in apps
        for seed in seed_list
    ]


def run_grid(
    plans: Sequence[str],
    apps: Sequence[str],
    seeds: Iterable[int],
    out_path: Optional[str] = None,
    compile_arm: bool = False,
    forked: bool = False,
    fastpath_arm: bool = False,
) -> List[Dict[str, object]]:
    """Run every (plan, app, seed) cell; optionally stream JSONL to disk.

    ``forked`` switches to the fork-amortized path — one build per
    (app, seed, arm), one :meth:`Simulator.fork` per cell — with
    identical records.
    """
    records: List[Dict[str, object]] = []
    out = open(out_path, "w", encoding="utf-8") if out_path else None
    try:
        if forked:
            records.extend(
                run_forked_cells(
                    plans, apps, seeds, compile_arm=compile_arm,
                    fastpath_arm=fastpath_arm,
                )
            )
            if out is not None:
                for record in records:
                    out.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            for plan_name in plans:
                for app_name in apps:
                    for seed in seeds:
                        record = run_cell(
                            plan_name,
                            app_name,
                            seed,
                            compile_arm=compile_arm,
                            fastpath_arm=fastpath_arm,
                        )
                        records.append(record)
                        if out is not None:
                            out.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if out is not None:
            out.close()
    return records


def violation_count(records: List[Dict[str, object]]) -> int:
    """Total violations across a grid's verdict records."""
    return sum(len(record["violations"]) for record in records)


def summary_rows(records: List[Dict[str, object]]) -> List[str]:
    """Printable per-(plan, app) summary of a grid run."""
    rows = [
        f"{'plan':<12}{'app':<11}{'cells':>6}{'viol':>6}{'delivered':>11}"
        f"{'faults':>8}{'hits':>8}{'inval':>7}"
    ]
    by_pair: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    for record in records:
        by_pair.setdefault((str(record["plan"]), str(record["app"])), []).append(record)
    for (plan_name, app_name), cell_records in sorted(by_pair.items()):
        violations = sum(len(r["violations"]) for r in cell_records)
        delivered = sum(int(r["delivered"]) for r in cell_records)
        faults = sum(int(r["faults"]) for r in cell_records)
        hits = sum(int(r["cache"]["hits"]) for r in cell_records)
        invalidations = sum(int(r["cache"]["invalidations"]) for r in cell_records)
        rows.append(
            f"{plan_name:<12}{app_name:<11}{len(cell_records):>6}{violations:>6}"
            f"{delivered:>11}{faults:>8}{hits:>8}{invalidations:>7}"
        )
    total_violations = violation_count(records)
    rows.append(
        f"{len(records)} cell(s), {total_violations} violation(s)"
        + ("" if total_violations else " — all invariants held")
    )
    return rows


def run_forked_grid(
    plans: Sequence[str] = ("burst", "crash", "linkflap", "stall", "storm"),
    apps: Sequence[str] = ("frr", "migration"),
    seeds: Sequence[int] = (1,),
    compile_arm: bool = False,
    fastpath_arm: bool = False,
) -> Dict[str, object]:
    """The fork-amortized grid as a registered scenario runner.

    The default knobs give the ten-variant grid (5 plans x 2 apps x 1
    seed) whose fingerprints must match standalone ``repro chaos`` runs
    of the same cells.  Returns a JSON-able record: summary rows, the
    violation total, and the per-cell fingerprints.
    """
    records = run_forked_cells(
        list(plans), list(apps), list(seeds), compile_arm=compile_arm,
        fastpath_arm=fastpath_arm,
    )
    return {
        "summary": summary_rows(records),
        "violations": violation_count(records),
        "fingerprints": {
            f"{r['plan']}/{r['app']}/{r['seed']}": r["fingerprint"] for r in records
        },
    }


def _register_scenarios() -> None:
    from repro.scenarios import ScenarioSpec, register

    for app in APP_NAMES:
        register(
            ScenarioSpec(
                name=f"chaos/{app}",
                runner="repro.faults.chaos:run_cell",
                params={
                    "plan_name": "linkflap",
                    "app_name": app,
                    "seed": 1,
                    "compile_arm": False,
                    "fastpath_arm": False,
                },
                app=app,
                fault_plan="linkflap",
                seed=1,
                tags=("chaos",),
                summary=f"One chaos cell: {app} under a fault plan, "
                "cache-on vs cache-off arms",
            )
        )
    register(
        ScenarioSpec(
            name="chaos/forked-grid",
            runner="repro.faults.chaos:run_forked_grid",
            params={
                "plans": ["burst", "crash", "linkflap", "stall", "storm"],
                "apps": ["frr", "migration"],
                "seeds": [1],
                "compile_arm": False,
                "fastpath_arm": False,
            },
            seed=1,
            tags=("chaos", "forked"),
            summary="Ten-cell chaos grid amortized by Simulator.fork "
            "(one build per app/arm, one fork per cell)",
        )
    )


_register_scenarios()
