"""Chaos scenarios: small, fast builds of the paper's failure apps.

Each builder wires one Table-2 failure-handling application — fast
re-route, data-plane liveness, HULA load balancing, swing-state
migration — into a compact topology with a deterministic traffic
source, and returns a :class:`Scenario`: the uniform handle the
:class:`~repro.faults.injector.FaultInjector` and the invariant
monitors work against.  Scenarios are sized for grid runs (a few
milliseconds of simulated time, ~100–200 packets), not for paper
numbers; the experiment modules under :mod:`repro.experiments` remain
the source of those.

A scenario names its *defaults*: which link a flap/degrade hits, which
switch a stall/crash hits, and which egress port a buffer burst pauses
— so one :class:`~repro.faults.plan.FaultPlan` applies to every app.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.frr import FastRerouteProgram, StaticRouteProgram
from repro.apps.hula import HulaLeafProgram, HulaSpineProgram
from repro.apps.liveness import LivenessMonitor
from repro.apps.state_migration import BudgetTransitProgram, SwingStateHeadProgram
from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.experiments.frr_exp import H0_IP, H1_IP, _build_diamond
from repro.net.host import Host
from repro.net.link import Link
from repro.net.network import Network
from repro.net.topology import build_leaf_spine, build_linear
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.cbr import ConstantBitRate

MONITOR_IP = 0x0A00_00FE


class LenProbe:
    """``len(getattr(obj, attr))`` as a picklable callable.

    Probes ride inside the scenario when it is checkpointed or forked
    (:meth:`Simulator.fork`), so they must pickle — and because pickle
    preserves object identity within one graph, a forked probe observes
    the *forked* program, never the original.  Lambdas would refuse to
    pickle and silently pin the scenario to one process.
    """

    def __init__(self, obj: object, attr: str) -> None:
        self.obj = obj
        self.attr = attr

    def __call__(self) -> int:
        return len(getattr(self.obj, self.attr))


class AttrProbe:
    """``int(getattr(obj, attr, default))`` as a picklable callable."""

    def __init__(self, obj: object, attr: str, default: int = 0) -> None:
        self.obj = obj
        self.attr = attr
        self.default = default

    def __call__(self) -> int:
        return int(getattr(self.obj, self.attr, self.default))

#: Control path used for churn storms: fast enough that every storm's
#: mutations land inside the fault window of a few-millisecond run.
CHAOS_CONTROL = ControlPlaneConfig(
    rtt_ps=20 * MICROSECONDS, per_entry_write_ps=1 * MICROSECONDS
)


@dataclass
class Scenario:
    """One app wired for fault injection, with its fault defaults."""

    name: str
    network: Network
    duration_ps: int
    sink: Host
    default_link: Tuple[str, str]
    default_switch: str
    burst: Tuple[str, int]
    control: ControlPlane
    churn_targets: List[Tuple[str, object]] = field(default_factory=list)
    probes: Dict[str, Callable[[], int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Target resolution (injector-facing)
    # ------------------------------------------------------------------
    def resolve_link(self, target: str) -> Link:
        """A link by ``"a-b"`` endpoint names ('' = scenario default)."""
        if target:
            name_a, name_b = target.split("-", 1)
        else:
            name_a, name_b = self.default_link
        link = self.network.link_between(name_a, name_b)
        if link is None:
            raise ValueError(f"{self.name}: no link between {name_a!r} and {name_b!r}")
        return link

    def resolve_switch(self, target: str):
        """A switch by name ('' = scenario default)."""
        name = target or self.default_switch
        try:
            return self.network.switches[name]
        except KeyError:
            raise ValueError(f"{self.name}: no switch named {name!r}") from None

    def caches(self) -> List[object]:
        """Every active flow cache in the scenario, in stable order."""
        return [
            switch.flow_cache
            for _name, switch in sorted(self.network.switches.items())
            if switch.flow_cache is not None
        ]

    def fastpath_totals(self) -> Dict[str, int]:
        """Flow-fastpath counters summed across the scenario's switches."""
        totals = {
            "paths_built": 0,
            "fused": 0,
            "materialized": 0,
            "fallbacks": 0,
            "invalidations": 0,
        }
        for _name, switch in sorted(self.network.switches.items()):
            fastpath = getattr(switch, "flow_fastpath", None)
            if fastpath is None:
                continue
            stats = fastpath.stats
            totals["paths_built"] += stats.paths_built
            totals["fused"] += stats.fused
            totals["materialized"] += stats.materialized
            totals["fallbacks"] += stats.fallbacks_total
            totals["invalidations"] += stats.invalidations
        return totals

    # ------------------------------------------------------------------
    # Behavior fingerprint
    # ------------------------------------------------------------------
    def fingerprint(self, arrivals: List[int]) -> Dict[str, int]:
        """Deterministic ints summarizing packet-visible behavior.

        Built only from state the flow cache is required to preserve
        (arrival times, per-switch rx/drop counters, event-handler
        outcomes) — so a cache-on vs cache-off mismatch is a coherence
        violation, not fingerprint noise.
        """
        switch_state = tuple(
            (
                name,
                switch.rx_packets,
                switch.tm.drops_overflow,
                switch.stalled_rx_drops,
                switch.stalled_timer_misses,
            )
            for name, switch in sorted(self.network.switches.items())
        )
        data: Dict[str, int] = {
            "delivered": len(arrivals),
            "arrivals_crc": zlib.crc32(repr(tuple(arrivals)).encode()),
            "switches_crc": zlib.crc32(repr(switch_state).encode()),
        }
        for key in sorted(self.probes):
            data[f"probe_{key}"] = int(self.probes[key]())
        return data


def _churn_targets(network: Network) -> List[Tuple[str, object]]:
    """Every loaded program with a route table, in stable order."""
    return [
        (name, switch.program)
        for name, switch in sorted(network.switches.items())
        if getattr(switch.program, "routes", None) is not None
    ]


# ----------------------------------------------------------------------
# Builders (one per Table-2 failure-handling application)
# ----------------------------------------------------------------------
def build_frr(
    seed: int,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Scenario:
    """Fast re-route on the diamond: LINK_STATUS flips to backups."""
    network = _build_diamond(
        make_sume_switch(
            queue_capacity_bytes=16 * 1024,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )
    )
    head = FastRerouteProgram()
    head.install_protected_route(H1_IP, primary=1, backup=2)
    head.install_route(H0_IP, 0)
    network.switches["s0"].load_program(head)
    for name, routes in (
        ("s1", {H1_IP: 1, H0_IP: 0}),
        ("s2", {H1_IP: 1, H0_IP: 0}),
        ("s3", {H1_IP: 0, H0_IP: 1}),
    ):
        program = FastRerouteProgram()
        program.install_routes(routes)
        network.switches[name].load_program(program)

    flow = FlowSpec(H0_IP, H1_IP, sport=5_000, dport=6_000)
    generator = ConstantBitRate(
        network.sim,
        network.hosts["h0"].send,
        flow,
        rate_gbps=0.3,
        payload_len=1000,
        name="chaos-frr",
    )
    generator.start(at_ps=200 * MICROSECONDS)

    return Scenario(
        name="frr",
        network=network,
        duration_ps=4 * MILLISECONDS,
        sink=network.hosts["h1"],
        default_link=("s0", "s1"),
        default_switch="s0",
        burst=("s3", 0),
        control=ControlPlane(network.sim, CHAOS_CONTROL, name="chaos-control"),
        churn_targets=_churn_targets(network),
        probes={
            "failovers": LenProbe(head, "failovers"),
            "reverts": LenProbe(head, "reverts"),
        },
    )


def build_liveness(
    seed: int,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Scenario:
    """Data-plane liveness probing across the link the faults target."""
    network = Network()
    factory = make_sume_switch(
            queue_capacity_bytes=16 * 1024,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )
    s0 = network.add_switch(factory(network.sim, "s0", 3))
    s1 = network.add_switch(factory(network.sim, "s1", 2))
    monitor = network.add_host(Host(network.sim, "monitor", MONITOR_IP))
    h0 = network.add_host(Host(network.sim, "h0", H0_IP))
    h1 = network.add_host(Host(network.sim, "h1", H1_IP))
    network.connect(s0, 0, s1, 0, latency_ps=500_000)
    network.connect(s0, 1, monitor, 0, latency_ps=500_000)
    network.connect(s0, 2, h0, 0, latency_ps=500_000)
    network.connect(s1, 1, h1, 0, latency_ps=500_000)

    prog0 = LivenessMonitor(
        switch_id=0,
        neighbor_ports=[0],
        period_ps=50 * MICROSECONDS,
        misses_allowed=3,
        monitor_port=1,
    )
    prog0.install_routes({H1_IP: 0, H0_IP: 2})
    prog1 = LivenessMonitor(
        switch_id=1,
        neighbor_ports=[0],
        period_ps=50 * MICROSECONDS,
        misses_allowed=3,
        monitor_port=None,
    )
    prog1.install_routes({H1_IP: 1, H0_IP: 0})
    s0.load_program(prog0)
    s1.load_program(prog1)

    flow = FlowSpec(H0_IP, H1_IP, sport=7_000, dport=8_000)
    generator = ConstantBitRate(
        network.sim,
        h0.send,
        flow,
        rate_gbps=0.2,
        payload_len=1000,
        name="chaos-liveness",
    )
    generator.start(at_ps=200 * MICROSECONDS)

    return Scenario(
        name="liveness",
        network=network,
        duration_ps=4 * MILLISECONDS,
        sink=h1,
        default_link=("s0", "s1"),
        default_switch="s1",
        burst=("s1", 1),
        control=ControlPlane(network.sim, CHAOS_CONTROL, name="chaos-control"),
        churn_targets=_churn_targets(network),
        probes={
            "detections": LenProbe(prog0, "failures"),
            "recoveries": LenProbe(prog0, "recoveries"),
            "peer_detections": LenProbe(prog1, "failures"),
        },
    )


def build_hula(
    seed: int,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Scenario:
    """HULA probes and flowlets on a 2x2 leaf-spine fabric."""
    fabric = build_leaf_spine(
        make_sume_switch(
            queue_capacity_bytes=32 * 1024,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        ),
        leaf_count=2,
        spine_count=2,
        hosts_per_leaf=1,
    )
    network = fabric.network
    leaf_programs = {}
    for leaf_index, leaf in enumerate(fabric.leaves):
        program = HulaLeafProgram(
            tor_id=leaf_index,
            uplink_ports=fabric.uplink_ports[leaf.name],
            tor_count=2,
            probe_period_ps=100 * MICROSECONDS,
            flowlet_gap_ps=300 * MICROSECONDS,
        )
        base = fabric.host_port_base[leaf.name]
        for host_index, host in enumerate(fabric.hosts[leaf.name]):
            program.install_route(host.ip, base + host_index)
        other = fabric.leaves[1 - leaf_index]
        for host in fabric.hosts[other.name]:
            program.install_remote(host.ip, 1 - leaf_index)
        leaf.load_program(program)
        leaf_programs[leaf.name] = program
    for spine in fabric.spines:
        spine_program = HulaSpineProgram(
            leaf_ports=fabric.downlink_ports[spine.name],
            decay_period_ps=100 * MICROSECONDS,
        )
        for leaf_index, leaf in enumerate(fabric.leaves):
            for host in fabric.hosts[leaf.name]:
                spine_program.install_route(host.ip, leaf_index)
        spine.load_program(spine_program)

    src = fabric.hosts["leaf0"][0]
    dst = fabric.hosts["leaf1"][0]
    flow = FlowSpec(src.ip, dst.ip, sport=21_000, dport=9_000)
    generator = ConstantBitRate(
        network.sim,
        src.send,
        flow,
        rate_gbps=0.5,
        payload_len=1000,
        name="chaos-hula",
    )
    generator.start(at_ps=200 * MICROSECONDS)

    leaf0 = leaf_programs["leaf0"]
    return Scenario(
        name="hula",
        network=network,
        duration_ps=3 * MILLISECONDS,
        sink=dst,
        default_link=("leaf0", "spine0"),
        default_switch="leaf0",
        burst=("leaf1", fabric.host_port_base["leaf1"]),
        control=ControlPlane(network.sim, CHAOS_CONTROL, name="chaos-control"),
        churn_targets=_churn_targets(network),
        probes={
            "path_switches": AttrProbe(leaf0, "path_switches"),
            "probes_sent": AttrProbe(leaf0, "probes_sent"),
        },
    )


def build_migration(
    seed: int,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Scenario:
    """Swing-state budget migration on the diamond."""
    network = _build_diamond(
        make_sume_switch(
            queue_capacity_bytes=16 * 1024,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        )
    )
    head = SwingStateHeadProgram(migrate=True)
    head.install_protected_route(H1_IP, primary=1, backup=2)
    head.install_route(H0_IP, 0)
    network.switches["s0"].load_program(head)
    transits = {}
    for name in ("s1", "s2"):
        transit = BudgetTransitProgram(budget_bytes=60_000)
        transit.install_routes({H1_IP: 1, H0_IP: 0})
        network.switches[name].load_program(transit)
        transits[name] = transit
    tail = StaticRouteProgram()
    tail.install_routes({H1_IP: 0, H0_IP: 1})
    network.switches["s3"].load_program(tail)

    flow = FlowSpec(H0_IP, H1_IP, sport=777, dport=888)
    generator = ConstantBitRate(
        network.sim,
        network.hosts["h0"].send,
        flow,
        rate_gbps=0.2,
        payload_len=958,
        name="chaos-migration",
    )
    generator.start(at_ps=200 * MICROSECONDS)

    return Scenario(
        name="migration",
        network=network,
        duration_ps=5 * MILLISECONDS,
        sink=network.hosts["h1"],
        default_link=("s0", "s1"),
        default_switch="s1",
        burst=("s3", 0),
        control=ControlPlane(network.sim, CHAOS_CONTROL, name="chaos-control"),
        churn_targets=_churn_targets(network),
        probes={
            "transfers_sent": AttrProbe(head, "transfers_sent"),
            "transfers_received": AttrProbe(transits["s2"], "transfers_received"),
        },
    )


def build_l3chain(
    seed: int,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Scenario:
    """Static routing on a baseline-PSA chain: the fastpath's home turf.

    The other chaos apps run SUME event switches, whose receive path
    never fuses; this scenario is the one whose cells actually exercise
    end-to-end fusion — and, under every fault plan, disruption-time
    materialization.  The CBR pacing keeps the inter-packet gap well
    above the fused window so steady-state traffic fuses hop-for-hop,
    and the burst target pauses an **on-path** egress port: a fused
    window interrupted by the pause must materialize and queue exactly
    like the per-hop reference.
    """
    network = build_linear(
        make_baseline_switch(
            queue_capacity_bytes=16 * 1024,
            flow_cache=flow_cache,
            compile=compile,
            fastpath=fastpath,
        ),
        switch_count=3,
    )
    for name in sorted(network.switches):
        program = StaticRouteProgram()
        program.install_routes({H1_IP: 1, H0_IP: 0})
        network.switches[name].load_program(program)

    flow = FlowSpec(H0_IP, H1_IP, sport=4_000, dport=4_001)
    generator = ConstantBitRate(
        network.sim,
        network.hosts["h0"].send,
        flow,
        rate_gbps=0.25,
        payload_len=200,
        name="chaos-l3chain",
    )
    generator.start(at_ps=200 * MICROSECONDS)

    return Scenario(
        name="l3chain",
        network=network,
        duration_ps=4 * MILLISECONDS,
        sink=network.hosts["h1"],
        default_link=("s1", "s2"),
        default_switch="s1",
        burst=("s1", 1),
        control=ControlPlane(network.sim, CHAOS_CONTROL, name="chaos-control"),
        churn_targets=_churn_targets(network),
        probes={
            "s0_updates": AttrProbe(network.switches["s0"].program, "control_updates"),
            "routed": LenProbe(network.switches["s2"].program, "routes"),
        },
    )


#: The app grid the chaos harness iterates.
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "frr": build_frr,
    "hula": build_hula,
    "l3chain": build_l3chain,
    "liveness": build_liveness,
    "migration": build_migration,
}


def build_scenario(
    app: str,
    seed: int,
    flow_cache: Optional[bool] = None,
    compile: Optional[bool] = None,
    fastpath: Optional[bool] = None,
) -> Scenario:
    """Build one app scenario by name."""
    try:
        builder = SCENARIOS[app]
    except KeyError:
        choices = sorted(SCENARIOS)
        raise ValueError(f"unknown chaos app {app!r}; pick from {choices}") from None
    return builder(seed, flow_cache=flow_cache, compile=compile, fastpath=fastpath)
