"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of scheduled callbacks keyed
by (time, priority, sequence-number).  The sequence number makes the
ordering of same-time, same-priority events deterministic: they run in
the order they were scheduled.  All components of the reproduction — the
PISA pipelines, traffic managers, timer units, links, and hosts — share
one simulator, so a whole multi-switch network advances on a single
totally-ordered virtual clock.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Holding a reference to the returned object lets the scheduler cancel
    it later; cancellation is O(1) (the heap entry is tombstoned and the
    owning simulator keeps a live count of pending tombstones).
    """

    __slots__ = (
        "time_ps",
        "priority",
        "seqno",
        "callback",
        "args",
        "cancelled",
        "owner",
    )

    def __init__(
        self,
        time_ps: int,
        priority: int,
        seqno: int,
        callback: Callable[..., None],
        args: tuple,
        owner: Optional["Simulator"] = None,
    ) -> None:
        self.time_ps = time_ps
        self.priority = priority
        self.seqno = seqno
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time_ps, self.priority, self.seqno) < (
            other.time_ps,
            other.priority,
            other.seqno,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"ScheduledEvent(t={self.time_ps}ps, prio={self.priority}, cb={name})"


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Usage::

        sim = Simulator()
        sim.call_at(1_000, lambda: print("one nanosecond"))
        sim.run()

    Callbacks may schedule further callbacks.  ``run`` drains the queue
    until it is empty or until an optional time/event bound is hit.
    """

    #: Never compact a heap smaller than this (the rebuild would cost
    #: more than the tombstones it reclaims).
    COMPACTION_FLOOR = 16

    def __init__(self) -> None:
        self._now_ps: int = 0
        self._queue: List[ScheduledEvent] = []
        self._seqno: int = 0
        self._running: bool = False
        self._events_executed: int = 0
        self._cancelled_pending: int = 0
        self._exec_observers: List[Callable[[ScheduledEvent], None]] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now_ps(self) -> int:
        """The current simulated time in picoseconds."""
        return self._now_ps

    @property
    def events_executed(self) -> int:
        """Number of callbacks the kernel has run so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) callbacks still queued, in O(1)."""
        return len(self._queue) - self._cancelled_pending

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_execution_observer(self, fn: Callable[[ScheduledEvent], None]) -> None:
        """Call ``fn(scheduled_event)`` after every executed callback.

        The hook is the kernel-level tap the observability layer builds
        on (e.g. :class:`repro.obs.kernel.CallbackProfiler`); with no
        observers registered the run loop pays a single truthiness
        check per event.
        """
        self._exec_observers.append(fn)

    def remove_execution_observer(self, fn: Callable[[ScheduledEvent], None]) -> None:
        """Detach a previously added execution observer."""
        self._exec_observers.remove(fn)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time_ps: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``.

        Lower ``priority`` runs first among same-time events.  Raises
        :class:`SimulationError` if ``time_ps`` is in the past.
        """
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule at t={time_ps}ps, now is t={self._now_ps}ps"
            )
        event = ScheduledEvent(time_ps, priority, self._seqno, callback, args, self)
        self._seqno += 1
        heapq.heappush(self._queue, event)
        return event

    def _note_cancel(self) -> None:
        """A queued event was tombstoned; compact when they dominate."""
        self._cancelled_pending += 1
        if (
            len(self._queue) >= self.COMPACTION_FLOOR
            and self._cancelled_pending > len(self._queue) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        ``heapify`` over the surviving (time, priority, seqno) triples
        reproduces the exact total order, so compaction never perturbs
        deterministic event ordering.
        """
        self._queue = [ev for ev in self._queue if not ev.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    def call_after(
        self,
        delay_ps: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` after a relative delay."""
        if delay_ps < 0:
            raise SimulationError(f"delay must be non-negative, got {delay_ps}")
        return self.call_at(self._now_ps + delay_ps, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, ``until_ps`` passes, or ``max_events``.

        Returns the number of callbacks executed by this call.  When
        ``until_ps`` is given, the clock is advanced to exactly
        ``until_ps`` on return even if the queue drained earlier, so
        repeated bounded runs observe monotonically advancing time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    head.owner = None
                    self._cancelled_pending -= 1
                    continue
                if until_ps is not None and head.time_ps > until_ps:
                    break
                heapq.heappop(self._queue)
                head.owner = None  # no longer queued; late cancel() is a no-op
                self._now_ps = head.time_ps
                head.callback(*head.args)
                executed += 1
                self._events_executed += 1
                if self._exec_observers:
                    for observer in self._exec_observers:
                        observer(head)
        finally:
            self._running = False
        if until_ps is not None and until_ps > self._now_ps:
            self._now_ps = until_ps
        return executed

    def step(self) -> bool:
        """Execute the single next pending callback; False if queue empty."""
        return self.run(max_events=1) == 1

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        for ev in self._queue:
            ev.owner = None  # detach so a late cancel() cannot corrupt counters
        self._queue.clear()
        self._now_ps = 0
        self._seqno = 0
        self._events_executed = 0
        self._cancelled_pending = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now_ps}ps, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
