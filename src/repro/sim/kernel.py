"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of scheduled callbacks keyed
by (time, priority, sequence-number).  The sequence number makes the
ordering of same-time, same-priority events deterministic: they run in
the order they were scheduled.  All components of the reproduction — the
PISA pipelines, traffic managers, timer units, links, and hosts — share
one simulator, so a whole multi-switch network advances on a single
totally-ordered virtual clock.

Two interchangeable scheduler backends implement that total order:

* ``"heap"`` (the default) — a binary heap of scheduled events.  Events
  are stored as flat lists so heap sift compares run element-wise at C
  speed on the (time, priority, seqno) prefix instead of calling a
  Python ``__lt__``.
* ``"wheel"`` — a calendar queue for the dominant short-horizon
  ``call_after`` pattern: events hash into per-timestamp buckets and a
  small integer heap of bucket times orders the calendar, so far-future
  events fall back to a heap of plain ints.  Same-time events drain in
  (priority, seqno) order, byte-identical to the heap backend.

Both backends produce identical event orderings; the determinism tests
assert trace equality between them.  Pick a backend per simulator
(``Simulator(scheduler="wheel")``) or process-wide via the
``REPRO_SIM_SCHEDULER`` environment variable — see docs/PERFORMANCE.md.

Implementation note: the per-event cost of ``call_after`` plus one run
loop iteration bounds every experiment in the repo, so the hot paths are
built as closures over the mutable kernel state (clock, seqno, queue,
free-list).  Cell-variable access compiles to ``LOAD_DEREF``, which is
several times cheaper than an attribute load on ``self``; across the
~10 state touches per event this is worth roughly 15% of total event
throughput.  The :class:`Simulator` object keeps the public API and
exposes the same state through properties for tests and tooling.
"""

from __future__ import annotations

import os
import weakref
from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, List, Optional

#: Field indices of the :class:`ScheduledEvent` flat-list layout.
_TIME, _PRIO, _SEQ, _CB, _ARGS, _CANCELLED, _OWNER = range(7)

#: A virtual time no real event ever reaches (run-loop bound sentinel).
_NEVER_PS = 1 << 63

#: Recognized scheduler backends.
SCHEDULER_BACKENDS = ("heap", "wheel")

#: Environment variable selecting the default scheduler backend.
SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"

#: Environment variable toggling the batched same-timestamp drain.
BATCH_DRAIN_ENV = "REPRO_BATCH_DRAIN"


def batch_env_enabled(default: bool = True) -> bool:
    """Resolve the ``REPRO_BATCH_DRAIN`` toggle (default: enabled)."""
    raw = os.environ.get(BATCH_DRAIN_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "off", "no")


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class ScheduledEvent(list):
    """A callback scheduled at a simulated time.

    Holding a reference to the returned object lets the scheduler cancel
    it later; cancellation is O(1) (the queue entry is tombstoned and the
    owning simulator keeps a live count of pending tombstones).

    The event *is* its queue entry: a flat list
    ``[time_ps, priority, seqno, callback, args, cancelled, owner]``.
    Heap ordering therefore uses list's C-level lexicographic compare on
    the (time, priority, seqno) prefix — seqno is unique per simulator,
    so comparison never reaches the callback.  The named attributes
    below are the public API; the list layout is internal to the kernel,
    and instances are built from the full 7-field tuple (list's own
    constructor) so scheduling pays no Python-level ``__init__`` frame.
    """

    __slots__ = ()

    # ------------------------------------------------------------------
    # Named access (public API; hot paths index the list directly)
    # ------------------------------------------------------------------
    @property
    def time_ps(self) -> int:
        return self[_TIME]

    @property
    def priority(self) -> int:
        return self[_PRIO]

    @property
    def seqno(self) -> int:
        return self[_SEQ]

    @property
    def callback(self) -> Callable[..., None]:
        return self[_CB]

    @property
    def args(self) -> tuple:
        return self[_ARGS]

    @property
    def cancelled(self) -> bool:
        return self[_CANCELLED]

    @property
    def owner(self) -> Optional["Simulator"]:
        return self[_OWNER]

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        if self[_CANCELLED]:
            return
        self[_CANCELLED] = True
        owner = self[_OWNER]
        if owner is not None:
            owner._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self[_CB], "__qualname__", repr(self[_CB]))
        return (
            f"ScheduledEvent(t={self[_TIME]}ps, prio={self[_PRIO]}, cb={name})"
        )


def _prio_of(event: ScheduledEvent) -> int:
    """Sort key for draining a calendar bucket.

    Buckets accumulate events in seqno order, so a *stable* sort by
    priority alone yields (priority, seqno) order.
    """
    return event[_PRIO]


def _build_heap_core(
    sim: "Simulator", observers: list, floor: int, batch: bool = True
):
    """Build the heap backend's hot-path closures.

    All mutable kernel state lives in this scope's cells.  The returned
    closures share those cells; the Simulator stores the closures in
    slots and mirrors the state through read-only properties.

    ``batch`` enables the batched same-timestamp drain: when the popped
    head shares its timestamp with the next queued event, the whole
    (time, priority, seqno) run is popped off the heap in one go and
    executed from a flat list — one clock store per run, no per-event
    bound/limit compares, and same-time events scheduled *by* the run's
    callbacks bisect into the unexecuted tail (the wheel backend's
    drain-window technique) instead of round-tripping through the heap.
    The order is byte-identical to the unbatched drain.

    The literal indices in the loops are the ScheduledEvent layout:
    ``0=time  1=priority  2=seqno  3=callback  4=args  5=cancelled
    6=owner``.
    """
    now = 0
    seqno = 0
    executed_total = 0
    cancelled = 0
    queue: List[ScheduledEvent] = []
    # Live drain window for the batched same-timestamp drain (mirrors
    # the wheel backend): while a run at ``drain_time`` executes,
    # ``drain_list[drain_pos:]`` is its unexecuted tail.
    drain_time = -1
    drain_list: Optional[List[ScheduledEvent]] = None
    drain_pos = 0
    # Free-list of recycled event shells.  The run loop returns an
    # executed event here only when its refcount proves the kernel holds
    # the sole reference (the caller dropped the handle), so a held
    # handle is never mutated behind the caller's back.  Reuse skips
    # both the subclass allocation and the GC-generation churn of 10^5s
    # of short-lived containers; the list never outgrows the peak number
    # of concurrently pending events.  Shells in the free-list invariantly
    # have cancelled=False (only executed, uncancelled events are
    # recycled and no outside handle exists that could cancel them) and
    # owner=sim, so reuse rewrites just the five leading fields.
    free: List[ScheduledEvent] = []
    push = heappush
    pop_free = free.pop

    def call_at(
        time_ps: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        nonlocal seqno
        if time_ps < now:
            raise SimulationError(
                f"cannot schedule at t={time_ps}ps, now is t={now}ps"
            )
        s = seqno
        seqno = s + 1
        # EAFP on the free-list: at steady state it is never empty, so
        # the hit path pays one bound-method call and no truth test.
        try:
            event = pop_free()
            event[0] = time_ps
            event[1] = priority
            event[2] = s
            event[3] = callback
            event[4] = args
        except IndexError:
            event = ScheduledEvent(
                (time_ps, priority, s, callback, args, False, sim)
            )
        if time_ps == drain_time:
            # Scheduling at the timestamp currently draining: bisect
            # into the unexecuted tail of the live run by (priority,
            # seqno) — exactly where the unbatched drain would pop it.
            d = drain_list
            lo = drain_pos
            hi = len(d)
            key = (priority, s)
            while lo < hi:
                mid = (lo + hi) // 2
                other = d[mid]
                if (other[1], other[2]) < key:
                    lo = mid + 1
                else:
                    hi = mid
            d.insert(lo, event)
        elif queue:
            push(queue, event)
        else:
            queue.append(event)  # empty heap: skip the sift call
        return event

    def call_after(
        delay_ps: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        nonlocal seqno
        if delay_ps < 0:
            raise SimulationError(f"delay must be non-negative, got {delay_ps}")
        time_ps = now + delay_ps
        s = seqno
        seqno = s + 1
        try:
            event = pop_free()
            event[0] = time_ps
            event[1] = priority
            event[2] = s
            event[3] = callback
            event[4] = args
        except IndexError:
            event = ScheduledEvent(
                (time_ps, priority, s, callback, args, False, sim)
            )
        if time_ps == drain_time:
            # Scheduling at the timestamp currently draining: bisect
            # into the unexecuted tail of the live run by (priority,
            # seqno) — exactly where the unbatched drain would pop it.
            d = drain_list
            lo = drain_pos
            hi = len(d)
            key = (priority, s)
            while lo < hi:
                mid = (lo + hi) // 2
                other = d[mid]
                if (other[1], other[2]) < key:
                    lo = mid + 1
                else:
                    hi = mid
            d.insert(lo, event)
        elif queue:
            push(queue, event)
        else:
            queue.append(event)  # empty heap: skip the sift call
        return event

    def note_cancel() -> None:
        # A queued event was tombstoned; compact when they dominate.
        # Compaction filters *in place*: run loops hold a reference to
        # the queue list, so its identity must never change.  Rebuilding
        # over the surviving (time, priority, seqno) triples reproduces
        # the exact total order, so compaction never perturbs
        # deterministic event ordering.
        nonlocal cancelled
        cancelled += 1
        size = len(queue)
        if size >= floor and cancelled > size // 2:
            queue[:] = [ev for ev in queue if not ev[5]]
            heapify(queue)
            # Subtract only what the rebuild removed: tombstones sitting
            # in a live batched-drain window are not in ``queue`` and
            # stay counted until the run loop consumes them.
            cancelled -= size - len(queue)

    def drain(bound: int, limit: int) -> int:
        nonlocal now, executed_total, cancelled
        nonlocal drain_time, drain_list, drain_pos
        q = queue
        pop = heappop
        refs = getrefcount
        recycle = free.append
        executed = 0
        # ``events_executed`` is flushed once per drain rather than per
        # event; only the post-run value is observable.
        try:
            if bound == _NEVER_PS and limit == _NEVER_PS:
                # Unbounded full drain: the overwhelmingly common call
                # and the one the event-throughput benchmark times, so
                # it skips the per-event bound/limit compares and ends
                # on heappop's own empty-queue IndexError instead of
                # paying a truth test per iteration (zero-cost try; the
                # except is scoped to the pop so callback exceptions
                # propagate untouched).
                while True:
                    try:
                        head = pop(q)
                    except IndexError:
                        return executed
                    if head[5]:
                        head[6] = None
                        cancelled -= 1
                        continue
                    if batch and q and q[0][0] == head[0]:
                        # Batched drain: pop the whole same-timestamp
                        # run (heap order is already (priority, seqno))
                        # and execute it from a flat list.  Callbacks
                        # scheduling at this timestamp bisect into the
                        # unexecuted tail via call_at/call_after.
                        time_ps = head[0]
                        run_list = [head]
                        append_run = run_list.append
                        while q and q[0][0] == time_ps:
                            append_run(pop(q))
                        now = time_ps
                        drain_time = time_ps
                        drain_list = run_list
                        index = 0
                        while index < len(run_list):
                            head = run_list[index]
                            index += 1
                            drain_pos = index
                            head[6] = None
                            if head[5]:
                                cancelled -= 1
                                continue
                            args = head[4]
                            if args:
                                head[3](*args)
                            else:
                                head[3]()
                            executed += 1
                            if observers:
                                for observer in observers:
                                    observer(head)
                        drain_time = -1
                        drain_list = None
                        drain_pos = 0
                        continue
                    head[6] = None  # late cancel() is now a no-op
                    now = head[0]
                    args = head[4]
                    if args:
                        head[3](*args)
                    else:
                        head[3]()
                    executed += 1
                    if observers:
                        for observer in observers:
                            observer(head)
                    # refcount 2 == the loop local plus getrefcount's
                    # own argument: nobody kept the handle, recycle it.
                    # A callback may have cancel()ed its own firing event
                    # (harmless post-execution), so scrub the flag: with
                    # no handles left the scrub is unobservable.
                    if refs(head) == 2:
                        head[5] = False
                        head[6] = sim
                        recycle(head)
            while q:
                head = pop(q)
                if head[5]:
                    head[6] = None
                    cancelled -= 1
                    continue
                if head[0] > bound or executed >= limit:
                    push(q, head)  # bounded run: leave the head queued
                    break
                if batch and q and q[0][0] == head[0]:
                    # Batched drain under a bound: every run member
                    # shares the already-checked timestamp, so only the
                    # event limit needs testing mid-run.
                    time_ps = head[0]
                    run_list = [head]
                    append_run = run_list.append
                    while q and q[0][0] == time_ps:
                        append_run(pop(q))
                    now = time_ps
                    drain_time = time_ps
                    drain_list = run_list
                    index = 0
                    suspended = False
                    while index < len(run_list):
                        if executed >= limit:
                            # Limit hit mid-run: the unexecuted tail
                            # (already in (priority, seqno) order) goes
                            # back on the heap so the next run resumes
                            # identically.
                            for ev in run_list[index:]:
                                push(q, ev)
                            suspended = True
                            break
                        head = run_list[index]
                        index += 1
                        drain_pos = index
                        head[6] = None
                        if head[5]:
                            cancelled -= 1
                            continue
                        head[3](*head[4])
                        executed += 1
                        if observers:
                            for observer in observers:
                                observer(head)
                    drain_time = -1
                    drain_list = None
                    drain_pos = 0
                    if suspended:
                        break
                    continue
                head[6] = None
                now = head[0]
                head[3](*head[4])
                executed += 1
                if observers:
                    for observer in observers:
                        observer(head)
                if refs(head) == 2:
                    head[5] = False
                    head[6] = sim
                    recycle(head)
        finally:
            executed_total += executed
        return executed

    def peek():
        # (now, seqno, executed, pending, queued_raw, queue) snapshot for
        # the Simulator's properties and repr.  The unexecuted tail of a
        # live batched-drain window counts as queued: a callback asking
        # for ``pending_events`` mid-run must see its same-time peers.
        if drain_list is not None:
            tail = len(drain_list) - drain_pos
            return (
                now,
                seqno,
                executed_total,
                len(queue) + tail - cancelled,
                len(queue) + tail,
                queue + drain_list[drain_pos:],
            )
        return (
            now,
            seqno,
            executed_total,
            len(queue) - cancelled,
            len(queue),
            queue,
        )

    def get_now() -> int:
        return now

    def set_now(time_ps: int) -> None:
        nonlocal now
        now = time_ps

    def reset_state() -> None:
        nonlocal now, seqno, executed_total, cancelled
        nonlocal drain_time, drain_list, drain_pos
        for ev in queue:
            ev[6] = None  # detach so a late cancel() cannot corrupt counters
        queue.clear()
        free.clear()  # recycled shells pin old callbacks/args
        drain_time = -1
        drain_list = None
        drain_pos = 0
        now = 0
        seqno = 0
        executed_total = 0
        cancelled = 0

    def export_state():
        # Portable snapshot: (now, seqno, executed, live events sorted by
        # the total (time, priority, seqno) order).  Tombstones and the
        # free-list are deliberately dropped — they are performance
        # artifacts, not simulation state.  The unexecuted tail of a
        # live drain window is included defensively, although pickling
        # mid-run is refused at the Simulator level.
        events = [ev for ev in queue if not ev[5]]
        if drain_list is not None:
            events.extend(ev for ev in drain_list[drain_pos:] if not ev[5])
        events.sort()
        return (now, seqno, executed_total, events)

    def import_state(time_ps, seq, executed, events) -> None:
        # Inverse of export_state, replacing all kernel state.  The
        # imported list is (time, priority, seqno)-sorted, which is a
        # valid binary heap as-is.
        nonlocal now, seqno, executed_total, cancelled
        nonlocal drain_time, drain_list, drain_pos
        for ev in queue:
            ev[6] = None
        queue[:] = list(events)
        for ev in queue:
            ev[6] = sim
        free.clear()
        drain_time = -1
        drain_list = None
        drain_pos = 0
        now = time_ps
        seqno = seq
        executed_total = executed
        cancelled = 0

    return (
        call_at,
        call_after,
        note_cancel,
        drain,
        peek,
        get_now,
        set_now,
        reset_state,
        export_state,
        import_state,
    )


def _build_wheel_core(
    sim: "Simulator", observers: list, floor: int, batch: bool = True
):
    """Build the calendar-queue backend's hot-path closures.

    Same contract and event layout as :func:`_build_heap_core`; see
    there for the free-list and in-place-compaction invariants.  The
    calendar drains whole per-timestamp buckets by construction, so the
    batched same-timestamp drain is inherent here and ``batch`` is
    accepted only for signature parity.
    """
    del batch  # the calendar always drains per-timestamp batches
    now = 0
    seqno = 0
    executed_total = 0
    cancelled = 0
    # Per-timestamp buckets ordered by a heap of bucket times, plus the
    # live drain window that keeps same-time scheduling deterministic.
    buckets: dict = {}
    times: List[int] = []
    wheel_count = 0
    drain_time = -1
    drain_list: Optional[List[ScheduledEvent]] = None
    drain_pos = 0
    free: List[ScheduledEvent] = []
    push = heappush

    def insert(event: ScheduledEvent, time_ps: int) -> None:
        # Scheduling *at the timestamp currently draining* inserts into
        # the unexecuted tail of the live bucket by (priority, seqno),
        # which is exactly where the heap backend would surface it.
        nonlocal wheel_count
        wheel_count += 1
        if time_ps == drain_time:
            d = drain_list
            lo = drain_pos
            hi = len(d)
            key = (event[1], event[2])
            while lo < hi:
                mid = (lo + hi) // 2
                other = d[mid]
                if (other[1], other[2]) < key:
                    lo = mid + 1
                else:
                    hi = mid
            d.insert(lo, event)
            return
        bucket = buckets.get(time_ps)
        if bucket is None:
            buckets[time_ps] = [event]
            push(times, time_ps)
        else:
            bucket.append(event)

    def call_at(
        time_ps: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        nonlocal seqno
        if time_ps < now:
            raise SimulationError(
                f"cannot schedule at t={time_ps}ps, now is t={now}ps"
            )
        s = seqno
        seqno = s + 1
        if free:
            event = free.pop()
            event[0] = time_ps
            event[1] = priority
            event[2] = s
            event[3] = callback
            event[4] = args
        else:
            event = ScheduledEvent(
                (time_ps, priority, s, callback, args, False, sim)
            )
        insert(event, time_ps)
        return event

    def call_after(
        delay_ps: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        nonlocal seqno
        if delay_ps < 0:
            raise SimulationError(f"delay must be non-negative, got {delay_ps}")
        time_ps = now + delay_ps
        s = seqno
        seqno = s + 1
        if free:
            event = free.pop()
            event[0] = time_ps
            event[1] = priority
            event[2] = s
            event[3] = callback
            event[4] = args
        else:
            event = ScheduledEvent(
                (time_ps, priority, s, callback, args, False, sim)
            )
        insert(event, time_ps)
        return event

    def note_cancel() -> None:
        nonlocal cancelled, wheel_count
        cancelled += 1
        if wheel_count >= floor and cancelled > wheel_count // 2:
            # In-place rebuild (times identity preserved for any running
            # drain).  Tombstones sitting in the live drain window are
            # not stored in ``buckets`` and stay counted until consumed.
            removed = 0
            for time_ps in list(buckets):
                bucket = buckets[time_ps]
                live = [ev for ev in bucket if not ev[5]]
                if len(live) != len(bucket):
                    removed += len(bucket) - len(live)
                    if live:
                        buckets[time_ps] = live
                    else:
                        del buckets[time_ps]
            times[:] = list(buckets)
            heapify(times)
            wheel_count -= removed
            cancelled -= removed

    def drain(bound: int, limit: int) -> int:
        nonlocal now, executed_total, cancelled, wheel_count
        nonlocal drain_time, drain_list, drain_pos
        pop = heappop
        refs = getrefcount
        recycle = free.append
        executed = 0
        try:
            while times:
                time_ps = times[0]
                if time_ps > bound or executed >= limit:
                    break
                pop(times)
                bucket = buckets.pop(time_ps, None)
                if bucket is None:
                    continue  # stale calendar slot left behind by compaction
                if len(bucket) == 1:
                    # Single-occupant bucket: skip the drain-window
                    # bookkeeping.  A callback scheduling at this same
                    # timestamp simply recreates the bucket, which the
                    # outer loop pops next — identical to heap ordering.
                    head = bucket.pop()  # drop the bucket's reference
                    wheel_count -= 1
                    head[6] = None
                    if head[5]:
                        cancelled -= 1
                        continue
                    now = time_ps
                    args = head[4]
                    if args:
                        head[3](*args)
                    else:
                        head[3]()
                    executed += 1
                    if observers:
                        for observer in observers:
                            observer(head)
                    if refs(head) == 2:
                        head[5] = False
                        head[6] = sim
                        recycle(head)
                    continue
                bucket.sort(key=_prio_of)  # stable: yields (priority, seqno)
                now = time_ps
                drain_time = time_ps
                drain_list = bucket
                index = 0
                while index < len(bucket):
                    if executed >= limit:
                        # Bounded run stopped mid-bucket: the unexecuted
                        # tail (already in priority/seqno order) becomes
                        # the bucket again, so the next run resumes
                        # identically.
                        buckets[time_ps] = bucket[index:]
                        push(times, time_ps)
                        break
                    head = bucket[index]
                    index += 1
                    drain_pos = index
                    wheel_count -= 1
                    head[6] = None
                    if head[5]:
                        cancelled -= 1
                        continue
                    now = time_ps
                    head[3](*head[4])
                    executed += 1
                    if observers:
                        for observer in observers:
                            observer(head)
                drain_time = -1
                drain_list = None
                drain_pos = 0
        finally:
            executed_total += executed
        return executed

    def peek():
        # Index 5 is a flattened debug snapshot of the calendar (the
        # heap backend exposes its live queue there); built on demand,
        # cold paths only.
        return (
            now,
            seqno,
            executed_total,
            wheel_count - cancelled,
            wheel_count,
            [ev for bucket in buckets.values() for ev in bucket],
        )

    def get_now() -> int:
        return now

    def set_now(time_ps: int) -> None:
        nonlocal now
        now = time_ps

    def reset_state() -> None:
        nonlocal now, seqno, executed_total, cancelled, wheel_count
        nonlocal drain_time, drain_list, drain_pos
        for bucket in buckets.values():
            for ev in bucket:
                ev[6] = None
        buckets.clear()
        times.clear()
        free.clear()
        wheel_count = 0
        drain_time = -1
        drain_list = None
        drain_pos = 0
        now = 0
        seqno = 0
        executed_total = 0
        cancelled = 0

    def export_state():
        # Same contract as the heap backend.  The unexecuted tail of a
        # live drain window is included defensively, although pickling
        # mid-run is refused at the Simulator level.
        events = [
            ev for bucket in buckets.values() for ev in bucket if not ev[5]
        ]
        if drain_list is not None:
            events.extend(ev for ev in drain_list[drain_pos:] if not ev[5])
        events.sort()
        return (now, seqno, executed_total, events)

    def import_state(time_ps, seq, executed, events) -> None:
        nonlocal now, seqno, executed_total, cancelled, wheel_count
        nonlocal drain_time, drain_list, drain_pos
        for bucket in buckets.values():
            for ev in bucket:
                ev[6] = None
        buckets.clear()
        times.clear()
        free.clear()
        # Events arrive (time, priority, seqno)-sorted, so each bucket
        # fills in (priority, seqno) order; the drain's stable priority
        # sort then reproduces exactly the heap backend's total order.
        for ev in events:
            ev[6] = sim
            time_key = ev[0]
            bucket = buckets.get(time_key)
            if bucket is None:
                buckets[time_key] = [ev]
            else:
                bucket.append(ev)
        times[:] = list(buckets)
        heapify(times)
        wheel_count = len(events)
        drain_time = -1
        drain_list = None
        drain_pos = 0
        now = time_ps
        seqno = seq
        executed_total = executed
        cancelled = 0

    return (
        call_at,
        call_after,
        note_cancel,
        drain,
        peek,
        get_now,
        set_now,
        reset_state,
        export_state,
        import_state,
    )


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Usage::

        sim = Simulator()
        sim.call_at(1_000, lambda: print("one nanosecond"))
        sim.run()

    Callbacks may schedule further callbacks.  ``run`` drains the queue
    until it is empty or until an optional time/event bound is hit.

    ``scheduler`` picks the queue backend (``"heap"`` or ``"wheel"``);
    when omitted, the ``REPRO_SIM_SCHEDULER`` environment variable
    decides, defaulting to the heap.  Both backends execute callbacks in
    exactly the same (time, priority, seqno) order.

    ``call_at`` and ``call_after`` are per-instance closures over the
    kernel state (see the module docstring); their signatures are::

        call_at(time_ps, callback, *args, priority=0)   -> ScheduledEvent
        call_after(delay_ps, callback, *args, priority=0) -> ScheduledEvent

    Lower ``priority`` runs first among same-time events; scheduling in
    the past raises :class:`SimulationError`.
    """

    #: Never compact a queue smaller than this (the rebuild would cost
    #: more than the tombstones it reclaims).
    COMPACTION_FLOOR = 16

    __slots__ = (
        "scheduler",
        "batch_drain",
        "call_at",
        "call_after",
        "_note_cancel",
        "_drain",
        "_peek",
        "_get_now",
        "_set_now",
        "_reset_state",
        "_export_state",
        "_import_state",
        "_running",
        "_exec_observers",
        "_reset_listeners",
    )

    def __init__(
        self,
        scheduler: Optional[str] = None,
        batch_drain: Optional[bool] = None,
    ) -> None:
        if scheduler is None:
            scheduler = os.environ.get(SCHEDULER_ENV) or "heap"
        if scheduler not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick one of "
                f"{SCHEDULER_BACKENDS}"
            )
        self.scheduler = scheduler
        # Batched same-timestamp drain: kwarg wins, then the
        # REPRO_BATCH_DRAIN environment variable, default on.  The
        # wheel backend batches by construction either way.
        if batch_drain is None:
            batch_drain = batch_env_enabled()
        self.batch_drain = bool(batch_drain)
        self._running = False
        self._exec_observers: List[Callable[[ScheduledEvent], None]] = []
        self._reset_listeners: List[weakref.ref] = []
        self._bind_core()

    def _bind_core(self) -> None:
        """(Re)build the backend closures for the current ``scheduler``."""
        build = _build_wheel_core if self.scheduler == "wheel" else _build_heap_core
        (
            self.call_at,
            self.call_after,
            self._note_cancel,
            self._drain,
            self._peek,
            self._get_now,
            self._set_now,
            self._reset_state,
            self._export_state,
            self._import_state,
        ) = build(
            self, self._exec_observers, self.COMPACTION_FLOOR, self.batch_drain
        )

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now_ps(self) -> int:
        """The current simulated time in picoseconds."""
        return self._get_now()

    @property
    def events_executed(self) -> int:
        """Number of callbacks the kernel has run so far."""
        return self._peek()[2]

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) callbacks still queued, in O(1)."""
        return self._peek()[3]

    @property
    def next_event_time_ps(self) -> Optional[int]:
        """Timestamp of the earliest live queued event, or None when idle.

        A cold-path introspection helper (O(pending) — it walks a queue
        snapshot filtering tombstones); fault-injection monitors use it
        to decide whether a scenario has quiesced, the hot loop never
        calls it.
        """
        times = [ev[_TIME] for ev in self._peek()[5] if not ev[_CANCELLED]]
        return min(times) if times else None

    # Internal state views kept for tests and debugging tools.
    @property
    def _now_ps(self) -> int:
        return self._get_now()

    @_now_ps.setter
    def _now_ps(self, time_ps: int) -> None:
        self._set_now(time_ps)

    @property
    def _queue(self) -> List[ScheduledEvent]:
        """Raw queued-event view (live heap list, or a wheel snapshot)."""
        return self._peek()[5]

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_execution_observer(self, fn: Callable[[ScheduledEvent], None]) -> None:
        """Call ``fn(scheduled_event)`` after every executed callback.

        The hook is the kernel-level tap the observability layer builds
        on (e.g. :class:`repro.obs.kernel.CallbackProfiler`); with no
        observers registered the run loop pays a single truthiness
        check per event.
        """
        self._exec_observers.append(fn)

    def remove_execution_observer(self, fn: Callable[[ScheduledEvent], None]) -> None:
        """Detach a previously added execution observer."""
        self._exec_observers.remove(fn)

    def add_reset_listener(self, listener: Any) -> None:
        """Notify ``listener.on_sim_reset()`` whenever :meth:`reset` runs.

        Held by weak reference — per-switch caches and counters register
        here so A/B rounds reusing one simulator start cold, without the
        kernel pinning dead switch graphs alive.  Listeners are not part
        of kernel pickle state; they lazily re-register after a restore.
        """
        self._reset_listeners.append(weakref.ref(listener))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until_ps: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains, ``until_ps`` passes, or ``max_events``.

        Returns the number of callbacks executed by this call.  When
        ``until_ps`` is given, the clock is advanced to exactly
        ``until_ps`` on return even if the queue drained earlier, so
        repeated bounded runs observe monotonically advancing time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        bound = _NEVER_PS if until_ps is None else until_ps
        limit = _NEVER_PS if max_events is None else max_events
        try:
            executed = self._drain(bound, limit)
        finally:
            self._running = False
        if until_ps is not None and until_ps > self._get_now():
            self._set_now(until_ps)
        return executed

    def step(self) -> bool:
        """Execute the single next pending callback; False if queue empty."""
        return self.run(max_events=1) == 1

    def run_until(self, bound_ps: int) -> int:
        """Execute every event strictly before ``bound_ps``; land on it.

        The bounded-window primitive of the conservative-parallel shard
        engine (:mod:`repro.sim.shard`): after ``run_until(W)`` every
        callback with ``time_ps < W`` has executed, no callback at
        ``time_ps >= W`` has, and ``now_ps == W`` — so a later
        ``call_at(W, ...)`` (a boundary packet delivered exactly on the
        window edge) is still legal.  Contrast :meth:`run`, whose
        ``until_ps`` bound is inclusive.  Returns the number of
        callbacks executed.
        """
        now = self._get_now()
        if bound_ps < now:
            raise SimulationError(
                f"cannot run until t={bound_ps}ps, now is t={now}ps"
            )
        if bound_ps == now:
            return 0
        executed = self.run(until_ps=bound_ps - 1)
        if self._get_now() < bound_ps:
            self._set_now(bound_ps)
        return executed

    def reset(self) -> None:
        """Discard pending events, detach observers, rewind the clock.

        Execution observers registered via :meth:`add_execution_observer`
        are dropped too — a reused simulator must not keep profiling
        callbacks from a previous run.  Reset listeners (per-switch flow
        caches and their counters) are told to go cold, so back-to-back
        benchmark rounds on one simulator are deterministic.
        """
        self._reset_state()
        self._exec_observers.clear()
        listeners = self._reset_listeners
        if listeners:
            live = [ref for ref in listeners if ref() is not None]
            listeners[:] = live
            for ref in live:
                listener = ref()
                if listener is not None:
                    listener.on_sim_reset()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def set_scheduler(self, scheduler: str) -> None:
        """Switch the queue backend in place, preserving all state.

        Pending events, the clock, the seqno counter, and the executed
        count migrate, so the run continues with exactly the same
        (time, priority, seqno) total order.  Execution observers stay
        attached.  Used by :meth:`restore` to re-backend a checkpoint.
        """
        if scheduler not in SCHEDULER_BACKENDS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; pick one of "
                f"{SCHEDULER_BACKENDS}"
            )
        if self._running:
            raise SimulationError("cannot switch scheduler while running")
        if scheduler == self.scheduler:
            return
        now, seqno, executed, events = self._export_state()
        self.scheduler = scheduler
        self._bind_core()
        self._import_state(now, seqno, executed, events)

    def __getstate__(self) -> dict:
        """Pickle support: export the portable kernel state.

        Execution observers are *not* captured (they are process-local
        instrumentation, often closures); re-attach after restoring.
        Pickling a running simulator is refused — a checkpoint taken
        mid-callback could not be resumed faithfully because the rest of
        the callback's effects would be missing.
        """
        if self._running:
            raise SimulationError("cannot pickle a running simulator")
        now, seqno, executed, events = self._export_state()
        return {
            "scheduler": self.scheduler,
            "batch_drain": self.batch_drain,
            "now_ps": now,
            "seqno": seqno,
            "events_executed": executed,
            "events": events,
        }

    def __setstate__(self, state: dict) -> None:
        self.scheduler = state["scheduler"]
        # Checkpoints written before the batched drain carry no flag;
        # they restore with the current environment's default.
        self.batch_drain = bool(state.get("batch_drain", batch_env_enabled()))
        self._running = False
        self._exec_observers = []
        self._reset_listeners = []
        self._bind_core()
        self._import_state(
            state["now_ps"],
            state["seqno"],
            state["events_executed"],
            state["events"],
        )

    def checkpoint(self, path: str, state: Any = None, label: str = "") -> dict:
        """Write a whole-simulator checkpoint to ``path``.

        ``state`` is an arbitrary picklable object stored alongside the
        simulator (an experiment's topology/handles); :meth:`restore`
        returns it.  See :mod:`repro.sim.checkpoint` for the format.
        Returns the checkpoint header (a JSON-able dict).
        """
        from repro.sim.checkpoint import save_checkpoint

        return save_checkpoint(path, self, state=state, label=label)

    @classmethod
    def restore(cls, path: str, scheduler: Optional[str] = None) -> tuple:
        """Load a checkpoint written by :meth:`checkpoint`.

        Returns ``(simulator, state)``.  ``scheduler`` optionally
        re-backends the restored kernel (checkpoints are portable across
        the heap and wheel backends).
        """
        from repro.sim.checkpoint import load_checkpoint

        sim, state, _header = load_checkpoint(path, scheduler=scheduler)
        return sim, state

    def fork(self, state: Any = None) -> tuple:
        """Snapshot this simulator into a fresh, independent instance.

        Checkpoint-to-memory plus restore: the returned
        ``(simulator, state)`` pair is a deep copy of this kernel and the
        experiment object graph handed in as ``state``, sharing no
        mutable structure with the original.  Both copies carry the same
        clock, seqno counter, and pending-event queue, so identical
        continuations replay the identical total order — and divergent
        continuations (say, a different fault plan injected into each
        fork) cannot disturb each other.  Like pickling, forking is
        refused while the simulator is running.
        """
        from repro.sim.checkpoint import dumps_checkpoint, loads_checkpoint

        blob = dumps_checkpoint(self, state=state, label="fork")
        sim, new_state, _header = loads_checkpoint(blob)
        return sim, new_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        now, _, executed, pending, _, _ = self._peek()
        return (
            f"Simulator(now={now}ps, pending={pending}, "
            f"executed={executed}, scheduler={self.scheduler!r})"
        )
