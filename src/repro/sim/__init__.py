"""Discrete-event simulation kernel.

Everything in the reproduction runs on top of this kernel: the PISA
pipelines, the traffic manager, the timer units, the network links, and
the hosts all schedule callbacks on a single shared :class:`Simulator`.

Time is kept as integer **picoseconds** so that rate and latency
arithmetic stays exact (1 GbE bit time = 1000 ps, a 64-byte frame at
10 Gb/s = 51_200 ps, a 200 MHz FPGA clock cycle = 5_000 ps).
"""

from repro.sim.kernel import Simulator, ScheduledEvent, SimulationError
from repro.sim.process import PeriodicProcess
from repro.sim.rng import SeededRng
from repro.sim.units import (
    GIGAHERTZ,
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    PICOSECONDS,
    SECONDS,
    bits_to_time_ps,
    bytes_to_time_ps,
    gbps,
    time_ps_to_seconds,
)

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "PeriodicProcess",
    "SeededRng",
    "PICOSECONDS",
    "NANOSECONDS",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
    "GIGAHERTZ",
    "gbps",
    "bits_to_time_ps",
    "bytes_to_time_ps",
    "time_ps_to_seconds",
]
