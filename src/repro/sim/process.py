"""Periodic processes on top of the simulation kernel.

The paper's timer events, packet generators, and control-plane pollers
are all periodic activities.  :class:`PeriodicProcess` captures the
common machinery: a callback fired every ``period_ps``, which can be
started, stopped, and re-armed with a new period (the SUME Event Switch
exposes its timer period as a run-time configurable register).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import ScheduledEvent, SimulationError, Simulator


class PeriodicProcess:
    """Fires ``callback()`` every ``period_ps`` picoseconds once started.

    The first firing happens one full period after :meth:`start` (or at
    ``start(offset_ps=...)``).  Changing :attr:`period_ps` while running
    takes effect from the next firing.
    """

    def __init__(
        self,
        sim: Simulator,
        period_ps: int,
        callback: Callable[[], None],
        name: str = "periodic",
    ) -> None:
        if period_ps <= 0:
            raise ValueError(f"period must be positive, got {period_ps}")
        self.sim = sim
        self.period_ps = period_ps
        self.callback = callback
        self.name = name
        self.fire_count = 0
        self._pending: Optional[ScheduledEvent] = None

    @property
    def running(self) -> bool:
        """True while the process has a firing scheduled."""
        return self._pending is not None and not self._pending.cancelled

    def start(self, offset_ps: Optional[int] = None) -> None:
        """Arm the process; first firing after ``offset_ps`` (default period)."""
        if self.running:
            raise SimulationError(f"process {self.name!r} already running")
        delay = self.period_ps if offset_ps is None else offset_ps
        self._pending = self.sim.call_after(delay, self._fire)

    def stop(self) -> None:
        """Disarm the process; safe to call when already stopped."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def set_period(self, period_ps: int) -> None:
        """Change the period; applies from the next firing."""
        if period_ps <= 0:
            raise ValueError(f"period must be positive, got {period_ps}")
        self.period_ps = period_ps

    def _fire(self) -> None:
        self.fire_count += 1
        self._pending = self.sim.call_after(self.period_ps, self._fire)
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"PeriodicProcess({self.name!r}, {self.period_ps}ps, {state})"
