"""Time and rate units used throughout the simulator.

The kernel's clock is an integer number of picoseconds.  These helpers
convert between human units (nanoseconds, Gb/s, clock frequencies) and
the kernel's integer picosecond domain without accumulating floating
point error on the hot path.
"""

from __future__ import annotations

#: One picosecond — the base unit of simulated time.
PICOSECONDS = 1
#: One nanosecond in picoseconds.
NANOSECONDS = 1_000
#: One microsecond in picoseconds.
MICROSECONDS = 1_000_000
#: One millisecond in picoseconds.
MILLISECONDS = 1_000_000_000
#: One second in picoseconds.
SECONDS = 1_000_000_000_000

#: One gigahertz expressed as a clock period in picoseconds.
GIGAHERTZ = 1_000


def gbps(rate: float) -> float:
    """Return a link rate in bits per picosecond for ``rate`` Gb/s.

    10 Gb/s is 0.01 bits per picosecond; callers should prefer
    :func:`bits_to_time_ps` which keeps the arithmetic in integers.
    """
    return rate / 1_000.0


def bits_to_time_ps(bits: int, rate_gbps: float) -> int:
    """Serialization time in picoseconds of ``bits`` at ``rate_gbps`` Gb/s.

    The result is rounded up: a packet is not done transmitting until its
    final bit has left the wire.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate must be positive, got {rate_gbps}")
    # bits / (rate_gbps Gb/s) = bits * 1000 / rate_gbps picoseconds.
    numerator = bits * 1_000
    denominator = rate_gbps
    ticks = numerator / denominator
    return int(-(-ticks // 1))  # ceil for floats without math.ceil import


def bytes_to_time_ps(nbytes: int, rate_gbps: float) -> int:
    """Serialization time in picoseconds of ``nbytes`` at ``rate_gbps`` Gb/s."""
    return bits_to_time_ps(nbytes * 8, rate_gbps)


def clock_period_ps(freq_mhz: float) -> int:
    """Clock period in picoseconds of a ``freq_mhz`` MHz clock."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return int(round(1_000_000 / freq_mhz))


def time_ps_to_seconds(time_ps: int) -> float:
    """Convert integer picoseconds to float seconds (for reporting only)."""
    return time_ps / SECONDS
