"""Whole-simulator checkpoint/restore.

A checkpoint captures everything a deterministic resume needs:

* the scheduler queue contents (both the ``heap`` and ``wheel``
  backends export the same portable, (time, priority, seqno)-sorted
  event list — see ``Simulator._export_state``),
* the kernel clock, seqno counter, and executed-event count, so the
  resumed total order continues exactly where it stopped,
* the experiment object graph handed in as ``state`` — switches,
  programs, hosts, links — which transitively pickles every
  :class:`repro.state.store.StateStore` (extern cells, link state) and
  every :class:`repro.sim.rng.SeededRng` (``random.Random`` pickles
  with its Mersenne state), and
* a manifest of live StateStores (extern metadata) for inspection
  without loading the payload.

On-disk format (version 1): two consecutive pickle frames in one file.
Frame one is a small JSON-able **header** dict — magic, version,
scheduler backend, clock, event counts, store manifest — so
:func:`inspect_checkpoint` can describe a file without unpickling the
full object graph.  Frame two is the **payload**:
``{"sim": Simulator, "state": <user object>}``.

What is deliberately *not* captured: execution observers (process-local
instrumentation; re-attach after restore), cancelled tombstones and
free-list shells (performance artifacts), and module-level id counters
(packet/event ids restart in a fresh process — they are cosmetic labels
and do not participate in event ordering).

Checkpoints are Python pickles: load them only from trusted sources,
and prefer the same interpreter version that wrote them.
"""

from __future__ import annotations

import io
import pickle
import sys
from typing import Any, Dict, Optional, Tuple

from repro.sim.kernel import Simulator

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "inspect_checkpoint",
    "dumps_checkpoint",
    "loads_checkpoint",
]

#: Format marker in the header frame.
CHECKPOINT_MAGIC = "repro-checkpoint"

#: Current on-disk format version.
CHECKPOINT_VERSION = 1

#: Pickle protocol used for both frames (supported since Python 3.4).
_PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """Raised for unreadable, foreign, or future-versioned checkpoints."""


def _write_checkpoint(
    fh, sim: Simulator, state: Any, label: str
) -> Dict[str, Any]:
    """Write the two-frame checkpoint format to a binary file object."""
    from repro.state.store import store_manifest

    header: Dict[str, Any] = {
        "format": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "label": label,
        "python": sys.version.split()[0],
        "scheduler": sim.scheduler,
        "now_ps": sim.now_ps,
        "events_executed": sim.events_executed,
        "pending_events": sim.pending_events,
        "stores": store_manifest(),
    }
    payload = {"sim": sim, "state": state}
    pickle.dump(header, fh, protocol=_PICKLE_PROTOCOL)
    pickle.dump(payload, fh, protocol=_PICKLE_PROTOCOL)
    return header


def save_checkpoint(
    path: str,
    sim: Simulator,
    state: Any = None,
    label: str = "",
) -> Dict[str, Any]:
    """Write ``sim`` (and the experiment ``state`` riding along) to ``path``.

    Returns the header dict that was written.
    """
    with open(path, "wb") as fh:
        return _write_checkpoint(fh, sim, state, label)


def dumps_checkpoint(
    sim: Simulator, state: Any = None, label: str = ""
) -> bytes:
    """The checkpoint as bytes — same two-frame format, no file.

    This is the substrate of :meth:`Simulator.fork` (snapshot a live
    experiment and restore it into a fresh instance without touching
    disk) and of service-side preemption, where checkpoints travel over
    a pipe rather than through the filesystem.
    """
    buffer = io.BytesIO()
    _write_checkpoint(buffer, sim, state, label)
    return buffer.getvalue()


def _read_header(fh) -> Dict[str, Any]:
    try:
        header = pickle.load(fh)
    except Exception as exc:
        raise CheckpointError(f"not a repro checkpoint: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_MAGIC:
        raise CheckpointError("not a repro checkpoint (bad magic)")
    version = header.get("version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version!r} is newer than supported "
            f"version {CHECKPOINT_VERSION}"
        )
    return header


def inspect_checkpoint(path: str) -> Dict[str, Any]:
    """Read only the header frame: cheap metadata, no object graph."""
    with open(path, "rb") as fh:
        return _read_header(fh)


def load_checkpoint(
    path: str, scheduler: Optional[str] = None
) -> Tuple[Simulator, Any, Dict[str, Any]]:
    """Load a checkpoint; returns ``(sim, state, header)``.

    ``scheduler`` optionally re-backends the restored kernel via
    :meth:`Simulator.set_scheduler` — event order is identical across
    backends, so a heap checkpoint resumes byte-identically on the
    wheel and vice versa.
    """
    with open(path, "rb") as fh:
        header = _read_header(fh)
        try:
            payload = pickle.load(fh)
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint payload: {exc}") from exc
    return _check_payload(payload, header, scheduler)


def _check_payload(
    payload: Any, header: Dict[str, Any], scheduler: Optional[str]
) -> Tuple[Simulator, Any, Dict[str, Any]]:
    sim = payload.get("sim") if isinstance(payload, dict) else None
    if not isinstance(sim, Simulator):
        raise CheckpointError("checkpoint payload holds no Simulator")
    if scheduler is not None:
        sim.set_scheduler(scheduler)
    return sim, payload.get("state"), header


def loads_checkpoint(
    data: bytes, scheduler: Optional[str] = None
) -> Tuple[Simulator, Any, Dict[str, Any]]:
    """Load a checkpoint from bytes; returns ``(sim, state, header)``."""
    fh = io.BytesIO(data)
    header = _read_header(fh)
    try:
        payload = pickle.load(fh)
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint payload: {exc}") from exc
    return _check_payload(payload, header, scheduler)
