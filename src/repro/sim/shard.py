"""Conservative-parallel sharded simulation.

One :class:`~repro.sim.kernel.Simulator` per shard, synchronized in
bounded windows by a coordinator:

* :func:`~repro.net.partition.partition_spec` splits the fabric into
  shard node sets with explicit boundary links;
* each shard realizes only its nodes and wires a :class:`BoundaryLink`
  proxy per cut link — outbound packets land in an outbox instead of a
  local delivery, inbound packets are injected as future events;
* the :class:`ShardedSimulator` coordinator runs windows
  ``[W0, W0 + lookahead)`` where ``lookahead`` is the minimum boundary
  link latency.  A packet sent at ``t >= W0`` arrives at
  ``t + latency >= W0 + lookahead``, i.e. never inside the window that
  produced it — the classic conservative (CMB-style) safety argument —
  so shards execute windows independently and exchange outboxes at
  barriers.  Between windows the coordinator jumps straight to the
  earliest pending event, so idle gaps cost one round, not many.

Determinism: boundary injections are sorted by the portable
``(deliver_time, link name, per-link sequence)`` triple before being
handed to a shard, so every run — inline or multi-process, any worker
interleaving — schedules the same events in the same order.
Equivalence with the serial run is checked via
:func:`behavior_fingerprint`, an order-insensitive per-host digest of
arrival ``(time, length)`` multisets; see ``docs/SCALING.md`` for the
exact guarantee and its conditions.

Workers are persistent processes
(:class:`~repro.experiments.parallel.PersistentWorker`) rebuilding
their shard from pure data (a picklable ``builder`` callable plus
args); ``mode="inline"`` runs every shard in-process for tests and
debugging with identical semantics.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.link import Link
from repro.net.network import Network
from repro.net.partition import Partition
from repro.obs.shard import ShardCounters, ShardStats
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator

#: host name → [(arrival time ps, payload length)] — what workers return.
HostRecords = Dict[str, List[Tuple[int, int]]]

#: wire format of one boundary packet: (link name, deliver time ps, packet).
BoundaryMsg = Tuple[str, int, Packet]


class _RemoteStub:
    """The off-shard end of a boundary link; never actually receives."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, pkt: Packet, port: int) -> None:  # pragma: no cover
        raise RuntimeError(
            f"remote stub {self.name!r} cannot receive; boundary delivery "
            "must go through the coordinator"
        )

    def set_link_status(self, port: int, up: bool) -> None:
        pass


class BoundaryLink(Link):
    """A shard's local half of a link whose far end is on another shard.

    Outbound: :meth:`transmit_from` stamps the delivery time
    (``now + latency``) and parks the packet in :attr:`outbox` for the
    coordinator instead of scheduling a local delivery.  Inbound: the
    coordinator calls :meth:`inject`, which schedules the stock
    :meth:`Link._deliver` at the stamped time — same callback, same
    priority as a serial-run link, so the local simulator cannot tell
    the difference.  Impairments are not supported on boundary links.
    """

    def __init__(
        self,
        sim: Simulator,
        local_node,
        local_port: int,
        remote_name: str,
        remote_port: int,
        latency_ps: int = 1_000_000,
        name: str = "boundary",
    ) -> None:
        if latency_ps <= 0:
            raise ValueError(
                f"boundary link {name!r} needs positive latency for "
                f"lookahead, got {latency_ps}"
            )
        super().__init__(
            sim,
            local_node,
            local_port,
            _RemoteStub(remote_name),
            remote_port,
            latency_ps,
            name,
        )
        #: (deliver time ps, packet) pairs awaiting pickup.
        self.outbox: List[Tuple[int, Packet]] = []
        self.injected_packets = 0

    def transmit_from(self, sender, pkt: Packet) -> None:
        if sender is not self.node_a:
            raise ValueError(
                f"{sender!r} is not the local end of boundary {self.name!r}"
            )
        self.tx_packets += 1
        if not self.up:
            self.lost_packets += 1
            return
        # Handed off to the coordinator: ledger-wise the packet has left
        # this shard, so it counts as delivered here.
        self.delivered_packets += 1
        self.outbox.append((self.sim.now_ps + self.latency_ps, pkt))

    def inject(self, pkt: Packet, deliver_time_ps: int) -> None:
        """Schedule an inbound boundary packet for local delivery."""
        self.injected_packets += 1
        self.tx_packets += 1
        self.in_flight += 1
        self.sim.call_at(
            deliver_time_ps, self._deliver, self.node_a, pkt, self.port_a
        )


def wire_boundary_links(
    network: Network, partition: Partition, shard_id: int
) -> Dict[str, BoundaryLink]:
    """Create and attach a :class:`BoundaryLink` per cut link of a shard.

    ``network`` must be the shard-local realization (built with
    ``realize(spec, ..., only_nodes=partition.shard_nodes(shard_id))``,
    which skips cut links).  Returns {link name → proxy} for the
    worker's outbox/inject plumbing.
    """
    boundaries: Dict[str, BoundaryLink] = {}
    for link in partition.boundary_links(shard_id):
        if partition.assignment[link.node_a] == shard_id:
            local_name, local_port = link.node_a, link.port_a
            remote_name, remote_port = link.node_b, link.port_b
        else:
            local_name, local_port = link.node_b, link.port_b
            remote_name, remote_port = link.node_a, link.port_a
        node = network.switches.get(local_name) or network.hosts.get(local_name)
        if node is None:
            raise ValueError(
                f"boundary link {link.name!r}: local node {local_name!r} "
                f"was not realized in shard {shard_id}"
            )
        proxy = BoundaryLink(
            network.sim,
            node,
            local_port,
            remote_name,
            remote_port,
            link.latency_ps,
            name=link.name,
        )
        network.attach_boundary(node, local_port, proxy)
        boundaries[link.name] = proxy
    return boundaries


# ---------------------------------------------------------------------------
# Behavior fingerprint
# ---------------------------------------------------------------------------


class ArrivalRecorder:
    """A host sink recording ``(arrival time ps, payload length)`` pairs."""

    __slots__ = ("sim", "arrivals")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.arrivals: List[Tuple[int, int]] = []

    def __call__(self, pkt: Packet) -> None:
        self.arrivals.append((self.sim.now_ps, pkt.total_len))


def attach_recorders(network: Network) -> Dict[str, ArrivalRecorder]:
    """One :class:`ArrivalRecorder` sink per host of a network."""
    recorders = {}
    for name, host in network.hosts.items():
        recorder = ArrivalRecorder(network.sim)
        host.add_sink(recorder)
        recorders[name] = recorder
    return recorders


def behavior_fingerprint(records: HostRecords) -> Dict[str, Tuple[int, int, str]]:
    """Order-insensitive per-host digest of what a run delivered.

    Maps host name → ``(packets, bytes, sha256 hexdigest)`` where the
    digest covers the **sorted** multiset of ``(arrival time, length)``
    pairs.  Two runs that deliver the same packets at the same times —
    in any order — fingerprint identically; a single shifted arrival,
    missing packet, or changed length does not.
    """
    out: Dict[str, Tuple[int, int, str]] = {}
    for host in sorted(records):
        arrivals = sorted(records[host])
        digest = hashlib.sha256()
        for time_ps, length in arrivals:
            digest.update(b"%d:%d\n" % (time_ps, length))
        out[host] = (
            len(arrivals),
            sum(length for _, length in arrivals),
            digest.hexdigest(),
        )
    return out


def fingerprint_digest(fingerprint: Dict[str, Tuple[int, int, str]]) -> str:
    """Collapse a per-host fingerprint into one printable sha256."""
    digest = hashlib.sha256()
    for host in sorted(fingerprint):
        packets, nbytes, host_digest = fingerprint[host]
        digest.update(f"{host}|{packets}|{nbytes}|{host_digest}\n".encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Shard runtime + window execution (shared by inline and process modes)
# ---------------------------------------------------------------------------


@dataclass
class ShardRuntime:
    """What a shard builder returns: one shard, ready to run windows."""

    sim: Simulator
    network: Network
    boundaries: Dict[str, BoundaryLink]
    recorders: Dict[str, ArrivalRecorder]

    def collect(self) -> HostRecords:
        return {
            name: list(recorder.arrivals)
            for name, recorder in self.recorders.items()
        }


#: Builder contract: ``builder(shard_id, *builder_args) -> ShardRuntime``.
#: Must be module-level (picklable) for ``mode="process"``.
ShardBuilder = Callable[..., ShardRuntime]


def _run_window(
    runtime: ShardRuntime,
    counters: ShardCounters,
    w_end: Optional[int],
    inbound: List[BoundaryMsg],
) -> Tuple[List[BoundaryMsg], Optional[int], int]:
    """Inject ``inbound``, run one window, return (outbox, next time, executed).

    ``w_end=None`` runs the shard to quiescence — the no-boundary /
    single-shard fast path.
    """
    started = time.perf_counter()
    for link_name, deliver_time, pkt in inbound:
        runtime.boundaries[link_name].inject(pkt, deliver_time)
    counters.boundary_rx += len(inbound)
    if w_end is None:
        executed = runtime.sim.run()
    else:
        executed = runtime.sim.run_until(w_end)
    outbox: List[BoundaryMsg] = []
    for name in sorted(runtime.boundaries):
        boundary = runtime.boundaries[name]
        outbox.extend(
            (name, deliver_time, pkt) for deliver_time, pkt in boundary.outbox
        )
        boundary.outbox.clear()
    counters.sync_rounds += 1
    counters.boundary_tx += len(outbox)
    counters.events_executed += executed
    if executed == 0:
        counters.stall_windows += 1
    counters.wall_s += time.perf_counter() - started
    return outbox, runtime.sim.next_event_time_ps, executed


def _shard_worker_main(conn, builder: ShardBuilder, shard_id: int, builder_args) -> None:
    """Entry point of one persistent shard worker process."""
    try:
        runtime = builder(shard_id, *builder_args)
        counters = ShardCounters(
            shard_id=shard_id,
            switches=len(runtime.network.switches),
            hosts=len(runtime.network.hosts),
        )
        conn.send(("ready", runtime.sim.next_event_time_ps))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "window":
                _, w_end, inbound = message
                conn.send(("ok",) + _run_window(runtime, counters, w_end, inbound))
            elif kind == "finish":
                conn.send(("result", runtime.collect(), counters))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {kind!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass


class _InlineShard:
    """In-process stand-in for a worker: same protocol, no pipe."""

    def __init__(self, builder: ShardBuilder, shard_id: int, builder_args) -> None:
        self.runtime = builder(shard_id, *builder_args)
        self.counters = ShardCounters(
            shard_id=shard_id,
            switches=len(self.runtime.network.switches),
            hosts=len(self.runtime.network.hosts),
        )
        self.next_time = self.runtime.sim.next_event_time_ps

    def start_window(self, w_end: Optional[int], inbound: List[BoundaryMsg]):
        self._reply = _run_window(self.runtime, self.counters, w_end, inbound)

    def finish_window(self):
        outbox, self.next_time, _executed = self._reply
        return outbox

    def result(self) -> Tuple[HostRecords, ShardCounters]:
        return self.runtime.collect(), self.counters

    def close(self) -> None:
        pass


class _ProcessShard:
    """A shard behind a :class:`PersistentWorker` pipe."""

    def __init__(self, builder: ShardBuilder, shard_id: int, builder_args) -> None:
        # Imported lazily so inline mode works without multiprocessing.
        from repro.experiments.parallel import PersistentWorker

        self.worker = PersistentWorker(
            _shard_worker_main, builder, shard_id, builder_args
        )
        kind, self.next_time = self.worker.recv()
        assert kind == "ready"
        self.counters: Optional[ShardCounters] = None

    def start_window(self, w_end: Optional[int], inbound: List[BoundaryMsg]):
        self.worker.send(("window", w_end, inbound))

    def finish_window(self):
        _kind, outbox, self.next_time, _executed = self.worker.recv()
        return outbox

    def result(self) -> Tuple[HostRecords, ShardCounters]:
        self.worker.send(("finish",))
        _kind, records, counters = self.worker.recv()
        return records, counters

    def close(self) -> None:
        self.worker.close()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class ShardRunResult:
    """Everything a sharded run produced."""

    records: HostRecords
    fingerprint: Dict[str, Tuple[int, int, str]]
    stats: ShardStats
    wall_s: float

    @property
    def digest(self) -> str:
        return fingerprint_digest(self.fingerprint)

    def total_received(self) -> int:
        return sum(packets for packets, _, _ in self.fingerprint.values())


class ShardedSimulator:
    """Coordinator for N shard simulators synchronized by lookahead.

    ``builder(shard_id, *builder_args)`` must return a fully scheduled
    :class:`ShardRuntime` for that shard; in ``mode="process"`` it runs
    inside a worker process, so it (and its args) must be picklable.
    ``mode="inline"`` executes every shard in this process — identical
    windows, identical results, no parallelism — which is the mode
    tests and single-core hosts want.
    """

    def __init__(
        self,
        partition: Partition,
        builder: ShardBuilder,
        builder_args: Tuple[Any, ...] = (),
        mode: str = "process",
        max_windows: Optional[int] = None,
    ) -> None:
        if mode not in ("inline", "process"):
            raise ValueError(f"mode must be 'inline' or 'process', got {mode!r}")
        self.partition = partition
        self.builder = builder
        self.builder_args = builder_args
        self.mode = mode
        self.max_windows = max_windows
        self.lookahead_ps = partition.lookahead_ps()
        if partition.edge_cut() and not self.lookahead_ps:
            raise ValueError(
                "conservative sync needs positive lookahead; a boundary "
                "link has zero latency — repartition or increase latencies"
            )
        # link name -> shard id of each endpoint, for outbox routing.
        self._link_shards: Dict[str, Tuple[int, int]] = {
            link.name: (
                partition.assignment[link.node_a],
                partition.assignment[link.node_b],
            )
            for link in partition.cut_links()
        }

    def run(self) -> ShardRunResult:
        started = time.perf_counter()
        shard_cls = _InlineShard if self.mode == "inline" else _ProcessShard
        shards = []
        try:
            shards = [
                shard_cls(self.builder, shard_id, self.builder_args)
                for shard_id in range(self.partition.shards)
            ]
            stats = self._window_loop(shards)
            records: HostRecords = {}
            for shard in shards:
                shard_records, counters = shard.result()
                overlap = set(records) & set(shard_records)
                if overlap:  # pragma: no cover - partition invariant
                    raise RuntimeError(f"hosts in two shards: {sorted(overlap)}")
                records.update(shard_records)
                stats.shards.append(counters)
        finally:
            for shard in shards:
                shard.close()
        return ShardRunResult(
            records=records,
            fingerprint=behavior_fingerprint(records),
            stats=stats,
            wall_s=time.perf_counter() - started,
        )

    def _window_loop(self, shards) -> ShardStats:
        stats = ShardStats(lookahead_ps=self.lookahead_ps or 0)
        # Per-shard inbox of (deliver_time, link name, arrival seq, pkt);
        # the seq keeps the sort total and FIFO per link.
        pending: List[List[Tuple[int, str, int, Packet]]] = [
            [] for _ in shards
        ]
        arrival_seq = 0
        if self.lookahead_ps is None:
            # No cut links: shards are independent components; one
            # unbounded window each finishes the whole run.
            for shard in shards:
                shard.start_window(None, [])
            for shard in shards:
                shard.finish_window()
            stats.windows = 1
            return stats
        while True:
            horizons = [
                shard.next_time for shard in shards
                if shard.next_time is not None
            ]
            horizons.extend(
                entry[0] for inbox in pending for entry in inbox
            )
            if not horizons:
                return stats
            if self.max_windows is not None and stats.windows >= self.max_windows:
                raise RuntimeError(
                    f"sharded run exceeded max_windows={self.max_windows}"
                )
            w_end = min(horizons) + self.lookahead_ps
            for shard, inbox in zip(shards, pending):
                inbox.sort()
                shard.start_window(
                    w_end,
                    [(name, t, pkt) for t, name, _seq, pkt in inbox],
                )
                inbox.clear()
            outboxes = [shard.finish_window() for shard in shards]
            stats.windows += 1
            for shard_id, outbox in enumerate(outboxes):
                for link_name, deliver_time, pkt in outbox:
                    end_a, end_b = self._link_shards[link_name]
                    target = end_b if end_a == shard_id else end_a
                    pending[target].append(
                        (deliver_time, link_name, arrival_seq, pkt)
                    )
                    arrival_seq += 1
