"""Seeded random number generation.

Every stochastic component (workload generators, RED drop decisions,
link failure injectors) takes a :class:`SeededRng` so whole experiments
are reproducible from one integer seed.  Child generators are derived
deterministically by name, so adding a new consumer does not perturb the
streams seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A named, seeded random stream with deterministic children."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def child(self, name: str) -> "SeededRng":
        """Derive an independent stream identified by ``name``."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (mean 1/rate)."""
        return self._rng.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly choose one element."""
        return self._rng.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        """Shuffle ``seq`` in place."""
        self._rng.shuffle(seq)

    def zipf_index(self, n: int, skew: float) -> int:
        """Draw an index in [0, n) from a Zipf distribution with ``skew``.

        Uses inverse-CDF sampling over the truncated Zipf pmf; suitable
        for the heavy-hitter flow popularity used in the monitoring
        benchmarks.  ``skew=0`` degenerates to uniform.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if skew <= 0:
            return self.randint(0, n - 1)
        weights = getattr(self, "_zipf_cache", None)
        if weights is None or weights[0] != (n, skew):
            probs = [1.0 / (i + 1) ** skew for i in range(n)]
            total = sum(probs)
            cdf = []
            acc = 0.0
            for p in probs:
                acc += p / total
                cdf.append(acc)
            weights = ((n, skew), cdf)
            self._zipf_cache = weights
        u = self._rng.random()
        cdf = weights[1]
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self.seed}, name={self.name!r})"
