"""Control plane model.

The paper's comparisons repeatedly pit data-plane event handling
against the traditional control-plane path (CMS resets, failure
re-routing).  :class:`~repro.control.plane.ControlPlane` models that
path: a software agent with a round-trip latency to the switch, a
bounded operation rate, and per-operation accounting.
"""

from repro.control.plane import ControlPlane, ControlPlaneConfig

__all__ = ["ControlPlane", "ControlPlaneConfig"]
