"""A latency- and rate-limited control plane.

Models the PCIe/driver/software path between switch ASIC and
controller:

* every operation (read a register, clear a sketch, install a route)
  costs a round-trip latency,
* bulk operations (clearing a count-min sketch) cost per-element write
  time on top,
* the controller is single-threaded: overlapping work queues up.

This is the overhead the paper wants to *remove* by letting timer and
link events handle periodic and failure work in the data plane.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Tuple

from repro.sim.kernel import Simulator
from repro.sim.units import MICROSECONDS, MILLISECONDS


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Latency parameters of the control path.

    Defaults follow common published figures: tens of microseconds of
    PCIe/driver round trip and per-entry write costs, milliseconds of
    software reaction time for route recomputation.
    """

    rtt_ps: int = 50 * MICROSECONDS
    per_entry_write_ps: int = 2 * MICROSECONDS
    reroute_compute_ps: int = 10 * MILLISECONDS
    failure_detection_ps: int = 100 * MILLISECONDS

    def __post_init__(self) -> None:
        for name in ("rtt_ps", "per_entry_write_ps", "reroute_compute_ps"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class ControlPlane:
    """A single-threaded software controller on the simulator clock."""

    def __init__(
        self,
        sim: Simulator,
        config: ControlPlaneConfig = ControlPlaneConfig(),
        name: str = "controller",
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self._queue: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._busy = False
        self.operations_completed = 0
        self.busy_time_ps = 0
        self.table_updates = 0
        self.digests_received: List[Dict[str, int]] = []

    # ------------------------------------------------------------------
    # Operation submission
    # ------------------------------------------------------------------
    def submit(self, duration_ps: int, action: Callable[[], None]) -> None:
        """Queue an operation taking ``duration_ps`` of controller time."""
        if duration_ps < 0:
            raise ValueError(f"duration must be non-negative, got {duration_ps}")
        self._queue.append((duration_ps, action))
        self._pump()

    def clear_sketch(self, sketch) -> None:
        """Clear a count-min sketch over the control path.

        Cost: one RTT plus a per-counter write — the overhead the paper
        calls "significant ... especially if the data structure must be
        frequently reset".
        """
        duration = (
            self.config.rtt_ps
            + sketch.counter_count * self.config.per_entry_write_ps
        )
        self.submit(duration, sketch.clear)

    def clear_register(self, register) -> None:
        """Clear a register array over the control path."""
        duration = self.config.rtt_ps + register.size * self.config.per_entry_write_ps
        self.submit(duration, register.clear)

    def update_table(self, fn: Callable[[], None], entries: int = 1) -> None:
        """Apply a table mutation over the control path.

        ``fn`` must be a closure over the table's *mutating API*
        (``insert`` / ``remove`` / ``set_default`` / ``update_action``)
        — those bump the table's generation counter, which is what
        invalidates both the per-table lookup memo and any flow-cache
        entries recorded against the old contents.  Mutating a stored
        action object in place bypasses both caches; never do that.
        """
        duration = self.config.rtt_ps + entries * self.config.per_entry_write_ps
        self.table_updates += 1
        self.submit(duration, fn)

    def install_route(self, action: Callable[[], None], entries: int = 1) -> None:
        """Recompute and install routes after a failure notification."""
        duration = (
            self.config.reroute_compute_ps
            + self.config.rtt_ps
            + entries * self.config.per_entry_write_ps
        )
        self.submit(duration, action)

    def receive_digest(self, message: Dict[str, int]) -> None:
        """Sink for switch digests (wire to ``switch.set_cpu_callback``)."""
        self.digests_received.append(dict(message))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        duration, action = self._queue.popleft()
        self.busy_time_ps += duration
        self.sim.call_after(duration, self._finish, action)

    def _finish(self, action: Callable[[], None]) -> None:
        self._busy = False
        action()
        self.operations_completed += 1
        self._pump()

    def utilization(self, duration_ps: int) -> float:
        """Fraction of ``duration_ps`` the controller spent busy."""
        if duration_ps <= 0:
            raise ValueError(f"duration must be positive, got {duration_ps}")
        return min(1.0, self.busy_time_ps / duration_ps)

    @property
    def backlog(self) -> int:
        """Queued operations not yet started."""
        return len(self._queue)

    def __repr__(self) -> str:
        return (
            f"ControlPlane({self.name!r}, done={self.operations_completed}, "
            f"backlog={self.backlog})"
        )
