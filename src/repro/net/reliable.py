"""A simple reliable-delivery protocol for hosts.

Paper §8: "the state machine for a simple reliable delivery protocol is
driven by packet arrivals, packet departures, and timeout events" —
network algorithms are event-driven end to end.  This module provides
that protocol for the simulation's hosts: a sliding-window sender with
per-packet retransmission timers and a cumulative-ACK receiver, both
built on TCP headers (sequence/ack fields, real wire format).

Experiments use it to measure what data-plane failover means for an
*application*: completion time and retransmission counts across a link
failure, under fast re-route vs. control-plane repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.host import Host
from repro.packet.builder import make_tcp_packet
from repro.packet.headers import Tcp
from repro.packet.packet import Packet
from repro.sim.kernel import ScheduledEvent

FLAG_ACK = 0x10


@dataclass
class TransferStats:
    """Sender-side accounting."""

    data_sent: int = 0
    retransmissions: int = 0
    acks_received: int = 0
    completed_at_ps: Optional[int] = None

    @property
    def complete(self) -> bool:
        """True once every sequence number was acknowledged."""
        return self.completed_at_ps is not None


class ReliableSender:
    """Sliding-window sender with per-packet retransmission timers."""

    def __init__(
        self,
        host: Host,
        dst_ip: int,
        total_packets: int,
        window: int = 16,
        timeout_ps: int = 10_000_000_000,  # 10 ms RTO
        payload_len: int = 1_000,
        sport: int = 40_001,
        dport: int = 50_001,
    ) -> None:
        if total_packets <= 0:
            raise ValueError(f"need at least one packet, got {total_packets}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if timeout_ps <= 0:
            raise ValueError(f"timeout must be positive, got {timeout_ps}")
        self.host = host
        self.dst_ip = dst_ip
        self.total_packets = total_packets
        self.window = window
        self.timeout_ps = timeout_ps
        self.payload_len = payload_len
        self.sport = sport
        self.dport = dport
        self.stats = TransferStats()
        self._base = 0  # lowest unacked sequence number
        self._next = 0  # next sequence number to send
        self._timers: Dict[int, ScheduledEvent] = {}
        host.add_sink(self._on_packet)

    def start(self, at_ps: int = 0) -> None:
        """Begin the transfer."""
        self.host.sim.call_at(at_ps, self._fill_window)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        while self._next < self.total_packets and self._next < self._base + self.window:
            self._send(self._next, retransmit=False)
            self._next += 1

    def _send(self, seq: int, retransmit: bool) -> None:
        pkt = make_tcp_packet(
            self.host.ip,
            self.dst_ip,
            sport=self.sport,
            dport=self.dport,
            payload_len=self.payload_len,
            ts_ps=self.host.sim.now_ps,
        )
        pkt.require(Tcp).set(seq=seq)
        self.stats.data_sent += 1
        if retransmit:
            self.stats.retransmissions += 1
        self.host.send(pkt)
        self._arm_timer(seq)

    def _arm_timer(self, seq: int) -> None:
        existing = self._timers.get(seq)
        if existing is not None:
            existing.cancel()
        self._timers[seq] = self.host.sim.call_after(
            self.timeout_ps, self._on_timeout, seq
        )

    def _on_timeout(self, seq: int) -> None:
        if seq < self._base or self.stats.complete:
            return  # already acknowledged
        self._send(seq, retransmit=True)

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        tcp = pkt.get(Tcp)
        if tcp is None or tcp.dport != self.sport or not tcp.flags & FLAG_ACK:
            return
        self.stats.acks_received += 1
        cumulative = tcp.ack  # next sequence the receiver expects
        if cumulative <= self._base:
            return
        for seq in range(self._base, cumulative):
            timer = self._timers.pop(seq, None)
            if timer is not None:
                timer.cancel()
        self._base = cumulative
        if self._base >= self.total_packets:
            if not self.stats.complete:
                self.stats.completed_at_ps = self.host.sim.now_ps
            return
        self._fill_window()


class ReliableReceiver:
    """Cumulative-ACK receiver: acknowledges in-order delivery."""

    def __init__(self, host: Host, sport: int = 50_001) -> None:
        self.host = host
        self.sport = sport
        self.expected = 0
        self.delivered = 0
        self.duplicates = 0
        self.out_of_order = 0
        self._buffer: Dict[int, bool] = {}
        host.add_sink(self._on_packet)

    def _on_packet(self, pkt: Packet) -> None:
        tcp = pkt.get(Tcp)
        if tcp is None or tcp.dport != self.sport or tcp.flags & FLAG_ACK:
            return
        seq = tcp.seq
        if seq < self.expected:
            self.duplicates += 1
        elif seq == self.expected:
            self.expected += 1
            self.delivered += 1
            while self._buffer.pop(self.expected, None):
                self.expected += 1
                self.delivered += 1
        else:
            self.out_of_order += 1
            self._buffer[seq] = True
        self._ack(pkt)

    def _ack(self, data_pkt: Packet) -> None:
        tcp = data_pkt.require(Tcp)
        from repro.packet.headers import Ipv4

        ip = data_pkt.require(Ipv4)
        ack = make_tcp_packet(
            self.host.ip,
            ip.src,
            sport=self.sport,
            dport=tcp.sport,
            payload_len=0,
            ts_ps=self.host.sim.now_ps,
            flags=FLAG_ACK,
        )
        ack.require(Tcp).set(ack=self.expected)
        self.host.send(ack)
