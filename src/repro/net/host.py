"""End hosts.

A :class:`Host` has one NIC (port 0) attached to a link, a send path
with NIC-rate serialization and a small transmit queue, and a receive
path that fans out to registered sinks.  Traffic applications
(:mod:`repro.workloads`) drive :meth:`send`; measurement code registers
sinks to observe arrivals.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List

from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.units import bytes_to_time_ps

Sink = Callable[[Packet], None]


class Host:
    """A traffic-sourcing and -sinking endpoint."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: int,
        nic_rate_gbps: float = 10.0,
        tx_queue_packets: int = 1024,
    ) -> None:
        if nic_rate_gbps <= 0:
            raise ValueError(f"NIC rate must be positive, got {nic_rate_gbps}")
        self.sim = sim
        self.name = name
        self.ip = ip
        self.nic_rate_gbps = nic_rate_gbps
        self.tx_queue_packets = tx_queue_packets
        self._link = None  # set by Network.connect
        self._tx_queue: Deque[Packet] = deque()
        self._tx_busy = False
        self._sinks: List[Sink] = []
        self.sent_packets = 0
        self.sent_bytes = 0
        self.received_packets = 0
        self.received_bytes = 0
        self.tx_drops = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_link(self, link) -> None:
        """Called by the network when connecting this host."""
        if self._link is not None:
            raise RuntimeError(f"host {self.name!r} already attached")
        self._link = link

    def add_sink(self, sink: Sink) -> None:
        """Register a receive observer."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Queue ``pkt`` for transmission; False if the NIC queue is full."""
        if self._link is None:
            raise RuntimeError(f"host {self.name!r} is not attached to a link")
        if len(self._tx_queue) >= self.tx_queue_packets:
            self.tx_drops += 1
            return False
        self._tx_queue.append(pkt)
        self._pump()
        return True

    def _pump(self) -> None:
        if self._tx_busy or not self._tx_queue:
            return
        self._tx_busy = True
        pkt = self._tx_queue.popleft()
        tx_ps = bytes_to_time_ps(pkt.wire_len, self.nic_rate_gbps)
        self.sim.call_after(tx_ps, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self._tx_busy = False
        self.sent_packets += 1
        self.sent_bytes += pkt.total_len
        self._link.transmit_from(self, pkt)
        self._pump()

    # ------------------------------------------------------------------
    # Receive path (LinkEndpoint interface)
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, port: int) -> None:
        """A packet arrives from the link."""
        self.received_packets += 1
        self.received_bytes += pkt.total_len
        for sink in self._sinks:
            sink(pkt)

    def set_link_status(self, port: int, up: bool) -> None:
        """Hosts ignore link transitions (no data-plane program)."""

    def __repr__(self) -> str:
        return (
            f"Host({self.name!r}, ip={self.ip:#010x}, "
            f"sent={self.sent_packets}, recv={self.received_packets})"
        )
