"""Wiring switches, hosts, and links into a network.

:class:`Network` owns the simulator, the nodes, and the links.  It
routes each switch's transmit callback to the right link by output
port, exposes a networkx graph view for route computation, and provides
failure-injection helpers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.arch.base import SwitchBase
from repro.net.host import Host
from repro.net.link import Link
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator


class _SwitchTx:
    """A switch's transmit callback: route to the link on that port.

    A named class (not a closure) so a wired network stays picklable
    for whole-simulator checkpoints.
    """

    __slots__ = ("network", "switch")

    def __init__(self, network: "Network", switch: SwitchBase) -> None:
        self.network = network
        self.switch = switch

    def __call__(self, pkt: Packet, port: int) -> None:
        link = self.network._switch_port_links.get((self.switch.name, port))
        if link is None:
            return  # unconnected port: packet leaves the simulation
        link.transmit_from(self.switch, pkt)

    def __getstate__(self):
        return (self.network, self.switch)

    def __setstate__(self, state) -> None:
        self.network, self.switch = state


class Network:
    """A simulated network of switches, hosts, and links."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim or Simulator()
        self.switches: Dict[str, SwitchBase] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: List[Link] = []
        # (switch name, port) -> link
        self._switch_port_links: Dict[Tuple[str, int], Link] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, switch: SwitchBase) -> SwitchBase:
        """Register a switch and wire its transmit path."""
        if switch.name in self.switches:
            raise ValueError(f"duplicate switch name {switch.name!r}")
        self.switches[switch.name] = switch
        switch.set_tx_callback(_SwitchTx(self, switch))
        return switch

    def add_host(self, host: Host) -> Host:
        """Register a host."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        return host

    def connect(
        self,
        node_a,
        port_a: int,
        node_b,
        port_b: int,
        latency_ps: int = 1_000_000,
        name: Optional[str] = None,
    ) -> Link:
        """Create a link between two registered nodes."""
        link_name = name or f"{self._node_name(node_a)}:{port_a}-{self._node_name(node_b)}:{port_b}"
        link = Link(self.sim, node_a, port_a, node_b, port_b, latency_ps, link_name)
        self.links.append(link)
        for node, port in ((node_a, port_a), (node_b, port_b)):
            if isinstance(node, SwitchBase):
                key = (node.name, port)
                if key in self._switch_port_links:
                    raise ValueError(f"switch port {key} already connected")
                self._switch_port_links[key] = link
            elif isinstance(node, Host):
                node.attach_link(link)
            else:
                raise TypeError(f"cannot connect node of type {type(node)}")
        return link

    def attach_boundary(self, node, port: int, link: Link) -> Link:
        """Register a link whose far end lives outside this network.

        The shard engine's entry point: ``link`` is typically a
        :class:`~repro.sim.shard.BoundaryLink` proxy already carrying
        both endpoints, so only the local side is wired — the switch
        transmit map or the host NIC — and no second endpoint is
        touched.  ``node`` must already be registered here.
        """
        self.links.append(link)
        if isinstance(node, SwitchBase):
            if node.name not in self.switches:
                raise ValueError(f"unknown switch {node.name!r}")
            key = (node.name, port)
            if key in self._switch_port_links:
                raise ValueError(f"switch port {key} already connected")
            self._switch_port_links[key] = link
        elif isinstance(node, Host):
            if node.name not in self.hosts:
                raise ValueError(f"unknown host {node.name!r}")
            node.attach_link(link)
        else:
            raise TypeError(f"cannot attach node of type {type(node)}")
        return link

    def _node_name(self, node) -> str:
        return getattr(node, "name", repr(node))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def link_between(self, name_a: str, name_b: str) -> Optional[Link]:
        """The first link joining two named nodes, or None."""
        for link in self.links:
            ends = {self._node_name(link.node_a), self._node_name(link.node_b)}
            if ends == {name_a, name_b}:
                return link
        return None

    def port_towards(self, switch_name: str, neighbor_name: str) -> Optional[int]:
        """The port of ``switch_name`` facing ``neighbor_name``, or None."""
        for (name, port), link in self._switch_port_links.items():
            if name != switch_name:
                continue
            if self._node_name(link.other_end(self.switches[switch_name])) == neighbor_name:
                return port
        return None

    def graph(self) -> "nx.Graph":
        """A networkx view (nodes are names; edges carry the Link)."""
        graph = nx.Graph()
        for name in self.switches:
            graph.add_node(name, kind="switch")
        for name in self.hosts:
            graph.add_node(name, kind="host")
        for link in self.links:
            graph.add_edge(
                self._node_name(link.node_a),
                self._node_name(link.node_b),
                link=link,
                latency_ps=link.latency_ps,
            )
        return graph

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Advance the shared simulator."""
        return self.sim.run(until_ps=until_ps, max_events=max_events)

    def __repr__(self) -> str:
        return (
            f"Network({len(self.switches)} switches, {len(self.hosts)} hosts, "
            f"{len(self.links)} links)"
        )
