"""Deterministic topology partitioning for sharded simulation.

:func:`partition_spec` splits a :class:`~repro.net.topology.TopologySpec`
into ``shards`` disjoint node sets with explicit boundary links.  Two
strategies, both fully deterministic (no RNG, no hash randomization):

* ``"pod"`` — pods map to shards in contiguous blocks using the
  builder's ``meta["pod_of"]`` map (fat-tree pods, leaf-spine leaves);
  pod-less switches (fat-tree cores, leaf-spine spines) round-robin
  across shards.  This is the minimum-cut partition for fat trees: only
  agg↔core links cross shards.
* ``"bfs"`` — breadth-first layering from a deterministic root (the
  highest-degree switch, ties broken by name) chopped into contiguous,
  near-equal chunks; keeps graph neighborhoods together on topologies
  without pod structure.

Invariants the sharded engine relies on (and the tests assert):

* every node lands in exactly one shard and every shard is non-empty,
* hosts are co-located with the switch they attach to, so every
  boundary link is switch↔switch,
* repeated partitions of equal specs produce identical assignments and
  edge cuts — the partition is part of the deterministic behavior
  contract, not a tuning knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology re-exports us)
    from repro.net.topology import LinkSpec, TopologySpec

#: Strategies :func:`partition_spec` understands.
PARTITION_STRATEGIES = ("auto", "pod", "bfs")


@dataclass
class Partition:
    """A deterministic split of a topology spec into shards."""

    spec: "TopologySpec"
    shards: int
    strategy: str
    #: node name -> shard id, covering every node of the spec.
    assignment: Dict[str, int] = field(default_factory=dict)

    def shard_nodes(self, shard_id: int) -> List[str]:
        """Node names of one shard, in spec (realization) order."""
        return [
            name for name in self.spec.nodes
            if self.assignment[name] == shard_id
        ]

    def boundary_links(self, shard_id: int) -> List["LinkSpec"]:
        """Links with exactly one endpoint inside ``shard_id``."""
        out = []
        for link in self.spec.links:
            in_a = self.assignment[link.node_a] == shard_id
            in_b = self.assignment[link.node_b] == shard_id
            if in_a != in_b:
                out.append(link)
        return out

    def cut_links(self) -> List["LinkSpec"]:
        """Every link crossing a shard boundary."""
        return [
            link for link in self.spec.links
            if self.assignment[link.node_a] != self.assignment[link.node_b]
        ]

    def edge_cut(self) -> int:
        """Number of links crossing shard boundaries."""
        return len(self.cut_links())

    def lookahead_ps(self) -> Optional[int]:
        """The conservative lookahead: minimum boundary-link latency.

        None when nothing crosses shards (single-shard partitions).
        """
        cut = self.cut_links()
        return min(link.latency_ps for link in cut) if cut else None

    def summary_rows(self) -> List[str]:
        """Printable per-shard rows for the ``repro shard`` CLI."""
        rows = [
            f"{'shard':<6}{'switches':>9}{'hosts':>7}{'boundary links':>16}"
        ]
        for shard_id in range(self.shards):
            nodes = self.shard_nodes(shard_id)
            switches = sum(
                1 for n in nodes if self.spec.nodes[n].kind == "switch"
            )
            hosts = len(nodes) - switches
            rows.append(
                f"{shard_id:<6}{switches:>9}{hosts:>7}"
                f"{len(self.boundary_links(shard_id)):>16}"
            )
        lookahead = self.lookahead_ps()
        rows.append(
            f"edge cut {self.edge_cut()} link(s), lookahead "
            f"{lookahead if lookahead is not None else '∞'} ps "
            f"(strategy={self.strategy})"
        )
        return rows

    def __repr__(self) -> str:
        return (
            f"Partition({self.spec.name!r}, shards={self.shards}, "
            f"strategy={self.strategy!r}, cut={self.edge_cut()})"
        )


def _adjacency(spec: "TopologySpec") -> Dict[str, List[str]]:
    adj: Dict[str, List[str]] = {name: [] for name in spec.nodes}
    for link in spec.links:
        adj[link.node_a].append(link.node_b)
        adj[link.node_b].append(link.node_a)
    return adj


def _attach_hosts(spec: "TopologySpec", assignment: Dict[str, int]) -> None:
    """Co-locate every host with the switch its link attaches to."""
    for link in spec.links:
        a, b = spec.nodes[link.node_a], spec.nodes[link.node_b]
        if a.kind == "host" and b.kind == "switch":
            assignment[a.name] = assignment[b.name]
        elif b.kind == "host" and a.kind == "switch":
            assignment[b.name] = assignment[a.name]


def _partition_pod(spec: "TopologySpec", shards: int) -> Dict[str, int]:
    pod_of = spec.meta.get("pod_of")
    if not isinstance(pod_of, dict):
        raise ValueError(
            f"spec {spec.name!r} has no pod metadata; use strategy='bfs'"
        )
    pods = sorted({p for p in pod_of.values() if p is not None})
    if shards > len(pods):
        raise ValueError(
            f"cannot split {len(pods)} pod(s) into {shards} shard(s); "
            "use strategy='bfs' for finer partitions"
        )
    pod_shard = {pod: pod_index * shards // len(pods) for pod_index, pod in enumerate(pods)}
    assignment: Dict[str, int] = {}
    podless = 0
    for name, node in spec.nodes.items():
        if node.kind != "switch":
            continue
        pod = pod_of.get(name)
        if pod is None:
            assignment[name] = podless % shards
            podless += 1
        else:
            assignment[name] = pod_shard[pod]
    _attach_hosts(spec, assignment)
    return assignment


def _bfs_order(spec: "TopologySpec") -> List[str]:
    """Deterministic BFS discovery order over the switch graph."""
    adj = _adjacency(spec)
    switches = spec.switch_names()
    degree = {name: len(adj[name]) for name in switches}
    order: List[str] = []
    seen = set()
    remaining = set(switches)
    while remaining:  # disconnected specs still get a full order
        root = max(sorted(remaining), key=lambda n: degree[n])
        frontier = [root]
        seen.add(root)
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            remaining.discard(node)
            for neighbor in sorted(adj[node]):
                if neighbor in seen or spec.nodes[neighbor].kind != "switch":
                    continue
                seen.add(neighbor)
                frontier.append(neighbor)
    return order


def _partition_bfs(spec: "TopologySpec", shards: int) -> Dict[str, int]:
    order = _bfs_order(spec)
    total = len(order)
    assignment: Dict[str, int] = {}
    for index, name in enumerate(order):
        # Contiguous near-equal chunks over the BFS order: neighbors in
        # the traversal stay in the same shard, approximating a min cut
        # on layered fabrics.
        assignment[name] = index * shards // total
    _attach_hosts(spec, assignment)
    return assignment


def partition_spec(
    spec: "TopologySpec", shards: int, strategy: str = "auto"
) -> Partition:
    """Split ``spec`` into ``shards`` deterministic shard node sets.

    ``strategy="auto"`` prefers the pod partition when the builder
    recorded pod metadata and the pod count allows it, falling back to
    BFS chunking otherwise.
    """
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; pick one of {PARTITION_STRATEGIES}"
        )
    switch_count = len(spec.switch_names())
    if shards < 1:
        raise ValueError(f"shard count must be positive, got {shards}")
    if shards > switch_count:
        raise ValueError(
            f"cannot split {switch_count} switch(es) into {shards} shard(s)"
        )
    chosen = strategy
    if strategy == "auto":
        pod_of = spec.meta.get("pod_of")
        pods = (
            {p for p in pod_of.values() if p is not None}
            if isinstance(pod_of, dict)
            else set()
        )
        chosen = "pod" if len(pods) >= shards else "bfs"
    if chosen == "pod":
        assignment = _partition_pod(spec, shards)
    else:
        assignment = _partition_bfs(spec, shards)
    missing = set(spec.nodes) - set(assignment)
    if missing:
        raise ValueError(
            f"partition left {len(missing)} node(s) unassigned "
            f"(e.g. {sorted(missing)[:3]}); is a host attached to a host?"
        )
    partition = Partition(
        spec=spec, shards=shards, strategy=chosen, assignment=assignment
    )
    for shard_id in range(shards):
        if not partition.shard_nodes(shard_id):
            raise ValueError(
                f"strategy {chosen!r} produced an empty shard {shard_id} "
                f"for {spec.name!r}; reduce the shard count"
            )
    return partition
