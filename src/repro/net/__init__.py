"""Network substrate: links, hosts, topologies, and routing.

Multi-switch applications (HULA load balancing, fast re-route, liveness
monitoring) need a network around the switch: links with bandwidth,
propagation delay and failures; hosts that source and sink traffic; and
topology builders with route computation.  Everything runs on the same
shared :class:`~repro.sim.kernel.Simulator` as the switches.
"""

from repro.net.link import Link
from repro.net.host import Host
from repro.net.network import Network
from repro.net.reliable import ReliableReceiver, ReliableSender
from repro.net.routing import all_pairs_ports, shortest_path_ports
from repro.net.topology import (
    build_dumbbell,
    build_leaf_spine,
    build_linear,
    LeafSpine,
)

__all__ = [
    "Link",
    "Host",
    "Network",
    "ReliableSender",
    "ReliableReceiver",
    "build_linear",
    "build_dumbbell",
    "build_leaf_spine",
    "LeafSpine",
    "shortest_path_ports",
    "all_pairs_ports",
]
