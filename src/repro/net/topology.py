"""Topology builders.

Each builder assembles a :class:`~repro.net.network.Network` from a
caller-supplied *switch factory* — ``factory(sim, name, port_count)`` —
so the same topology can be instantiated with baseline PSA switches,
logical event-driven switches, or SUME Event Switches for side-by-side
experiments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.arch.base import SwitchBase
from repro.arch.description import ArchitectureDescription
from repro.net.host import Host
from repro.net.network import Network
from repro.sim.kernel import Simulator

SwitchFactory = Callable[[Simulator, str, int], SwitchBase]


def with_ports(description: ArchitectureDescription, port_count: int) -> ArchitectureDescription:
    """A copy of ``description`` with a different port count."""
    return dataclasses.replace(description, port_count=port_count)


def _host_ip(index: int) -> int:
    """10.0.x.y addressing for generated hosts."""
    return 0x0A00_0000 + index + 1


def build_linear(
    factory: SwitchFactory,
    switch_count: int = 3,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> Network:
    """A chain: host h0 — s0 — s1 — … — s(n−1) — host h1.

    Switch ports: 0 faces the previous hop, 1 the next hop.
    """
    if switch_count < 1:
        raise ValueError(f"need at least one switch, got {switch_count}")
    network = Network(sim)
    switches = [
        network.add_switch(factory(network.sim, f"s{i}", 2)) for i in range(switch_count)
    ]
    h0 = network.add_host(Host(network.sim, "h0", _host_ip(0)))
    h1 = network.add_host(Host(network.sim, "h1", _host_ip(1)))
    network.connect(h0, 0, switches[0], 0, latency_ps=link_latency_ps)
    for left, right in zip(switches, switches[1:]):
        network.connect(left, 1, right, 0, latency_ps=link_latency_ps)
    network.connect(switches[-1], 1, h1, 0, latency_ps=link_latency_ps)
    return network


def build_dumbbell(
    factory: SwitchFactory,
    senders: int = 4,
    receivers: int = 1,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> Network:
    """The classic dumbbell: N senders → s0 — s1 → M receivers.

    The s0→s1 link is the bottleneck.  Sender hosts are ``tx0..``,
    receivers ``rx0..``.  On s0, port 0 faces s1 and ports 1.. face the
    senders; on s1, port 0 faces s0 and ports 1.. face receivers.
    """
    if senders < 1 or receivers < 1:
        raise ValueError("need at least one sender and one receiver")
    network = Network(sim)
    s0 = network.add_switch(factory(network.sim, "s0", senders + 1))
    s1 = network.add_switch(factory(network.sim, "s1", receivers + 1))
    network.connect(s0, 0, s1, 0, latency_ps=link_latency_ps)
    for i in range(senders):
        host = network.add_host(Host(network.sim, f"tx{i}", _host_ip(i)))
        network.connect(host, 0, s0, i + 1, latency_ps=link_latency_ps)
    for i in range(receivers):
        host = network.add_host(Host(network.sim, f"rx{i}", _host_ip(100 + i)))
        network.connect(host, 0, s1, i + 1, latency_ps=link_latency_ps)
    return network


@dataclass
class LeafSpine:
    """A built leaf-spine fabric and its wiring maps."""

    network: Network
    leaves: List[SwitchBase]
    spines: List[SwitchBase]
    hosts: Dict[str, List[Host]] = field(default_factory=dict)
    #: leaf name -> list of spine-facing ports (index = spine index).
    uplink_ports: Dict[str, List[int]] = field(default_factory=dict)
    #: spine name -> list of leaf-facing ports (index = leaf index).
    downlink_ports: Dict[str, List[int]] = field(default_factory=dict)
    #: leaf name -> first host-facing port.
    host_port_base: Dict[str, int] = field(default_factory=dict)


def build_leaf_spine(
    factory: SwitchFactory,
    leaf_count: int = 2,
    spine_count: int = 2,
    hosts_per_leaf: int = 2,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> LeafSpine:
    """A leaf-spine fabric (the HULA evaluation topology shape).

    Leaf ports 0..spine_count−1 are uplinks (port j to spine j); ports
    spine_count.. face hosts.  Spine ports 0..leaf_count−1 face leaves
    (port i to leaf i).  Hosts are named ``h<leaf>_<i>``.
    """
    if leaf_count < 1 or spine_count < 1:
        raise ValueError("need at least one leaf and one spine")
    network = Network(sim)
    leaves = [
        network.add_switch(factory(network.sim, f"leaf{i}", spine_count + hosts_per_leaf))
        for i in range(leaf_count)
    ]
    spines = [
        network.add_switch(factory(network.sim, f"spine{j}", leaf_count))
        for j in range(spine_count)
    ]
    fabric = LeafSpine(network=network, leaves=leaves, spines=spines)
    for leaf_index, leaf in enumerate(leaves):
        fabric.uplink_ports[leaf.name] = list(range(spine_count))
        fabric.host_port_base[leaf.name] = spine_count
        for spine_index, spine in enumerate(spines):
            network.connect(
                leaf, spine_index, spine, leaf_index, latency_ps=link_latency_ps
            )
        fabric.hosts[leaf.name] = []
        for host_index in range(hosts_per_leaf):
            host = Host(
                network.sim,
                f"h{leaf_index}_{host_index}",
                _host_ip(leaf_index * hosts_per_leaf + host_index),
            )
            network.add_host(host)
            network.connect(
                host, 0, leaf, spine_count + host_index, latency_ps=link_latency_ps
            )
            fabric.hosts[leaf.name].append(host)
    for spine_index, spine in enumerate(spines):
        fabric.downlink_ports[spine.name] = list(range(leaf_count))
    return fabric
