"""Topology builders.

Each builder assembles a :class:`~repro.net.network.Network` from a
caller-supplied *switch factory* — ``factory(sim, name, port_count)`` —
so the same topology can be instantiated with baseline PSA switches,
logical event-driven switches, or SUME Event Switches for side-by-side
experiments.

Datacenter-scale fabrics additionally exist as pure-data
:class:`TopologySpec` values (:func:`leaf_spine_spec`,
:func:`fat_tree_spec`): a spec describes every node and link without
instantiating anything, so the sharded engine can partition it
(:func:`partition_spec`), ship the pieces to worker processes, and have
each worker :func:`realize` only its own shard.  :func:`realize` on the
full spec and a shard-wise realization of the same spec are
behaviorally identical by construction — they wire the same names,
ports, and latencies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.arch.base import SwitchBase
from repro.arch.description import ArchitectureDescription
from repro.net.host import Host
from repro.net.network import Network
from repro.sim.kernel import Simulator

SwitchFactory = Callable[[Simulator, str, int], SwitchBase]


def with_ports(description: ArchitectureDescription, port_count: int) -> ArchitectureDescription:
    """A copy of ``description`` with a different port count."""
    return dataclasses.replace(description, port_count=port_count)


def _host_ip(index: int) -> int:
    """10.0.x.y addressing for generated hosts."""
    return 0x0A00_0000 + index + 1


# ----------------------------------------------------------------------
# Pure-data topology specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeSpec:
    """One node of a :class:`TopologySpec` (no simulator objects)."""

    name: str
    kind: str  # "switch" | "host"
    port_count: int = 1
    ip: int = 0  # hosts only


@dataclass(frozen=True)
class LinkSpec:
    """One link of a :class:`TopologySpec`; endpoints are node names."""

    node_a: str
    port_a: int
    node_b: str
    port_b: int
    latency_ps: int = 1_000_000

    @property
    def name(self) -> str:
        return f"{self.node_a}:{self.port_a}-{self.node_b}:{self.port_b}"

    def other_end(self, node: str) -> Tuple[str, int]:
        """(peer name, peer port) opposite ``node``."""
        if node == self.node_a:
            return self.node_b, self.port_b
        if node == self.node_b:
            return self.node_a, self.port_a
        raise ValueError(f"{node!r} is not an endpoint of {self.name!r}")


@dataclass
class TopologySpec:
    """A whole fabric as data: nodes, links, and builder metadata.

    ``nodes`` preserves insertion order (realization order), ``meta``
    carries builder facts the partitioner and routing helpers use —
    e.g. ``{"kind": "fattree", "k": 8, "pod_of": {name: pod|None}}``.
    Specs are plain picklable data, so shard workers rebuild their
    slice of the fabric from the same spec the coordinator partitioned.
    """

    name: str
    nodes: Dict[str, NodeSpec] = field(default_factory=dict)
    links: List[LinkSpec] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def add_switch(self, name: str, port_count: int) -> None:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        self.nodes[name] = NodeSpec(name, "switch", port_count)

    def add_host(self, name: str, ip: int) -> None:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        self.nodes[name] = NodeSpec(name, "host", 1, ip)

    def add_link(
        self, node_a: str, port_a: int, node_b: str, port_b: int, latency_ps: int
    ) -> None:
        for node in (node_a, node_b):
            if node not in self.nodes:
                raise ValueError(f"link references unknown node {node!r}")
        self.links.append(LinkSpec(node_a, port_a, node_b, port_b, latency_ps))

    def switch_names(self) -> List[str]:
        return [n for n, spec in self.nodes.items() if spec.kind == "switch"]

    def host_names(self) -> List[str]:
        return [n for n, spec in self.nodes.items() if spec.kind == "host"]

    def host_ips(self) -> Dict[str, int]:
        """host name → IP for every host in the spec."""
        return {
            n: spec.ip for n, spec in self.nodes.items() if spec.kind == "host"
        }

    def links_of(self, node: str) -> List[LinkSpec]:
        return [l for l in self.links if node in (l.node_a, l.node_b)]

    def __repr__(self) -> str:
        return (
            f"TopologySpec({self.name!r}, "
            f"{len(self.switch_names())} switches, "
            f"{len(self.host_names())} hosts, {len(self.links)} links)"
        )


def realize(
    spec: TopologySpec,
    factory: SwitchFactory,
    sim: Optional[Simulator] = None,
    only_nodes: Optional[Iterable[str]] = None,
) -> Network:
    """Instantiate (part of) a :class:`TopologySpec` as a live Network.

    ``only_nodes`` restricts realization to a node subset — the shard
    worker's path: nodes outside the subset are not built, and links
    with exactly one endpoint inside are *skipped* (the caller wires
    boundary proxies for them; see :mod:`repro.sim.shard`).  With
    ``only_nodes=None`` the whole spec is built.
    """
    local = set(spec.nodes) if only_nodes is None else set(only_nodes)
    unknown = local - set(spec.nodes)
    if unknown:
        raise ValueError(f"unknown node(s) in subset: {sorted(unknown)}")
    network = Network(sim)
    for name, node in spec.nodes.items():
        if name not in local:
            continue
        if node.kind == "switch":
            network.add_switch(factory(network.sim, name, node.port_count))
        else:
            network.add_host(Host(network.sim, name, node.ip))
    nodes_by_name = {**network.switches, **network.hosts}
    for link in spec.links:
        if link.node_a in local and link.node_b in local:
            network.connect(
                nodes_by_name[link.node_a],
                link.port_a,
                nodes_by_name[link.node_b],
                link.port_b,
                latency_ps=link.latency_ps,
            )
    return network


def build_linear(
    factory: SwitchFactory,
    switch_count: int = 3,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> Network:
    """A chain: host h0 — s0 — s1 — … — s(n−1) — host h1.

    Switch ports: 0 faces the previous hop, 1 the next hop.
    """
    if switch_count < 1:
        raise ValueError(f"need at least one switch, got {switch_count}")
    network = Network(sim)
    switches = [
        network.add_switch(factory(network.sim, f"s{i}", 2)) for i in range(switch_count)
    ]
    h0 = network.add_host(Host(network.sim, "h0", _host_ip(0)))
    h1 = network.add_host(Host(network.sim, "h1", _host_ip(1)))
    network.connect(h0, 0, switches[0], 0, latency_ps=link_latency_ps)
    for left, right in zip(switches, switches[1:]):
        network.connect(left, 1, right, 0, latency_ps=link_latency_ps)
    network.connect(switches[-1], 1, h1, 0, latency_ps=link_latency_ps)
    return network


def build_dumbbell(
    factory: SwitchFactory,
    senders: int = 4,
    receivers: int = 1,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> Network:
    """The classic dumbbell: N senders → s0 — s1 → M receivers.

    The s0→s1 link is the bottleneck.  Sender hosts are ``tx0..``,
    receivers ``rx0..``.  On s0, port 0 faces s1 and ports 1.. face the
    senders; on s1, port 0 faces s0 and ports 1.. face receivers.
    """
    if senders < 1 or receivers < 1:
        raise ValueError("need at least one sender and one receiver")
    network = Network(sim)
    s0 = network.add_switch(factory(network.sim, "s0", senders + 1))
    s1 = network.add_switch(factory(network.sim, "s1", receivers + 1))
    network.connect(s0, 0, s1, 0, latency_ps=link_latency_ps)
    for i in range(senders):
        host = network.add_host(Host(network.sim, f"tx{i}", _host_ip(i)))
        network.connect(host, 0, s0, i + 1, latency_ps=link_latency_ps)
    for i in range(receivers):
        host = network.add_host(Host(network.sim, f"rx{i}", _host_ip(100 + i)))
        network.connect(host, 0, s1, i + 1, latency_ps=link_latency_ps)
    return network


@dataclass
class LeafSpine:
    """A built leaf-spine fabric and its wiring maps."""

    network: Network
    leaves: List[SwitchBase]
    spines: List[SwitchBase]
    hosts: Dict[str, List[Host]] = field(default_factory=dict)
    #: leaf name -> list of spine-facing ports (index = spine index).
    uplink_ports: Dict[str, List[int]] = field(default_factory=dict)
    #: spine name -> list of leaf-facing ports (index = leaf index).
    downlink_ports: Dict[str, List[int]] = field(default_factory=dict)
    #: leaf name -> first host-facing port.
    host_port_base: Dict[str, int] = field(default_factory=dict)


def leaf_spine_spec(
    leaf_count: int = 2,
    spine_count: int = 2,
    hosts_per_leaf: int = 2,
    link_latency_ps: int = 1_000_000,
) -> TopologySpec:
    """The leaf-spine fabric as pure data (see :func:`build_leaf_spine`).

    Names, ports, and wiring order match :func:`build_leaf_spine`
    exactly — that builder is just ``realize`` over this spec.
    """
    if leaf_count < 1:
        raise ValueError(f"need at least one leaf switch, got {leaf_count}")
    if spine_count < 1:
        raise ValueError(f"need at least one spine switch, got {spine_count}")
    if hosts_per_leaf < 1:
        raise ValueError(f"need at least one host per leaf, got {hosts_per_leaf}")
    if link_latency_ps <= 0:
        raise ValueError(f"link latency must be positive, got {link_latency_ps}")
    spec = TopologySpec(
        name=f"leafspine-{leaf_count}x{spine_count}",
        meta={
            "kind": "leafspine",
            "leaf_count": leaf_count,
            "spine_count": spine_count,
            "hosts_per_leaf": hosts_per_leaf,
        },
    )
    for i in range(leaf_count):
        spec.add_switch(f"leaf{i}", spine_count + hosts_per_leaf)
    for j in range(spine_count):
        spec.add_switch(f"spine{j}", leaf_count)
    pod_of: Dict[str, Optional[int]] = {f"spine{j}": None for j in range(spine_count)}
    for leaf_index in range(leaf_count):
        pod_of[f"leaf{leaf_index}"] = leaf_index
        for spine_index in range(spine_count):
            spec.add_link(
                f"leaf{leaf_index}", spine_index,
                f"spine{spine_index}", leaf_index,
                link_latency_ps,
            )
        for host_index in range(hosts_per_leaf):
            host = f"h{leaf_index}_{host_index}"
            spec.add_host(host, _host_ip(leaf_index * hosts_per_leaf + host_index))
            spec.add_link(
                host, 0,
                f"leaf{leaf_index}", spine_count + host_index,
                link_latency_ps,
            )
            pod_of[host] = leaf_index
    spec.meta["pod_of"] = pod_of
    return spec


def build_leaf_spine(
    factory: SwitchFactory,
    leaf_count: int = 2,
    spine_count: int = 2,
    hosts_per_leaf: int = 2,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> LeafSpine:
    """A leaf-spine fabric (the HULA evaluation topology shape).

    Leaf ports 0..spine_count−1 are uplinks (port j to spine j); ports
    spine_count.. face hosts.  Spine ports 0..leaf_count−1 face leaves
    (port i to leaf i).  Hosts are named ``h<leaf>_<i>``.  Degenerate
    parameters (zero leaves, spines, or hosts) raise ``ValueError``.
    """
    spec = leaf_spine_spec(
        leaf_count=leaf_count,
        spine_count=spine_count,
        hosts_per_leaf=hosts_per_leaf,
        link_latency_ps=link_latency_ps,
    )
    network = realize(spec, factory, sim=sim)
    leaves = [network.switches[f"leaf{i}"] for i in range(leaf_count)]
    spines = [network.switches[f"spine{j}"] for j in range(spine_count)]
    fabric = LeafSpine(network=network, leaves=leaves, spines=spines)
    for leaf_index, leaf in enumerate(leaves):
        fabric.uplink_ports[leaf.name] = list(range(spine_count))
        fabric.host_port_base[leaf.name] = spine_count
        fabric.hosts[leaf.name] = [
            network.hosts[f"h{leaf_index}_{host_index}"]
            for host_index in range(hosts_per_leaf)
        ]
    for spine in spines:
        fabric.downlink_ports[spine.name] = list(range(leaf_count))
    return fabric


# ----------------------------------------------------------------------
# k-ary fat tree (Al-Fahoum/Clos parameterization used by P4-era fabrics)
# ----------------------------------------------------------------------
@dataclass
class FatTree:
    """A built fat-tree fabric and its wiring maps."""

    network: Network
    spec: TopologySpec
    #: pod index -> edge switches (each with k/2 host ports).
    edges: Dict[int, List[SwitchBase]] = field(default_factory=dict)
    #: pod index -> aggregation switches.
    aggs: Dict[int, List[SwitchBase]] = field(default_factory=dict)
    cores: List[SwitchBase] = field(default_factory=list)
    #: pod index -> hosts in that pod.
    hosts: Dict[int, List[Host]] = field(default_factory=dict)


def fat_tree_spec(k: int = 4, link_latency_ps: int = 1_000_000) -> TopologySpec:
    """A k-ary fat tree as pure data.

    ``k`` pods of ``k/2`` edge and ``k/2`` aggregation switches each,
    ``(k/2)^2`` core switches, and ``k/2`` hosts per edge switch:
    ``5k^2/4`` switches and ``k^3/4`` hosts total (k=8 → 80 switches,
    128 hosts).  Port conventions:

    * edge ``edge<p>_<e>``: ports 0..k/2−1 face aggs (port a → agg a),
      ports k/2..k−1 face hosts;
    * agg ``agg<p>_<a>``: ports 0..k/2−1 face edges (port e → edge e),
      ports k/2..k−1 face core group a (port k/2+j → core a*(k/2)+j);
    * core ``core<c>``: port p faces pod p.

    Hosts are ``h<p>_<e>_<i>``.  ``k`` must be even and ≥ 2.
    """
    if k < 2:
        raise ValueError(f"fat-tree arity k must be >= 2, got {k}")
    if k % 2:
        raise ValueError(f"fat-tree arity k must be even, got {k}")
    if link_latency_ps <= 0:
        raise ValueError(f"link latency must be positive, got {link_latency_ps}")
    half = k // 2
    spec = TopologySpec(name=f"fattree-k{k}", meta={"kind": "fattree", "k": k})
    pod_of: Dict[str, Optional[int]] = {}
    for p in range(k):
        for e in range(half):
            spec.add_switch(f"edge{p}_{e}", k)
            pod_of[f"edge{p}_{e}"] = p
        for a in range(half):
            spec.add_switch(f"agg{p}_{a}", k)
            pod_of[f"agg{p}_{a}"] = p
    for c in range(half * half):
        spec.add_switch(f"core{c}", k)
        pod_of[f"core{c}"] = None
    # Pod-internal full mesh: edge e port a ↔ agg a port e.
    for p in range(k):
        for e in range(half):
            for a in range(half):
                spec.add_link(
                    f"edge{p}_{e}", a, f"agg{p}_{a}", e, link_latency_ps
                )
    # Core layer: agg a of every pod reaches core group a.
    for p in range(k):
        for a in range(half):
            for j in range(half):
                spec.add_link(
                    f"agg{p}_{a}", half + j,
                    f"core{a * half + j}", p,
                    link_latency_ps,
                )
    # Hosts: k/2 per edge switch, globally indexed IPs.
    host_index = 0
    for p in range(k):
        for e in range(half):
            for i in range(half):
                host = f"h{p}_{e}_{i}"
                spec.add_host(host, _host_ip(host_index))
                spec.add_link(host, 0, f"edge{p}_{e}", half + i, link_latency_ps)
                pod_of[host] = p
                host_index += 1
    spec.meta["pod_of"] = pod_of
    return spec


def build_fat_tree(
    factory: SwitchFactory,
    k: int = 4,
    link_latency_ps: int = 1_000_000,
    sim: Simulator = None,
) -> FatTree:
    """Instantiate :func:`fat_tree_spec` with a switch factory."""
    spec = fat_tree_spec(k=k, link_latency_ps=link_latency_ps)
    network = realize(spec, factory, sim=sim)
    half = k // 2
    fabric = FatTree(network=network, spec=spec)
    for p in range(k):
        fabric.edges[p] = [network.switches[f"edge{p}_{e}"] for e in range(half)]
        fabric.aggs[p] = [network.switches[f"agg{p}_{a}"] for a in range(half)]
        fabric.hosts[p] = [
            network.hosts[f"h{p}_{e}_{i}"]
            for e in range(half)
            for i in range(half)
        ]
    fabric.cores = [network.switches[f"core{c}"] for c in range(half * half)]
    return fabric


# Partitioning lives in repro.net.partition; re-exported here because
# the topology module is the natural place callers look for it.
from repro.net.partition import Partition, partition_spec  # noqa: E402

__all__ = [
    "NodeSpec",
    "LinkSpec",
    "TopologySpec",
    "realize",
    "with_ports",
    "build_linear",
    "build_dumbbell",
    "LeafSpine",
    "leaf_spine_spec",
    "build_leaf_spine",
    "FatTree",
    "fat_tree_spec",
    "build_fat_tree",
    "Partition",
    "partition_spec",
]
