"""Route computation over a :class:`~repro.net.network.Network`.

Shortest paths come from networkx over the network graph; the helpers
translate paths into the per-switch output ports that forwarding
programs install in their tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.net.network import Network


def shortest_path_ports(
    network: Network, src: str, dst: str, avoid_down_links: bool = True
) -> List[Tuple[str, int]]:
    """Per-switch (switch name, output port) hops from ``src`` to ``dst``.

    ``src``/``dst`` are node names (hosts or switches).  When
    ``avoid_down_links`` is set, failed links are excluded — the route a
    control plane would compute after re-convergence.
    """
    graph = network.graph()
    if avoid_down_links:
        dead = [
            (u, v) for u, v, data in graph.edges(data=True) if not data["link"].up
        ]
        graph.remove_edges_from(dead)
    path = nx.shortest_path(graph, src, dst, weight="latency_ps")
    hops: List[Tuple[str, int]] = []
    for here, nxt in zip(path, path[1:]):
        if here in network.switches:
            port = network.port_towards(here, nxt)
            if port is None:
                raise ValueError(f"no port from {here} towards {nxt}")
            hops.append((here, port))
    return hops


def all_pairs_ports(network: Network) -> Dict[Tuple[str, str], List[Tuple[str, int]]]:
    """Shortest-path hops for every (host, host) pair."""
    routes: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    names = sorted(network.hosts)
    for src in names:
        for dst in names:
            if src == dst:
                continue
            routes[(src, dst)] = shortest_path_ports(network, src, dst)
    return routes


def install_ip_routes(
    network: Network,
    forwarding_tables: Dict[str, Dict[int, int]],
) -> None:
    """Populate per-switch {dst_ip: port} dicts from shortest paths.

    ``forwarding_tables`` maps switch name → its (mutable) table; the
    helper fills each with an entry per destination host IP.
    """
    for (src, dst), hops in all_pairs_ports(network).items():
        dst_ip = network.hosts[dst].ip
        for switch_name, port in hops:
            table = forwarding_tables.get(switch_name)
            if table is not None:
                table[dst_ip] = port


# ---------------------------------------------------------------------------
# Spec-based ECMP routing
#
# The helpers above need a realized Network; sharded workers only hold
# their local slice of one, so ECMP routes are computed from the pure
# TopologySpec instead.  Every worker (and the serial reference run)
# derives byte-identical forwarding tables from the same spec — route
# choice is part of the deterministic behavior contract.
# ---------------------------------------------------------------------------

import zlib  # noqa: E402

from repro.net.topology import TopologySpec  # noqa: E402


def _spec_adjacency(spec: TopologySpec) -> Dict[str, List[Tuple[str, int]]]:
    """node -> sorted [(neighbor, local output port)] over spec links."""
    adj: Dict[str, List[Tuple[str, int]]] = {name: [] for name in spec.nodes}
    for link in spec.links:
        adj[link.node_a].append((link.node_b, link.port_a))
        adj[link.node_b].append((link.node_a, link.port_b))
    for entries in adj.values():
        entries.sort()
    return adj


def ecmp_candidates(spec: TopologySpec, switch: str) -> Dict[str, List[int]]:
    """Equal-cost next-hop ports from ``switch`` to every host.

    BFS distances from each destination host over the switch graph
    (hosts are never transited); a port is a candidate when its peer is
    strictly closer to the destination.  Candidate lists are sorted, so
    the multiplicity and order are deterministic.
    """
    adj = _spec_adjacency(spec)
    out: Dict[str, List[int]] = {}
    for host in spec.host_names():
        dist = _bfs_distances(spec, adj, host)
        here = dist.get(switch)
        if here is None:
            continue
        candidates = [
            port
            for peer, port in adj[switch]
            if dist.get(peer, here) < here
        ]
        out[host] = sorted(candidates)
    return out


def _bfs_distances(
    spec: TopologySpec,
    adj: Dict[str, List[Tuple[str, int]]],
    root: str,
) -> Dict[str, int]:
    dist = {root: 0}
    frontier = [root]
    while frontier:
        nxt: List[str] = []
        for node in frontier:
            for peer, _port in adj[node]:
                if peer in dist or spec.nodes[peer].kind == "host":
                    continue
                dist[peer] = dist[node] + 1
                nxt.append(peer)
        frontier = nxt
    return dist


def ecmp_routes(spec: TopologySpec) -> Dict[str, Dict[int, int]]:
    """Deterministic ECMP forwarding tables {switch: {dst_ip: port}}.

    Among equal-cost candidate ports the choice is
    ``crc32(f"{switch}|{dst_ip}") % len(candidates)`` — stable across
    processes and Python versions, unlike builtin ``hash``, so shard
    workers and the serial reference install identical tables.

    One BFS per destination host fills every switch's entry, so the
    whole fabric routes in O(hosts × links).
    """
    adj = _spec_adjacency(spec)
    host_ips = spec.host_ips()
    switches = spec.switch_names()
    tables: Dict[str, Dict[int, int]] = {name: {} for name in switches}
    for host in spec.host_names():
        dist = _bfs_distances(spec, adj, host)
        dst_ip = host_ips[host]
        for switch in switches:
            here = dist.get(switch)
            if here is None:
                continue
            candidates = sorted(
                port
                for peer, port in adj[switch]
                if dist.get(peer, here) < here
            )
            if not candidates:
                continue
            pick = zlib.crc32(f"{switch}|{dst_ip}".encode()) % len(candidates)
            tables[switch][dst_ip] = candidates[pick]
    return tables
