"""Route computation over a :class:`~repro.net.network.Network`.

Shortest paths come from networkx over the network graph; the helpers
translate paths into the per-switch output ports that forwarding
programs install in their tables.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.net.network import Network


def shortest_path_ports(
    network: Network, src: str, dst: str, avoid_down_links: bool = True
) -> List[Tuple[str, int]]:
    """Per-switch (switch name, output port) hops from ``src`` to ``dst``.

    ``src``/``dst`` are node names (hosts or switches).  When
    ``avoid_down_links`` is set, failed links are excluded — the route a
    control plane would compute after re-convergence.
    """
    graph = network.graph()
    if avoid_down_links:
        dead = [
            (u, v) for u, v, data in graph.edges(data=True) if not data["link"].up
        ]
        graph.remove_edges_from(dead)
    path = nx.shortest_path(graph, src, dst, weight="latency_ps")
    hops: List[Tuple[str, int]] = []
    for here, nxt in zip(path, path[1:]):
        if here in network.switches:
            port = network.port_towards(here, nxt)
            if port is None:
                raise ValueError(f"no port from {here} towards {nxt}")
            hops.append((here, port))
    return hops


def all_pairs_ports(network: Network) -> Dict[Tuple[str, str], List[Tuple[str, int]]]:
    """Shortest-path hops for every (host, host) pair."""
    routes: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    names = sorted(network.hosts)
    for src in names:
        for dst in names:
            if src == dst:
                continue
            routes[(src, dst)] = shortest_path_ports(network, src, dst)
    return routes


def install_ip_routes(
    network: Network,
    forwarding_tables: Dict[str, Dict[int, int]],
) -> None:
    """Populate per-switch {dst_ip: port} dicts from shortest paths.

    ``forwarding_tables`` maps switch name → its (mutable) table; the
    helper fills each with an entry per destination host IP.
    """
    for (src, dst), hops in all_pairs_ports(network).items():
        dst_ip = network.hosts[dst].ip
        for switch_name, port in hops:
            table = forwarding_tables.get(switch_name)
            if table is not None:
                table[dst_ip] = port
