"""Point-to-point links.

A :class:`Link` joins two endpoints — (node, port) pairs — with a
propagation delay and an up/down status.  Serialization happens at the
sender (the switch traffic manager or the host NIC), so the link only
adds propagation delay and drops packets while down.  Status
transitions notify both endpoints, which is how LINK_STATUS events
reach the data plane.

Links also carry the *degradation* hook the fault-injection subsystem
(:mod:`repro.faults`) uses: an attached :class:`LinkImpairment` may
drop a packet at the sender (loss), let it propagate but fail its CRC
at the receiver (corruption), or add per-packet delay jitter.  The
link keeps an exact conservation ledger — every packet handed to
:meth:`transmit_from` is eventually counted in exactly one of
``delivered_packets``, ``lost_packets``, or ``corrupted_packets``, and
``in_flight`` tracks packets currently propagating — which is what the
:class:`repro.faults.monitors.PacketConservationMonitor` audits.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

from repro.packet.packet import Packet
from repro.sim.kernel import Simulator


class LinkEndpoint(Protocol):
    """What a link needs from an attached node."""

    def receive(self, pkt: Packet, port: int) -> None:
        """Deliver an arriving packet."""

    def set_link_status(self, port: int, up: bool) -> None:
        """Report a physical link transition."""


class LinkImpairment(Protocol):
    """A degradation policy consulted for every transmitted packet.

    Implementations (see :class:`repro.faults.injector.Degradation`)
    must be deterministic given their seed: the verdict decides the
    packet's fate and any extra propagation delay.
    """

    def judge(self, pkt: Packet) -> Tuple[str, int]:
        """Return ``(verdict, extra_delay_ps)``.

        ``verdict`` is ``"ok"`` (deliver), ``"drop"`` (lose at the
        sender), or ``"corrupt"`` (propagate, then fail the receiver's
        CRC); ``extra_delay_ps`` adds to the propagation latency of
        delivered and corrupted packets.
        """
        ...


class Link:
    """A bidirectional point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        node_a: LinkEndpoint,
        port_a: int,
        node_b: LinkEndpoint,
        port_b: int,
        latency_ps: int = 1_000_000,  # 1 µs default propagation
        name: str = "link",
    ) -> None:
        if latency_ps < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ps}")
        self.sim = sim
        self.node_a = node_a
        self.port_a = port_a
        self.node_b = node_b
        self.port_b = port_b
        self.latency_ps = latency_ps
        self.name = name
        self.up = True
        self.tx_packets = 0
        self.delivered_packets = 0
        self.lost_packets = 0
        self.corrupted_packets = 0
        self.in_flight = 0
        self.impairment: Optional[LinkImpairment] = None
        #: Bumped on every status flip or impairment change; path-level
        #: consumers (the flow fastpath) fold it into their generation
        #: vectors so fault injection invalidates fused paths.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def transmit_from(self, sender: LinkEndpoint, pkt: Packet) -> None:
        """Carry ``pkt`` from ``sender`` to the opposite endpoint."""
        if sender is self.node_a:
            receiver, rx_port = self.node_b, self.port_b
        elif sender is self.node_b:
            receiver, rx_port = self.node_a, self.port_a
        else:
            raise ValueError(f"{sender!r} is not attached to link {self.name!r}")
        self.tx_packets += 1
        if not self.up:
            self.lost_packets += 1
            return
        impairment = self.impairment
        if impairment is None:
            self.in_flight += 1
            self.sim.call_after(self.latency_ps, self._deliver, receiver, pkt, rx_port)
            return
        verdict, extra_ps = impairment.judge(pkt)
        if verdict == "drop":
            self.lost_packets += 1
            return
        self.in_flight += 1
        if verdict == "corrupt":
            # The corrupted frame still occupies the wire; the receiver's
            # CRC check discards it on arrival.
            self.sim.call_after(self.latency_ps + extra_ps, self._drop_corrupt)
            return
        self.sim.call_after(
            self.latency_ps + extra_ps, self._deliver, receiver, pkt, rx_port
        )

    def _deliver(self, receiver: LinkEndpoint, pkt: Packet, rx_port: int) -> None:
        self.in_flight -= 1
        if not self.up:
            # Went down while the packet was in flight.
            self.lost_packets += 1
            return
        self.delivered_packets += 1
        receiver.receive(pkt, rx_port)

    def _drop_corrupt(self) -> None:
        self.in_flight -= 1
        self.corrupted_packets += 1

    # ------------------------------------------------------------------
    # Degradation (fault injection)
    # ------------------------------------------------------------------
    def set_impairment(self, impairment: Optional[LinkImpairment]) -> None:
        """Attach (or with None, detach) a degradation policy."""
        for node in (self.node_a, self.node_b):
            disrupt = getattr(node, "fastpath_disrupt", None)
            if disrupt is not None:
                disrupt()
        self.impairment = impairment
        self.epoch += 1

    def conservation_ledger(self) -> dict:
        """The exact packet ledger: tx == delivered + lost + corrupted + in_flight."""
        return {
            "tx": self.tx_packets,
            "delivered": self.delivered_packets,
            "lost": self.lost_packets,
            "corrupted": self.corrupted_packets,
            "in_flight": self.in_flight,
        }

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def set_up(self, up: bool) -> None:
        """Change link status now and notify both endpoints."""
        if self.up == up:
            return
        self.up = up
        self.epoch += 1
        self.node_a.set_link_status(self.port_a, up)
        self.node_b.set_link_status(self.port_b, up)

    def fail_at(self, time_ps: int) -> None:
        """Schedule a failure."""
        self.sim.call_at(time_ps, self.set_up, False)

    def recover_at(self, time_ps: int) -> None:
        """Schedule a recovery."""
        self.sim.call_at(time_ps, self.set_up, True)

    def other_end(self, node: LinkEndpoint) -> LinkEndpoint:
        """The endpoint opposite ``node``."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node!r} is not attached to link {self.name!r}")

    def __repr__(self) -> str:
        state = "up" if self.up else "DOWN"
        return f"Link({self.name!r}, {state}, {self.latency_ps}ps)"
