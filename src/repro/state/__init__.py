"""Global vs. distributed state (paper §4).

High-line-rate devices cannot afford multi-ported memory, so the paper
merges the logical event pipelines into one physical pipeline and keeps
algorithmic state in *single-ported* register arrays, coordinated by
aggregation registers (Figure 3):

* packet-event read-modify-writes always operate on the **main**
  register holding the algorithmic state,
* enqueue and dequeue read-modify-writes accumulate in separate
  **aggregation** register arrays,
* during **idle clock cycles** the aggregated operations are applied to
  the main register.

The result is bounded staleness: the main register lags truth by at
most the backlog the aggregation arrays can accumulate between idle
cycles, which shrinks as the pipeline runs faster than line rate.
This subpackage provides the memory-port cost model, the Figure 3
register file, the staleness tracker, and a clock-cycle pipeline
simulator that the Figure 3 / staleness benches drive.
"""

from repro.state.memory import MemoryPortModel, PortConflictError
from repro.state.aggregation import AggregationRegisterFile, PendingOp
from repro.state.staleness import StalenessTracker, StalenessReport
from repro.state.cyclesim import CyclePipelineSim, CycleSimConfig, CycleSimResult
from repro.state.consistency import (
    ContentionResult,
    DelayedRmwRegister,
    run_contention,
)
from repro.state.replication import (
    MultiPipeResult,
    ReplicatedRegister,
    run_multipipe,
)

__all__ = [
    "MemoryPortModel",
    "PortConflictError",
    "AggregationRegisterFile",
    "PendingOp",
    "StalenessTracker",
    "StalenessReport",
    "CyclePipelineSim",
    "CycleSimConfig",
    "CycleSimResult",
    "DelayedRmwRegister",
    "ContentionResult",
    "run_contention",
    "ReplicatedRegister",
    "MultiPipeResult",
    "run_multipipe",
]
