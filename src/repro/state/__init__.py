"""Global vs. distributed state (paper §4).

High-line-rate devices cannot afford multi-ported memory, so the paper
merges the logical event pipelines into one physical pipeline and keeps
algorithmic state in *single-ported* register arrays, coordinated by
aggregation registers (Figure 3):

* packet-event read-modify-writes always operate on the **main**
  register holding the algorithmic state,
* enqueue and dequeue read-modify-writes accumulate in separate
  **aggregation** register arrays,
* during **idle clock cycles** the aggregated operations are applied to
  the main register.

The result is bounded staleness: the main register lags truth by at
most the backlog the aggregation arrays can accumulate between idle
cycles, which shrinks as the pipeline runs faster than line rate.
This subpackage provides the memory-port cost model, the Figure 3
register file, the staleness tracker, and a clock-cycle pipeline
simulator that the Figure 3 / staleness benches drive.
"""

# Re-exports are lazy (PEP 562): the stateful models below import the
# low-level ``repro.state.store`` module, and the PISA externs import it
# too — an eager package __init__ would make ``repro.state`` and
# ``repro.pisa.externs`` mutually recursive.  Lazy loading keeps
# ``import repro.state.store`` dependency-free from either direction.
_EXPORTS = {
    "MemoryPortModel": "repro.state.memory",
    "PortConflictError": "repro.state.memory",
    "AggregationRegisterFile": "repro.state.aggregation",
    "PendingOp": "repro.state.aggregation",
    "StalenessTracker": "repro.state.staleness",
    "StalenessReport": "repro.state.staleness",
    "CyclePipelineSim": "repro.state.cyclesim",
    "CycleSimConfig": "repro.state.cyclesim",
    "CycleSimResult": "repro.state.cyclesim",
    "DelayedRmwRegister": "repro.state.consistency",
    "ContentionResult": "repro.state.consistency",
    "run_contention": "repro.state.consistency",
    "ReplicatedRegister": "repro.state.replication",
    "MultiPipeResult": "repro.state.replication",
    "run_multipipe": "repro.state.replication",
    "StateStore": "repro.state.store",
    "DenseStore": "repro.state.store",
    "DictStore": "repro.state.store",
    "ShadowStore": "repro.state.store",
    "make_store": "repro.state.store",
    "registered_stores": "repro.state.store",
    "store_manifest": "repro.state.store",
    "STORE_BACKENDS": "repro.state.store",
    "STORE_ENV": "repro.state.store",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
