"""Consistency of multi-threaded data-plane state (paper §7).

"Both of these proposals [Domino, FlowBlaze] only consider single
threaded data-plane programs.  In an event-driven programming model
there can be many event processing threads that share the same state.
Defining a consistency model for multi-threaded data-plane programs
remains an area of future work."

This module makes the problem concrete and measurable:

* :class:`DelayedRmwRegister` models a read-modify-write whose read and
  write sit ``latency_cycles`` apart (the operation spread across
  pipeline stages).  Two threads whose RMWs overlap on the same index
  exhibit the classic *lost update*: the later write clobbers the
  earlier one's effect.  The register counts exactly how many updates
  were lost.
* ``latency_cycles=0`` recovers the atomic semantics of Domino's
  per-packet transactions and of the paper's single-stage
  ``shared_register`` — zero lost updates, by construction.
* :func:`run_contention` drives several event threads against shared
  counters and reports the loss rate as a function of RMW latency and
  contention — the quantitative backdrop for the consistency-model
  future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.rng import SeededRng
from repro.state.store import StateStore, make_store


class DelayedRmwRegister:
    """A register whose read-modify-writes take ``latency_cycles``.

    ``add_rmw(cycle, index, delta)`` reads the committed value at
    ``cycle`` and commits ``value + delta`` at ``cycle + latency``.
    Call :meth:`advance_to` to commit due writes.  Because a concurrent
    RMW that committed between our read and our write is overwritten,
    its update is *lost* — observable as a final total smaller than the
    issued count; :attr:`interference_commits` additionally counts every
    commit that clobbered a concurrent one.
    """

    def __init__(
        self,
        size: int,
        latency_cycles: int,
        name: str = "delayed",
        backend: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if latency_cycles < 0:
            raise ValueError(f"latency must be non-negative, got {latency_cycles}")
        self.size = size
        self.latency_cycles = latency_cycles
        self.name = name
        self._cells = make_store(size, 0, backend, name=f"{name}.cells")
        # Pending: (commit_cycle, read_cycle, index, new_value)
        self._pending: List[Tuple[int, int, int, int]] = []
        self._last_commit = make_store(size, -1, backend, name=f"{name}.last_commit")
        self.issued = 0
        self.interference_commits = 0

    def read(self, cycle: int, index: int) -> int:
        """Read the committed value (in-flight writes are invisible)."""
        self._check(index)
        return self._cells[index]

    def add_rmw(self, cycle: int, index: int, delta: int) -> None:
        """Issue a read-modify-write add."""
        self._check(index)
        self.issued += 1
        new_value = self._cells[index] + delta
        if self.latency_cycles == 0:
            self._commit(cycle, cycle, index, new_value)
        else:
            self._pending.append((cycle + self.latency_cycles, cycle, index, new_value))

    def advance_to(self, cycle: int) -> None:
        """Commit every pending write due at or before ``cycle``."""
        if not self._pending:
            return
        due = [entry for entry in self._pending if entry[0] <= cycle]
        if not due:
            return
        self._pending = [entry for entry in self._pending if entry[0] > cycle]
        for commit_cycle, read_cycle, index, new_value in sorted(due):
            self._commit(commit_cycle, read_cycle, index, new_value)

    def _commit(self, commit_cycle: int, read_cycle: int, index: int, new_value: int) -> None:
        if self._last_commit[index] > read_cycle:
            # Someone committed after our read: their update is clobbered.
            self.interference_commits += 1
        self._cells[index] = new_value
        self._last_commit[index] = commit_cycle

    def snapshot(self) -> List[int]:
        """Committed cell values (delegates to the store)."""
        return self._cells.snapshot()

    def total(self) -> int:
        """Sum over all cells."""
        return self._cells.sum_values()

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._cells, self._last_commit]

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")

    def __repr__(self) -> str:
        return (
            f"DelayedRmwRegister({self.name!r}, latency={self.latency_cycles}, "
            f"interference={self.interference_commits}/{self.issued})"
        )


@dataclass
class ContentionResult:
    """Outcome of one contention run."""

    latency_cycles: int
    thread_count: int
    counters: int
    issued: int
    final_total: int
    interference_commits: int

    @property
    def lost_updates(self) -> int:
        """Updates whose effect vanished (issued − applied), exactly."""
        return self.issued - self.final_total

    @property
    def loss_rate(self) -> float:
        """Fraction of issued updates whose effect vanished."""
        return self.lost_updates / self.issued if self.issued else 0.0

    def summary_row(self) -> str:
        """A printable summary row."""
        return (
            f"rmw_latency={self.latency_cycles:<3} threads={self.thread_count} "
            f"issued={self.issued:<7} applied={self.final_total:<7} "
            f"lost={self.lost_updates:<6} ({100 * self.loss_rate:5.2f}%)"
        )


def run_contention(
    latency_cycles: int,
    thread_count: int = 3,
    counters: int = 4,
    cycles: int = 50_000,
    fire_probability: float = 0.3,
    seed: int = 2,
) -> ContentionResult:
    """Several event threads increment shared counters concurrently.

    Each cycle, each thread fires with ``fire_probability`` and
    increments a random counter.  With ``latency_cycles == 0`` (atomic
    RMW) the final total equals the issued count exactly; with
    multi-cycle RMWs updates are lost at a rate growing with latency
    and contention.
    """
    if thread_count <= 0:
        raise ValueError(f"thread count must be positive, got {thread_count}")
    if not 0 < fire_probability <= 1:
        raise ValueError(f"fire probability must be in (0, 1], got {fire_probability}")
    register = DelayedRmwRegister(counters, latency_cycles)
    rngs = [SeededRng(seed, f"thread{i}") for i in range(thread_count)]
    for cycle in range(cycles):
        register.advance_to(cycle)
        for rng in rngs:
            if rng.random() < fire_probability:
                register.add_rmw(cycle, rng.randint(0, counters - 1), 1)
    register.advance_to(cycles + latency_cycles + 1)
    return ContentionResult(
        latency_cycles=latency_cycles,
        thread_count=thread_count,
        counters=counters,
        issued=register.issued,
        final_total=register.total(),
        interference_commits=register.interference_commits,
    )
