"""Pluggable state storage for every stateful extern and state model.

The paper's central mechanism is *shared state* between event threads
and packet threads (shared registers, §4's merged-pipeline design).
Before this module each extern managed a raw Python list ad-hoc and
only two of them could even be snapshotted.  :class:`StateStore` is the
single allocation point for all of that state, with three backends:

``dense``
    A :class:`list` subclass.  ``store[i]`` is C-speed list indexing, so
    the packet/event hot paths tuned in PR 2 are unchanged.  This is the
    default.

``dict``
    Sparse storage for mostly-default arrays (e.g. a 64Ki-entry flow
    table where a trace touches a few hundred slots).  Reads of unset
    cells return the default *without* inserting, so memory stays
    proportional to the touched set; writing the default value back
    evicts the cell.

``shadowed``
    Copy-on-write: reads hit a frozen base generation, writes go to an
    overlay dict.  ``snapshot()`` is O(overlay) — O(1) when clean —
    which makes high-frequency snapshotting (staleness probes,
    replication deltas) cheap.  Snapshots are *frozen shared lists*:
    callers must not mutate them.

Every store registers itself in a process-wide weak registry so
whole-simulator checkpoints (:mod:`repro.sim.checkpoint`) can record a
manifest of live state, and so tools can answer "how much state does
this topology hold".

Backend selection: explicit ``backend=`` argument wins, then the
``REPRO_STATE_BACKEND`` environment variable, then ``dense``.
"""

from __future__ import annotations

import os
import weakref
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "StateStore",
    "DenseStore",
    "DictStore",
    "ShadowStore",
    "make_store",
    "registered_stores",
    "store_manifest",
    "total_state_cells",
    "STORE_BACKENDS",
    "STORE_ENV",
]

#: Recognised backend names, in documentation order.
STORE_BACKENDS = ("dense", "dict", "shadowed")

#: Environment variable consulted when ``make_store`` gets no backend.
STORE_ENV = "REPRO_STATE_BACKEND"

#: Process-wide registry of live stores (weak: stores die with owners).
#: Keyed by ``id`` because list/dict-backed stores are unhashable.
_REGISTRY: Dict[int, "weakref.ref[StateStore]"] = {}


class StateStore:
    """A fixed-size indexed cell array with a pluggable representation.

    Subclasses provide ``__getitem__``/``__setitem__`` plus the bulk
    operations below.  All backends share the same observable
    behaviour: ``size`` cells, every cell initially ``default``, and a
    ``snapshot()`` that materialises the dense contents.
    """

    kind = "abstract"

    #: set by subclasses in __init__
    size: int
    default: Any
    name: str

    # -- element access -------------------------------------------------
    def __getitem__(self, index: int) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def __setitem__(self, index: int, value: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def __len__(self) -> int:
        return self.size

    # -- bulk operations ------------------------------------------------
    def snapshot(self) -> List[Any]:
        """Dense copy of all cells (see backend notes on sharing)."""
        raise NotImplementedError

    def load(self, values: Iterable[Any]) -> None:
        """Replace the full contents from a dense iterable of ``size`` values."""
        raise NotImplementedError

    def fill(self, value: Any) -> None:
        """Set every cell to ``value`` in place (identity is preserved)."""
        raise NotImplementedError

    # -- reductions (backends override with faster paths) ---------------
    def nonzero_count(self) -> int:
        """Number of cells holding a truthy value."""
        return sum(1 for v in self.snapshot() if v)

    def sum_values(self) -> Any:
        """Sum over all cells."""
        return sum(self.snapshot())

    def max_value(self) -> Any:
        """Maximum over all cells."""
        return max(self.snapshot())

    # -- checkpoint support ---------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Manifest row: backend kind, geometry, and population."""
        return {
            "name": self.name,
            "kind": self.kind,
            "size": self.size,
            "default": self.default,
            "populated": self.nonzero_count(),
        }

    def to_state(self) -> Dict[str, Any]:
        """Portable dense dump, loadable into any backend."""
        return {
            "kind": self.kind,
            "size": self.size,
            "default": self.default,
            "name": self.name,
            "cells": self.snapshot(),
        }

    @staticmethod
    def from_state(state: Dict[str, Any], backend: Optional[str] = None) -> "StateStore":
        """Rebuild a store from :meth:`to_state` (optionally re-backed)."""
        store = make_store(
            state["size"],
            default=state["default"],
            backend=backend or state["kind"],
            name=state["name"],
        )
        store.load(state["cells"])
        return store

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, size={self.size}, "
            f"default={self.default!r})"
        )


def _register(store: "StateStore") -> None:
    key = id(store)

    def _cleanup(ref: "weakref.ref[StateStore]", key: int = key) -> None:
        if _REGISTRY.get(key) is ref:
            del _REGISTRY[key]

    _REGISTRY[key] = weakref.ref(store, _cleanup)


class DenseStore(list, StateStore):
    """Array-backed store: a real ``list``, so indexing stays C-speed.

    This is the default backend; it keeps the PR-2 hot paths
    allocation-free and at raw-list cost because ``store[i]`` *is*
    ``list.__getitem__``.
    """

    kind = "dense"

    def __init__(self, size: int, default: Any = 0, name: str = "store") -> None:
        list.__init__(self, [default] * size)
        self.size = size
        self.default = default
        self.name = name
        _register(self)

    # list already provides __getitem__/__setitem__/__len__ (len == size
    # by construction; load() enforces it).

    def snapshot(self) -> List[Any]:
        return list(self)

    def load(self, values: Iterable[Any]) -> None:
        values = list(values)
        if len(values) != self.size:
            raise ValueError(
                f"{self.name}: load of {len(values)} values into size {self.size}"
            )
        self[:] = values

    def fill(self, value: Any) -> None:
        for i in range(self.size):
            list.__setitem__(self, i, value)

    def nonzero_count(self) -> int:
        return sum(1 for v in self if v)

    def sum_values(self) -> Any:
        return sum(self)

    def max_value(self) -> Any:
        return max(self)

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        _register(self)

    def __reduce_ex__(self, protocol: int):  # noqa: D105
        # Protocol-2 list pickling feeds items via extend(); carry the
        # instance dict alongside so unpickled stores re-register.
        return (_rebuild_dense, (self.__dict__.copy(), list(self)))


def _rebuild_dense(attrs: Dict[str, Any], items: List[Any]) -> "DenseStore":
    store = DenseStore.__new__(DenseStore)
    list.extend(store, items)
    store.__setstate__(attrs)
    return store


class DictStore(dict, StateStore):
    """Sparse store: only non-default cells occupy memory.

    Reads of unset cells return ``default`` without inserting; writing
    ``default`` back evicts the cell.  ``len()`` reports the logical
    ``size`` (like every backend); the populated count is in
    :meth:`describe`.
    """

    kind = "dict"

    def __init__(self, size: int, default: Any = 0, name: str = "store") -> None:
        dict.__init__(self)
        self.size = size
        self.default = default
        self.name = name
        _register(self)

    def __missing__(self, index: int) -> Any:
        if isinstance(index, int) and -self.size <= index < self.size:
            return self.default
        raise IndexError(f"{self.name}: index {index!r} out of range 0..{self.size - 1}")

    def __getitem__(self, index: int) -> Any:
        if index < 0:  # normalise so sparse keys are canonical
            index += self.size
        return dict.__getitem__(self, index) if dict.__contains__(self, index) else self.__missing__(index)

    def __setitem__(self, index: int, value: Any) -> None:
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}: index {index} out of range 0..{self.size - 1}")
        if value == self.default:
            dict.pop(self, index, None)
        else:
            dict.__setitem__(self, index, value)

    def __len__(self) -> int:
        return self.size

    def populated(self) -> int:
        """Number of cells physically present (non-default)."""
        return dict.__len__(self)

    def snapshot(self) -> List[Any]:
        out = [self.default] * self.size
        for index, value in dict.items(self):
            out[index] = value
        return out

    def load(self, values: Iterable[Any]) -> None:
        values = list(values)
        if len(values) != self.size:
            raise ValueError(
                f"{self.name}: load of {len(values)} values into size {self.size}"
            )
        dict.clear(self)
        default = self.default
        for index, value in enumerate(values):
            if value != default:
                dict.__setitem__(self, index, value)

    def fill(self, value: Any) -> None:
        dict.clear(self)
        if value != self.default:
            for index in range(self.size):
                dict.__setitem__(self, index, value)

    def nonzero_count(self) -> int:
        present = sum(1 for v in dict.values(self) if v)
        if self.default:
            present += self.size - dict.__len__(self)
        return present

    def sum_values(self) -> Any:
        return sum(dict.values(self)) + self.default * (self.size - dict.__len__(self))

    def max_value(self) -> Any:
        if dict.__len__(self) == self.size:
            return max(dict.values(self))
        if not dict.__len__(self):
            return self.default
        return max(self.default, max(dict.values(self)))

    def __reduce_ex__(self, protocol: int):  # noqa: D105
        return (_rebuild_dict, (self.__dict__.copy(), dict(self)))


def _rebuild_dict(attrs: Dict[str, Any], items: Dict[int, Any]) -> "DictStore":
    store = DictStore.__new__(DictStore)
    dict.update(store, items)
    store.__dict__.update(attrs)
    _register(store)
    return store


class ShadowStore(StateStore):
    """Copy-on-write store for cheap, high-frequency snapshots.

    Reads fall through an overlay dict to a frozen base list; writes go
    to the overlay.  ``snapshot()`` folds the overlay into a *new* base
    generation and returns it — O(overlay) work, O(1) when no writes
    happened since the last snapshot.  Returned snapshots are logically
    frozen and shared with the store: treat them as read-only.
    """

    kind = "shadowed"

    def __init__(self, size: int, default: Any = 0, name: str = "store") -> None:
        self.size = size
        self.default = default
        self.name = name
        self._base: List[Any] = [default] * size
        self._overlay: Dict[int, Any] = {}
        self.snapshots_taken = 0
        _register(self)

    def __getitem__(self, index: int) -> Any:
        overlay = self._overlay
        if index < 0:
            index += self.size
        if index in overlay:
            return overlay[index]
        return self._base[index]

    def __setitem__(self, index: int, value: Any) -> None:
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError(f"{self.name}: index {index} out of range 0..{self.size - 1}")
        self._overlay[index] = value

    def snapshot(self) -> List[Any]:
        self.snapshots_taken += 1
        overlay = self._overlay
        if overlay:
            base = list(self._base)
            for index, value in overlay.items():
                base[index] = value
            self._base = base
            self._overlay = {}
        return self._base

    def load(self, values: Iterable[Any]) -> None:
        values = list(values)
        if len(values) != self.size:
            raise ValueError(
                f"{self.name}: load of {len(values)} values into size {self.size}"
            )
        self._base = values
        self._overlay = {}

    def fill(self, value: Any) -> None:
        self._base = [value] * self.size
        self._overlay = {}

    def dirty_count(self) -> int:
        """Cells written since the last snapshot (overlay population)."""
        return len(self._overlay)

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "default": self.default,
            "name": self.name,
            "_base": list(self._base),
            "_overlay": dict(self._overlay),
            "snapshots_taken": self.snapshots_taken,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        _register(self)


_BACKENDS: Dict[str, Callable[..., StateStore]] = {
    "dense": DenseStore,
    "dict": DictStore,
    "shadowed": ShadowStore,
}


def make_store(
    size: int,
    default: Any = 0,
    backend: Optional[str] = None,
    name: str = "store",
) -> StateStore:
    """Allocate a store of ``size`` cells initialised to ``default``.

    ``backend`` falls back to ``$REPRO_STATE_BACKEND``, then ``dense``.
    """
    if size < 0:
        raise ValueError(f"{name}: store size must be >= 0, got {size}")
    chosen = backend or os.environ.get(STORE_ENV) or "dense"
    try:
        factory = _BACKENDS[chosen]
    except KeyError:
        raise ValueError(
            f"unknown state backend {chosen!r}; expected one of {STORE_BACKENDS}"
        ) from None
    return factory(size, default=default, name=name)


def registered_stores() -> List[StateStore]:
    """Live stores in this process, sorted by name for stable output."""
    stores = (ref() for ref in list(_REGISTRY.values()))
    return sorted(
        (s for s in stores if s is not None),
        key=lambda s: (s.name, s.kind, id(s)),
    )


def store_manifest() -> List[Dict[str, Any]]:
    """One :meth:`StateStore.describe` row per live store."""
    return [store.describe() for store in registered_stores()]


def total_state_cells() -> int:
    """Total logical cells across all live stores."""
    return sum(store.size for store in registered_stores())
